"""Hierarchical tracing spans with pluggable exporters.

A :class:`Span` is one timed unit of work — ``trace_id`` groups a whole
request (one ``generate()`` call, say), ``span_id``/``parent_id`` form the
tree.  Spans are created through :meth:`Tracer.span`, a context manager
that maintains a per-thread stack so nesting in code becomes nesting in
the trace:

    with get_tracer().span("system.generate", program=name) as sp:
        ...                      # children created here parent under sp
        sp.set_attribute("facts_stored", n)

Tracing is **off by default**: :func:`get_tracer` returns a shared no-op
tracer whose ``span()`` costs one function call, so instrumentation can
stay inline in hot paths.  :func:`set_tracer` (normally via
``repro.telemetry.enable``) installs a real tracer; :func:`enabled` is the
fast guard for instrumentation whose *data collection* is itself costly
(e.g. sizing shuffled records).

Span names are dotted, ``<layer>.<what>`` (``rdbms.txn``,
``mapreduce.wave.map``); the report module maps the first component to a
Figure-1 layer.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One node of a trace tree.

    ``start``/``end`` are ``time.perf_counter()`` readings (durations);
    ``start_wall`` is ``time.time()`` (human-readable anchoring).
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start: float = 0.0
    end: float | None = None
    start_wall: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while unfinished)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "start_wall": self.start_wall,
            "attributes": self.attributes,
            "status": self.status,
            "error": self.error,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Span":
        return Span(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=data.get("start", 0.0),
            end=data.get("end"),
            start_wall=data.get("start_wall", 0.0),
            attributes=dict(data.get("attributes", {})),
            status=data.get("status", "ok"),
            error=data.get("error"),
        )


class InMemorySpanExporter:
    """Collects finished spans in a list (tests, ``summarize_trace``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.spans: list[Span] = []

    def export(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()


class JsonlSpanExporter:
    """Appends finished spans (and metrics snapshots) to a JSONL file.

    Lines are ``{"kind": "span", ...span fields...}`` or
    ``{"kind": "metrics", "snapshot": {...}}`` — see
    ``repro.telemetry.report.load_telemetry`` for the reader.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")

    def export(self, span: Span) -> None:
        self._write({"kind": "span", **span.to_dict()})

    def export_metrics(self, snapshot: dict[str, Any]) -> None:
        self._write({"kind": "metrics", "snapshot": snapshot})

    def flush(self) -> None:
        """Push buffered records to the OS (safe on a closed file)."""
        with self._lock:
            if not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def _write(self, record: dict[str, Any]) -> None:
        with self._lock:
            if self._file.closed:
                return
            self._file.write(json.dumps(record, default=repr) + "\n")
            self._file.flush()


class Tracer:
    """Creates spans, tracks the per-thread current span, exports on finish.

    Span/trace ids are sequential per tracer (``s1``, ``s2``, ... /
    ``t1``, ...) — deterministic and cheap; worker processes run with
    tracing disabled and report through metrics snapshots instead.
    ``id_prefix`` keeps ids distinct when several runs append to one JSONL
    file (``repro.telemetry.enable`` passes a pid-based prefix).
    """

    def __init__(self, exporters: "list[Any] | tuple[Any, ...]" = (),
                 id_prefix: str = "") -> None:
        self.exporters = list(exporters)
        self._id_prefix = id_prefix
        self._stack = threading.local()
        self._id_lock = threading.Lock()
        self._next = 0

    # ------------------------------------------------------------------ API

    def current_span(self) -> Span | None:
        stack = getattr(self._stack, "spans", None)
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span as a child of this thread's current span."""
        parent = self.current_span()
        span = Span(
            name=name,
            trace_id=parent.trace_id if parent
            else f"t{self._id_prefix}{self._new_id()}",
            span_id=f"s{self._id_prefix}{self._new_id()}",
            parent_id=parent.span_id if parent else None,
            start=time.perf_counter(),
            start_wall=time.time(),
            attributes=dict(attributes),
        )
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = repr(exc)
            raise
        finally:
            span.end = time.perf_counter()
            stack.pop()
            for exporter in self.exporters:
                exporter.export(span)

    # ------------------------------------------------------------ internals

    def _new_id(self) -> int:
        with self._id_lock:
            self._next += 1
            return self._next


class _NoopSpan:
    """Shared do-nothing span (and its own context manager)."""

    __slots__ = ()
    attributes: dict[str, Any] = {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Stands in when tracing is disabled; ``span()`` allocates nothing."""

    exporters: list[Any] = []

    def current_span(self) -> None:
        return None

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        return _NOOP_SPAN


_NOOP_TRACER = NoopTracer()
_active: Tracer | None = None


def get_tracer() -> "Tracer | NoopTracer":
    """The installed tracer, or the shared no-op tracer."""
    return _active if _active is not None else _NOOP_TRACER


def set_tracer(tracer: Tracer | None) -> None:
    """Install (or with None, remove) the process-wide tracer."""
    global _active
    _active = tracer


def enabled() -> bool:
    """True when a real tracer is installed.

    Guard for instrumentation whose data *collection* is costly; plain
    span creation does not need it.
    """
    return _active is not None
