"""Trace/metrics reporting: load a telemetry file, summarize, render.

``summarize_trace`` turns a flat span list into the numbers a performance
investigation starts from: the top-k slowest spans and a per-layer time
breakdown.  Layer attribution uses *self time* (a span's duration minus
its children's), so an outer ``system.generate`` span does not absorb the
executor/RDBMS time it merely contains.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable

from repro.telemetry.tracing import Span

# First dotted component of a span/metric name -> Figure-1 layer.
LAYER_BY_PREFIX = {
    "system": "user",
    "executor": "processing",
    "extraction": "processing",
    "integration": "processing",
    "cache": "storage",
    "mapreduce": "cluster",
    "rdbms": "storage",
    "planner": "storage",
    "segments": "storage",
}


def layer_of(name: str) -> str:
    """Figure-1 layer of a dotted span/metric name (``other`` if unknown)."""
    return LAYER_BY_PREFIX.get(name.split(".", 1)[0], "other")


def summarize_trace(spans: Iterable[Span], top_k: int = 10) -> dict[str, Any]:
    """Aggregate a span list into a report dict.

    Returns keys: ``span_count``, ``trace_count``, ``roots`` (names of
    parentless spans), ``total_seconds`` (sum of root durations),
    ``top_spans`` (``[{name, span_id, duration, attributes}]``, slowest
    first), ``layer_seconds`` (self-time per layer), ``errors`` (names of
    spans with error status).
    """
    spans = list(spans)
    child_time: dict[str, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + span.duration
            )

    layer_seconds: dict[str, float] = {}
    for span in spans:
        self_time = max(span.duration - child_time.get(span.span_id, 0.0), 0.0)
        layer = layer_of(span.name)
        layer_seconds[layer] = layer_seconds.get(layer, 0.0) + self_time

    roots = [s for s in spans if s.parent_id is None]
    slowest = sorted(spans, key=lambda s: s.duration, reverse=True)[:top_k]
    return {
        "span_count": len(spans),
        "trace_count": len({s.trace_id for s in spans}),
        "roots": [s.name for s in roots],
        "total_seconds": sum(s.duration for s in roots),
        "top_spans": [
            {
                "name": s.name,
                "span_id": s.span_id,
                "duration": s.duration,
                "attributes": s.attributes,
            }
            for s in slowest
        ],
        "layer_seconds": dict(
            sorted(layer_seconds.items(), key=lambda kv: kv[1], reverse=True)
        ),
        "errors": [s.name for s in spans if s.status == "error"],
    }


def render_report(summary: dict[str, Any],
                  snapshot: dict[str, Any] | None = None,
                  max_metrics: int = 25) -> str:
    """Human-readable text for a ``summarize_trace`` result.

    With a metrics ``snapshot``, appends the counters (all of them up to
    ``max_metrics``, largest first) and any histograms.
    """
    root_counts: dict[str, int] = {}
    for name in summary["roots"]:
        root_counts[name] = root_counts.get(name, 0) + 1
    roots = ", ".join(
        name if count == 1 else f"{name} x{count}"
        for name, count in root_counts.items()
    )
    lines = [
        f"spans: {summary['span_count']} across "
        f"{summary['trace_count']} trace(s); "
        f"roots: {roots or '(none)'}",
        f"total traced time: {summary['total_seconds']:.4f}s",
        "",
        "per-layer self time:",
    ]
    total = sum(summary["layer_seconds"].values()) or 1.0
    for layer, seconds in summary["layer_seconds"].items():
        lines.append(
            f"  {layer:<12} {seconds:10.4f}s  {100.0 * seconds / total:5.1f}%"
        )
    lines += ["", f"top {len(summary['top_spans'])} slowest spans:"]
    for entry in summary["top_spans"]:
        lines.append(f"  {entry['duration']:10.4f}s  {entry['name']}")
    if summary["errors"]:
        lines += ["", f"spans with errors: {', '.join(summary['errors'])}"]
    if snapshot is not None:
        counters = sorted(snapshot.get("counters", {}).items(),
                          key=lambda kv: kv[1], reverse=True)
        all_counters = snapshot.get("counters", {})

        def family_present(prefix: str) -> bool:
            """A counter family exists even when its lookups are zero
            (e.g. only evictions or invalidations incremented) — the
            line must then print ``n/a``, never divide by zero."""
            return any(name == prefix or name.startswith(prefix + ".")
                       for name in all_counters)

        if family_present("cache"):
            # Dedicated line: the hit rate is the number a caching session
            # is judged by, and the counters may not crack the top list.
            hits = all_counters.get("cache.hits", 0.0)
            lookups = hits + all_counters.get("cache.misses", 0.0)
            rate = (f"{100.0 * hits / lookups:.1f}% hit rate"
                    if lookups else "hit rate n/a")
            lines += [
                "",
                f"extraction cache: cache.hits={hits:.0f} "
                f"cache.misses={all_counters.get('cache.misses', 0.0):.0f} "
                f"({rate})",
            ]
        if family_present("planner.cache"):
            query_hits = all_counters.get("planner.cache.hits", 0.0)
            query_lookups = query_hits \
                + all_counters.get("planner.cache.misses", 0.0)
            rate = (f"{100.0 * query_hits / query_lookups:.1f}% hit rate"
                    if query_lookups else "hit rate n/a")
            lines += [
                "",
                f"query result cache: hits={query_hits:.0f} "
                f"misses={all_counters.get('planner.cache.misses', 0.0):.0f} "
                f"invalidations="
                f"{all_counters.get('planner.cache.invalidations', 0.0):.0f} "
                f"({rate})",
            ]
        if family_present("rdbms.mvcc"):
            builds = all_counters.get("rdbms.mvcc.snapshot_builds", 0.0)
            reuses = all_counters.get("rdbms.mvcc.snapshot_reuses", 0.0)
            takes = builds + reuses
            rate = (f"{100.0 * reuses / takes:.1f}% reuse rate"
                    if takes else "reuse rate n/a")
            lines += [
                "",
                f"mvcc snapshots: read_txns="
                f"{all_counters.get('rdbms.mvcc.read_txns', 0.0):.0f} "
                f"builds={builds:.0f} reuses={reuses:.0f} ({rate})",
            ]
        if family_present("serving"):
            lines += [
                "",
                f"serving: admitted="
                f"{all_counters.get('serving.admitted', 0.0):.0f} "
                f"rejected={all_counters.get('serving.rejected', 0.0):.0f} "
                f"timed_out="
                f"{all_counters.get('serving.timed_out', 0.0):.0f} "
                f"drained={all_counters.get('serving.drained', 0.0):.0f} "
                f"txn_retries="
                f"{all_counters.get('rdbms.txn.retries', 0.0):.0f}",
            ]
        if family_present("segments"):
            seg_scanned = all_counters.get("segments.scanned", 0.0)
            seg_skipped = all_counters.get("segments.skipped", 0.0)
            visited = seg_scanned + seg_skipped
            rate = (f"{100.0 * seg_skipped / visited:.1f}% zone-map skip rate"
                    if visited else "zone-map skip rate n/a")
            lines += [
                "",
                f"columnar segments: scanned={seg_scanned:.0f} "
                f"skipped={seg_skipped:.0f} "
                f"({rate}) "
                f"frozen_rows="
                f"{all_counters.get('segments.rows_frozen', 0.0):.0f}",
            ]
        lines += ["", "metrics (counters):"]
        for name, value in counters[:max_metrics]:
            rendered = f"{value:.0f}" if value == int(value) else f"{value:.4f}"
            lines.append(f"  {name:<40} {rendered}")
        if len(counters) > max_metrics:
            lines.append(f"  ... {len(counters) - max_metrics} more")
        histograms = snapshot.get("histograms", {})
        if histograms:
            lines += ["", "metrics (histograms):"]
            for name, h in sorted(histograms.items()):
                lines.append(
                    f"  {name:<40} count={h['count']} sum={h['sum']:.1f} "
                    f"min={h['min']} max={h['max']}"
                )
    return "\n".join(lines)


def _prom_name(name: str) -> str:
    """Dotted metric name -> Prometheus-legal metric name."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _prom_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict[str, Any] | None) -> str:
    """Prometheus text exposition (version 0.0.4) for a registry snapshot.

    Counters add a ``_total`` suffix, histograms emit cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``, matching what a
    scrape endpoint would serve.  Accepts None/empty snapshots (renders
    nothing but stays valid exposition text).
    """
    snapshot = snapshot or {}
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, h in sorted(snapshot.get("histograms", {}).items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(h["buckets"], h["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(float(bound))}"}} '
                f"{cumulative}")
        lines.append(f'{metric}_bucket{{le="+Inf"}} {h["count"]}')
        lines.append(f"{metric}_sum {_prom_value(h['sum'])}")
        lines.append(f"{metric}_count {h['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def render_top(previous: dict[str, Any] | None, current: dict[str, Any],
               interval_seconds: float | None = None,
               slow_entries: list[dict[str, Any]] | None = None) -> str:
    """One frame of ``repro top``: a snapshot-diff operations view.

    With a ``previous`` snapshot and the seconds between the two, lines
    show per-second rates over the interval; without one, cumulative
    totals.  ``slow_entries`` (from the slow-query log) render as the
    current slow-query tail.
    """
    cur = current.get("counters", {})
    prev = (previous or {}).get("counters", {})

    def delta(name: str) -> float:
        return cur.get(name, 0.0) - prev.get(name, 0.0)

    def rate(value: float) -> str:
        if interval_seconds and interval_seconds > 0:
            return f"{value / interval_seconds:10.1f}/s"
        return f"{value:10.0f}"

    def hit_line(label: str, hits: float, misses: float) -> str:
        lookups = hits + misses
        pct = (f"{100.0 * hits / lookups:5.1f}%" if lookups else "  n/a ")
        return (f"  {label:<18} {pct}  "
                f"(hits {hits:.0f} / misses {misses:.0f})")

    mode = (f"delta over {interval_seconds:.1f}s"
            if previous is not None and interval_seconds else "cumulative")
    lines = [f"repro top — {mode}"]
    lines.append(f"  {'queries':<18} {rate(delta('system.queries'))}")
    lines.append(hit_line("result cache",
                          delta("planner.cache.hits"),
                          delta("planner.cache.misses")))
    lines.append(hit_line("extraction cache",
                          delta("cache.hits"), delta("cache.misses")))
    wal_bytes = delta("rdbms.wal.bytes")
    lines.append(f"  {'WAL':<18} {rate(wal_bytes)} bytes  "
                 f"({delta('rdbms.wal.records'):.0f} records)")
    lines.append(f"  {'lock waits':<18} {delta('rdbms.lock.waits'):10.0f}  "
                 f"({delta('rdbms.lock.wait_seconds'):.3f}s waited)")
    snap_builds = delta("rdbms.mvcc.snapshot_builds")
    snap_reuses = delta("rdbms.mvcc.snapshot_reuses")
    if snap_builds or snap_reuses or delta("rdbms.mvcc.read_txns"):
        lines.append(f"  {'mvcc snapshots':<18} "
                     f"{rate(delta('rdbms.mvcc.read_txns'))} reads  "
                     f"(builds {snap_builds:.0f} / reuses {snap_reuses:.0f})")
    admitted = delta("serving.admitted")
    rejected = delta("serving.rejected")
    timed_out = delta("serving.timed_out")
    if admitted or rejected or timed_out:
        lines.append(f"  {'admission':<18} {rate(admitted)} admitted  "
                     f"(rejected {rejected:.0f} / "
                     f"timed out {timed_out:.0f} / "
                     f"txn retries {delta('rdbms.txn.retries'):.0f})")
    seg_scanned = delta("segments.scanned")
    seg_skipped = delta("segments.skipped")
    if seg_scanned or seg_skipped:
        lines.append(f"  {'segments':<18} scanned {seg_scanned:.0f} / "
                     f"pruned {seg_skipped:.0f}")
    captured = delta("slowlog.captured")
    lines.append(f"  {'slow queries':<18} {captured:10.0f}")
    if slow_entries:
        lines.append("  slow-query tail:")
        for entry in slow_entries:
            sql = entry.get("sql", "?")
            if len(sql) > 60:
                sql = sql[:57] + "..."
            lines.append(f"    {entry.get('seconds', 0.0):8.3f}s  {sql}")
    return "\n".join(lines)


def load_telemetry(path: str) -> tuple[list[Span], dict[str, Any] | None]:
    """Read a ``--telemetry`` JSONL file.

    Returns:
        (spans, metrics snapshot) — all metrics records in the file merged
        under the registry rules (each CLI invocation appends the totals
        of its own fresh registry, so counters add up to session totals),
        or None if none was written.
    """
    from repro.telemetry.metrics import MetricsRegistry

    spans: list[Span] = []
    merged: MetricsRegistry | None = None
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("kind", "span")
            if kind == "span":
                spans.append(Span.from_dict(record))
            elif kind == "metrics":
                if merged is None:
                    merged = MetricsRegistry()
                merged.merge(record["snapshot"])
    return spans, merged.snapshot() if merged is not None else None
