"""Trace/metrics reporting: load a telemetry file, summarize, render.

``summarize_trace`` turns a flat span list into the numbers a performance
investigation starts from: the top-k slowest spans and a per-layer time
breakdown.  Layer attribution uses *self time* (a span's duration minus
its children's), so an outer ``system.generate`` span does not absorb the
executor/RDBMS time it merely contains.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.telemetry.tracing import Span

# First dotted component of a span/metric name -> Figure-1 layer.
LAYER_BY_PREFIX = {
    "system": "user",
    "executor": "processing",
    "extraction": "processing",
    "integration": "processing",
    "cache": "storage",
    "mapreduce": "cluster",
    "rdbms": "storage",
    "planner": "storage",
    "segments": "storage",
}


def layer_of(name: str) -> str:
    """Figure-1 layer of a dotted span/metric name (``other`` if unknown)."""
    return LAYER_BY_PREFIX.get(name.split(".", 1)[0], "other")


def summarize_trace(spans: Iterable[Span], top_k: int = 10) -> dict[str, Any]:
    """Aggregate a span list into a report dict.

    Returns keys: ``span_count``, ``trace_count``, ``roots`` (names of
    parentless spans), ``total_seconds`` (sum of root durations),
    ``top_spans`` (``[{name, span_id, duration, attributes}]``, slowest
    first), ``layer_seconds`` (self-time per layer), ``errors`` (names of
    spans with error status).
    """
    spans = list(spans)
    child_time: dict[str, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + span.duration
            )

    layer_seconds: dict[str, float] = {}
    for span in spans:
        self_time = max(span.duration - child_time.get(span.span_id, 0.0), 0.0)
        layer = layer_of(span.name)
        layer_seconds[layer] = layer_seconds.get(layer, 0.0) + self_time

    roots = [s for s in spans if s.parent_id is None]
    slowest = sorted(spans, key=lambda s: s.duration, reverse=True)[:top_k]
    return {
        "span_count": len(spans),
        "trace_count": len({s.trace_id for s in spans}),
        "roots": [s.name for s in roots],
        "total_seconds": sum(s.duration for s in roots),
        "top_spans": [
            {
                "name": s.name,
                "span_id": s.span_id,
                "duration": s.duration,
                "attributes": s.attributes,
            }
            for s in slowest
        ],
        "layer_seconds": dict(
            sorted(layer_seconds.items(), key=lambda kv: kv[1], reverse=True)
        ),
        "errors": [s.name for s in spans if s.status == "error"],
    }


def render_report(summary: dict[str, Any],
                  snapshot: dict[str, Any] | None = None,
                  max_metrics: int = 25) -> str:
    """Human-readable text for a ``summarize_trace`` result.

    With a metrics ``snapshot``, appends the counters (all of them up to
    ``max_metrics``, largest first) and any histograms.
    """
    root_counts: dict[str, int] = {}
    for name in summary["roots"]:
        root_counts[name] = root_counts.get(name, 0) + 1
    roots = ", ".join(
        name if count == 1 else f"{name} x{count}"
        for name, count in root_counts.items()
    )
    lines = [
        f"spans: {summary['span_count']} across "
        f"{summary['trace_count']} trace(s); "
        f"roots: {roots or '(none)'}",
        f"total traced time: {summary['total_seconds']:.4f}s",
        "",
        "per-layer self time:",
    ]
    total = sum(summary["layer_seconds"].values()) or 1.0
    for layer, seconds in summary["layer_seconds"].items():
        lines.append(
            f"  {layer:<12} {seconds:10.4f}s  {100.0 * seconds / total:5.1f}%"
        )
    lines += ["", f"top {len(summary['top_spans'])} slowest spans:"]
    for entry in summary["top_spans"]:
        lines.append(f"  {entry['duration']:10.4f}s  {entry['name']}")
    if summary["errors"]:
        lines += ["", f"spans with errors: {', '.join(summary['errors'])}"]
    if snapshot is not None:
        counters = sorted(snapshot.get("counters", {}).items(),
                          key=lambda kv: kv[1], reverse=True)
        all_counters = snapshot.get("counters", {})
        lookups = all_counters.get("cache.hits", 0.0) \
            + all_counters.get("cache.misses", 0.0)
        if lookups:
            # Dedicated line: the hit rate is the number a caching session
            # is judged by, and the counters may not crack the top list.
            hits = all_counters.get("cache.hits", 0.0)
            lines += [
                "",
                f"extraction cache: cache.hits={hits:.0f} "
                f"cache.misses={all_counters.get('cache.misses', 0.0):.0f} "
                f"({100.0 * hits / lookups:.1f}% hit rate)",
            ]
        query_lookups = all_counters.get("planner.cache.hits", 0.0) \
            + all_counters.get("planner.cache.misses", 0.0)
        if query_lookups:
            query_hits = all_counters.get("planner.cache.hits", 0.0)
            lines += [
                "",
                f"query result cache: hits={query_hits:.0f} "
                f"misses={all_counters.get('planner.cache.misses', 0.0):.0f} "
                f"invalidations="
                f"{all_counters.get('planner.cache.invalidations', 0.0):.0f} "
                f"({100.0 * query_hits / query_lookups:.1f}% hit rate)",
            ]
        seg_scanned = all_counters.get("segments.scanned", 0.0)
        seg_skipped = all_counters.get("segments.skipped", 0.0)
        if seg_scanned or seg_skipped:
            visited = seg_scanned + seg_skipped
            lines += [
                "",
                f"columnar segments: scanned={seg_scanned:.0f} "
                f"skipped={seg_skipped:.0f} "
                f"({100.0 * seg_skipped / visited:.1f}% zone-map skip rate) "
                f"frozen_rows="
                f"{all_counters.get('segments.rows_frozen', 0.0):.0f}",
            ]
        lines += ["", "metrics (counters):"]
        for name, value in counters[:max_metrics]:
            rendered = f"{value:.0f}" if value == int(value) else f"{value:.4f}"
            lines.append(f"  {name:<40} {rendered}")
        if len(counters) > max_metrics:
            lines.append(f"  ... {len(counters) - max_metrics} more")
        histograms = snapshot.get("histograms", {})
        if histograms:
            lines += ["", "metrics (histograms):"]
            for name, h in sorted(histograms.items()):
                lines.append(
                    f"  {name:<40} count={h['count']} sum={h['sum']:.1f} "
                    f"min={h['min']} max={h['max']}"
                )
    return "\n".join(lines)


def load_telemetry(path: str) -> tuple[list[Span], dict[str, Any] | None]:
    """Read a ``--telemetry`` JSONL file.

    Returns:
        (spans, metrics snapshot) — all metrics records in the file merged
        under the registry rules (each CLI invocation appends the totals
        of its own fresh registry, so counters add up to session totals),
        or None if none was written.
    """
    from repro.telemetry.metrics import MetricsRegistry

    spans: list[Span] = []
    merged: MetricsRegistry | None = None
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("kind", "span")
            if kind == "span":
                spans.append(Span.from_dict(record))
            elif kind == "metrics":
                if merged is None:
                    merged = MetricsRegistry()
                merged.merge(record["snapshot"])
    return spans, merged.snapshot() if merged is not None else None
