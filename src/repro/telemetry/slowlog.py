"""Persistent slow-query log.

``SlowQueryLog`` sits behind ``QueryResultCache.execute`` — the single
funnel both ``system.query`` and exploration sessions go through — and
captures every statement whose wall time meets ``threshold_seconds``.
The capture decision is a single float comparison, so the check adds
one ``perf_counter`` pair per query and nothing else; when no log is
attached the cache skips even that.

Each captured entry is one JSON object:

    {"ts": ..., "sql": <normalized>, "seconds": ..., "rows": ...,
     "threshold": ..., "stats_versions": {table: version},
     "plan": [...ANALYZE-annotated lines...],
     "metrics_delta": {counter: delta-over-the-analyze-rerun}}

For SELECTs the plan is obtained by re-running the statement under
``EXPLAIN ANALYZE`` at capture time — slow queries are rare and SELECTs
side-effect free, so the re-run buys exact per-operator actuals and a
per-query telemetry counter delta without taxing the fast path.  DML
statements are logged without a plan.

Entries append to ``<workspace>/slowlog.jsonl`` when a path is given
(surviving reopen) and to memory otherwise.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.telemetry import metrics

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Threshold-gated persistent log of slow statements."""

    def __init__(self, path: str | None = None,
                 threshold_seconds: float = 1.0,
                 annotate: bool = True) -> None:
        self.path = path
        self.threshold_seconds = float(threshold_seconds)
        self.annotate = annotate
        self._lock = threading.Lock()
        self._memory: list[dict] = []
        self._fh = None
        if path is not None:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)

    # ------------------------------------------------------------------
    # capture path

    def observe(self, db, sql: str, seconds: float, rows: int) -> bool:
        """Called for every statement; captures iff over threshold."""
        if seconds < self.threshold_seconds:
            return False
        self.capture(db, sql, seconds, rows)
        return True

    def capture(self, db, sql: str, seconds: float, rows: int) -> dict:
        """Build and append an entry for one known-slow statement."""
        from repro.storage.rdbms import sql as _sql

        registry = metrics.get_registry()
        try:
            normalized = _sql.normalize_sql(sql)
        except Exception:
            normalized = " ".join(sql.split())
        entry = {
            "ts": time.time(),
            "sql": normalized,
            "seconds": seconds,
            "rows": rows,
            "threshold": self.threshold_seconds,
        }
        stmt = None
        try:
            stmt = _sql.parse_sql(sql)
        except Exception:
            pass
        if stmt is not None:
            entry["stats_versions"] = self._stats_versions(db, stmt)
            if self.annotate and isinstance(stmt, _sql.SelectStatement):
                plan, delta = self._annotated_plan(db, stmt, registry)
                if plan is not None:
                    entry["plan"] = plan
                    entry["metrics_delta"] = delta
        self._append(entry)
        registry.inc("slowlog.captured")
        return entry

    @staticmethod
    def _stats_versions(db, stmt) -> dict:
        tables = []
        table = getattr(stmt, "table", None)
        if table:
            tables.append(table)
        join = getattr(stmt, "join_table", None)
        if join:
            tables.append(join)
        versions = {}
        for name in tables:
            try:
                versions[name] = db.statistics().version(name)
            except Exception:
                versions[name] = None
        return versions

    @staticmethod
    def _annotated_plan(db, stmt, registry):
        """Re-run the SELECT under EXPLAIN ANALYZE; return (lines, delta)."""
        from repro.storage.rdbms import sql as _sql

        before = registry.snapshot()["counters"]
        try:
            rows = _sql.execute_statement(
                db, _sql.ExplainStatement(select=stmt, analyze=True))
        except Exception:
            return None, None
        after = registry.snapshot()["counters"]
        delta = {
            name: after[name] - before.get(name, 0)
            for name in after
            if after[name] != before.get(name, 0)
        }
        return [r["plan"] for r in rows], delta

    # ------------------------------------------------------------------
    # storage

    def _append(self, entry: dict) -> None:
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self._memory.append(entry)
            if self.path is not None:
                if self._fh is None:
                    self._fh = open(self.path, "a", encoding="utf-8")
                self._fh.write(line + "\n")
                self._fh.flush()

    def entries(self, limit: int | None = None) -> list[dict]:
        """All captured entries, oldest first (tail ``limit`` if given)."""
        if self.path is not None and os.path.exists(self.path):
            out = []
            with self._lock:
                if self._fh is not None:
                    self._fh.flush()
            with open(self.path, "r", encoding="utf-8") as fh:
                for raw in fh:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        out.append(json.loads(raw))
                    except (ValueError, UnicodeDecodeError):
                        continue
        else:
            with self._lock:
                out = list(self._memory)
        if limit is not None:
            out = out[-limit:]
        return out

    def tail(self, limit: int = 5) -> list[dict]:
        """Most recent ``limit`` entries, slowest-last order preserved."""
        return self.entries(limit=limit)

    def clear(self) -> int:
        """Drop all entries; returns how many were removed."""
        removed = len(self.entries())
        with self._lock:
            self._memory.clear()
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            if self.path is not None and os.path.exists(self.path):
                os.remove(self.path)
        return removed

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
