"""Cardinality feedback: the optimizer healing itself from its own telemetry.

After a planned execution we know two numbers for an access path: the
planner's estimated row count and the rows the operator actually
produced.  When the two disagree by more than ``ratio_threshold`` (a
q-error, ``max(est, actual) / min(est, actual)`` with both floored at
one row), the misestimate is recorded against a ``(table, column,
predicate shape)`` key.  ``StatisticsManager`` consults the pending set
on its next ``stats()`` call and runs a *targeted* re-ANALYZE of just
the offending columns instead of waiting for drift-based refresh.

Entries carry the table version (from the commit-listener stream) at
which they were last resolved: a misestimate that survives its own
re-ANALYZE — e.g. a correlated predicate a per-column histogram cannot
capture — does not re-trigger until new commits change the table, so
the feedback loop converges instead of re-analyzing on every query.

This module is deliberately dependency-free (no planner/stats imports):
it is a pure data structure so either side can own one without cycles.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["FeedbackEntry", "CardinalityFeedback"]

#: predicate shapes a feedback key may carry
SHAPES = ("eq", "neq", "range", "like", "in", "null")


@dataclass
class FeedbackEntry:
    """Last observed estimate/actual pair for one (table, column, shape)."""

    table: str
    column: str
    shape: str
    est_rows: float = 0.0
    actual_rows: int = 0
    ratio: float = 1.0
    occurrences: int = 0
    misestimates: int = 0
    version: int = 0
    pending: bool = False
    resolved_version: int | None = None

    def as_dict(self) -> dict:
        return {
            "table": self.table,
            "column": self.column,
            "shape": self.shape,
            "est_rows": self.est_rows,
            "actual_rows": self.actual_rows,
            "ratio": self.ratio,
            "occurrences": self.occurrences,
            "misestimates": self.misestimates,
            "pending": self.pending,
        }


def q_error(est_rows: float, actual_rows: float) -> float:
    """Symmetric misestimation ratio, floored at one row on both sides."""
    est = max(float(est_rows), 1.0)
    actual = max(float(actual_rows), 1.0)
    return est / actual if est >= actual else actual / est


@dataclass
class CardinalityFeedback:
    """Thread-safe store of cardinality misestimates awaiting re-ANALYZE."""

    ratio_threshold: float = 4.0
    _entries: dict[tuple[str, str, str], FeedbackEntry] = field(
        default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def record(self, table: str, column: str, shape: str,
               est_rows: float, actual_rows: int, version: int) -> bool:
        """Record one estimate/actual observation.

        Returns True when the observation crossed ``ratio_threshold``
        and newly marks the column pending for targeted re-ANALYZE.
        """
        ratio = q_error(est_rows, actual_rows)
        with self._lock:
            key = (table, column, shape)
            entry = self._entries.get(key)
            if entry is None:
                entry = FeedbackEntry(table=table, column=column, shape=shape)
                self._entries[key] = entry
            entry.occurrences += 1
            entry.est_rows = float(est_rows)
            entry.actual_rows = int(actual_rows)
            entry.ratio = ratio
            entry.version = version
            if ratio <= self.ratio_threshold:
                return False
            entry.misestimates += 1
            if entry.pending or entry.resolved_version == version:
                return False  # already queued / already healed at this version
            entry.pending = True
            return True

    def pending(self, table: str) -> tuple[str, ...]:
        """Columns of ``table`` awaiting targeted re-ANALYZE (sorted)."""
        with self._lock:
            return tuple(sorted({
                e.column for e in self._entries.values()
                if e.table == table and e.pending
            }))

    def resolve(self, table: str, columns, version: int) -> None:
        """Mark ``columns`` of ``table`` re-analyzed at ``version``."""
        wanted = set(columns)
        with self._lock:
            for entry in self._entries.values():
                if entry.table == table and entry.column in wanted:
                    entry.pending = False
                    entry.resolved_version = version

    def entries(self) -> list[FeedbackEntry]:
        with self._lock:
            return sorted(self._entries.values(),
                          key=lambda e: (e.table, e.column, e.shape))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
