"""Metrics: counters, gauges, and fixed-bucket histograms with merging.

A :class:`MetricsRegistry` is a flat map from dotted metric names to
values.  Names follow ``<layer>.<component>.<detail>`` (see DESIGN.md §8):
``rdbms.wal.records``, ``executor.rows.<op>``, ``mapreduce.shuffle.bytes``.

Three aggregation rules keep the registry mergeable across threads and
processes:

* **counters** add (commutative, so merge order never matters),
* **gauges** take the last written value,
* **histograms** have bucket boundaries fixed at first observation and add
  per-bucket counts element-wise.

All mutation happens under one lock (thread-safe); cross-process
aggregation goes through :meth:`MetricsRegistry.snapshot` — a plain
JSON-able dict that pickles cheaply — and :meth:`MetricsRegistry.merge`.
The execution backends (:mod:`repro.cluster.backends`) run every chunk of
work under a fresh worker-local registry and merge the snapshot back into
the caller's registry, so totals are identical across serial, thread, and
process execution.

The *ambient* registry is resolved per thread: instrumented code calls
:func:`get_registry`, which returns the innermost :func:`use_registry`
override for this thread, falling back to one process-wide default.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

# Latency-style buckets (seconds).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
# Size-style buckets (rows, bytes, ...).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000,
)


class _Histogram:
    """Fixed-boundary bucket counts plus sum/count/min/max."""

    __slots__ = ("buckets", "counts", "sum", "count", "min", "max")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = overflow
        self.sum = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    def merge_dict(self, data: dict[str, Any]) -> None:
        if tuple(data["buckets"]) != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different bucket boundaries: "
                f"{tuple(data['buckets'])} vs {self.buckets}"
            )
        for i, n in enumerate(data["counts"]):
            self.counts[i] += n
        self.sum += data["sum"]
        self.count += data["count"]
        for bound_key, pick in (("min", min), ("max", max)):
            other = data.get(bound_key)
            if other is None:
                continue
            ours = getattr(self, bound_key)
            setattr(self, bound_key, other if ours is None else pick(ours, other))


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # ------------------------------------------------------------- recording

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins on merge)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float,
                buckets: Sequence[float] | None = None) -> None:
        """Record ``value`` into histogram ``name``.

        Bucket boundaries are fixed by the first observation (``buckets``
        or :data:`DEFAULT_TIME_BUCKETS`); later ``buckets`` arguments are
        ignored.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = _Histogram(buckets or DEFAULT_TIME_BUCKETS)
                self._histograms[name] = histogram
            histogram.observe(value)

    # --------------------------------------------------------------- reading

    def get(self, name: str) -> float:
        """Counter value (0.0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def labeled(self, prefix: str) -> Counter:
        """Counters under ``prefix.`` keyed by the remainder of the name.

        ``labeled("executor.rows")`` returns ``Counter({"b": 12, ...})``
        for counters ``executor.rows.b`` etc.  Missing keys read as 0 —
        Counter semantics, which is what accumulation sites rely on.
        """
        cut = len(prefix) + 1
        with self._lock:
            return Counter({
                name[cut:]: value
                for name, value in self._counters.items()
                if name.startswith(prefix + ".")
            })

    def histogram(self, name: str) -> dict[str, Any] | None:
        """Histogram state as a dict, or None if never observed."""
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.to_dict() if histogram is not None else None

    def counter_names(self) -> list[str]:
        with self._lock:
            return sorted(self._counters)

    # ------------------------------------------------------------ aggregation

    def snapshot(self) -> dict[str, Any]:
        """JSON-able (and picklable) copy of the full registry state."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.to_dict() for name, h in self._histograms.items()
                },
            }

    def merge(self, other: "MetricsRegistry | dict[str, Any]") -> None:
        """Fold another registry (or a snapshot of one) into this one.

        Counters add, gauges take the incoming value, histograms add
        bucket counts (boundaries must match).

        Raises:
            ValueError: histogram bucket boundaries differ.
        """
        data = other.snapshot() if isinstance(other, MetricsRegistry) else other
        with self._lock:
            for name, value in data.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            self._gauges.update(data.get("gauges", {}))
            for name, hdata in data.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = _Histogram(hdata["buckets"])
                    self._histograms[name] = histogram
                histogram.merge_dict(hdata)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ---------------------------------------------------------------- export

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the current registry state."""
        from repro.telemetry.report import render_prometheus

        return render_prometheus(self.snapshot())


# --------------------------------------------------------- ambient registry

_GLOBAL = MetricsRegistry()
_ambient = threading.local()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL


def get_registry() -> MetricsRegistry:
    """The registry instrumented code should write to *right now*.

    The innermost :func:`use_registry` override installed on this thread,
    else the process-wide default.
    """
    stack = getattr(_ambient, "stack", None)
    return stack[-1] if stack else _GLOBAL


def push_registry(registry: MetricsRegistry) -> None:
    """Install ``registry`` as this thread's ambient registry.

    Prefer :func:`use_registry`; the explicit push/pop pair exists for
    worker-side code (see ``repro.cluster.backends``) where the push and
    pop straddle a function boundary.
    """
    stack = getattr(_ambient, "stack", None)
    if stack is None:
        stack = _ambient.stack = []
    stack.append(registry)


def pop_registry() -> MetricsRegistry:
    """Undo the innermost :func:`push_registry` on this thread."""
    return _ambient.stack.pop()


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the ambient registry for this thread."""
    push_registry(registry)
    try:
        yield registry
    finally:
        pop_registry()
