"""Observability subsystem: metrics, tracing spans, and trace reports.

The paper's blueprint gives the processing layer a semantic debugger and
the exploitation layer tools to inspect *how* structure was produced —
both presuppose a system that can observe itself (Impliance makes
self-monitoring a first-class appliance concern).  This package is that
substrate, dependency-free and always importable:

* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry`; counters,
  gauges, fixed-bucket histograms; thread-safe, and mergeable across
  processes via snapshots (the execution backends do this automatically).
* :mod:`repro.telemetry.tracing` — :class:`Tracer` producing hierarchical
  spans with a context-manager API; in-memory and JSONL exporters; a
  no-op tracer when disabled, so instrumentation can live in hot paths.
* :mod:`repro.telemetry.report` — ``summarize_trace`` /
  ``render_report``: top-k slowest spans and per-layer time breakdown.

Typical session (what ``repro --telemetry out.jsonl <cmd>`` does)::

    session = telemetry.enable(jsonl_path="out.jsonl")
    ...  # run instrumented work: spans + metrics collect
    snapshot = session.finish()      # appends the metrics snapshot
    telemetry.disable()

Metrics *always* collect into the ambient registry (they are cheap and
power ``ExecutionStats``); ``enable``/``disable`` toggle span recording.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.telemetry.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    get_registry,
    global_registry,
    pop_registry,
    push_registry,
    use_registry,
)
from repro.telemetry.report import (
    layer_of,
    load_telemetry,
    render_report,
    summarize_trace,
)
from repro.telemetry.tracing import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    NoopTracer,
    Span,
    Tracer,
    enabled,
    get_tracer,
    set_tracer,
)


@dataclass
class TelemetrySession:
    """Handle for one enable()..disable() window."""

    tracer: Tracer
    memory: InMemorySpanExporter
    jsonl: JsonlSpanExporter | None
    registry: MetricsRegistry

    def spans(self) -> list[Span]:
        """Spans finished so far in this session."""
        return list(self.memory.spans)

    def flush(self) -> None:
        """Flush the JSONL exporter (no-op for in-memory only sessions)."""
        if self.jsonl is not None:
            self.jsonl.flush()

    def finish(self) -> dict[str, Any]:
        """Snapshot the metrics registry, append it to the JSONL file (if
        any), close the file, and return the snapshot."""
        snapshot = self.registry.snapshot()
        if self.jsonl is not None:
            self.jsonl.export_metrics(snapshot)
            self.jsonl.close()
        return snapshot


_session: TelemetrySession | None = None


def enable(jsonl_path: str | None = None,
           registry: MetricsRegistry | None = None) -> TelemetrySession:
    """Turn span recording on; returns the session handle.

    Args:
        jsonl_path: when given, finished spans stream to this JSONL file
            and ``session.finish()`` appends the metrics snapshot.
        registry: the registry ``finish()`` snapshots (default: the
            current ambient registry).

    Raises:
        RuntimeError: telemetry is already enabled.
    """
    global _session
    if _session is not None:
        raise RuntimeError("telemetry already enabled; call disable() first")
    memory = InMemorySpanExporter()
    exporters: list[Any] = [memory]
    jsonl = JsonlSpanExporter(jsonl_path) if jsonl_path is not None else None
    if jsonl is not None:
        exporters.append(jsonl)
    # pid-based id prefix: successive CLI runs appending to one JSONL file
    # must not collide on trace/span ids
    tracer = Tracer(exporters, id_prefix=f"{os.getpid()}.")
    set_tracer(tracer)
    _session = TelemetrySession(
        tracer=tracer, memory=memory, jsonl=jsonl,
        registry=registry if registry is not None else get_registry(),
    )
    return _session


def disable() -> None:
    """Turn span recording off (idempotent); closes the JSONL file."""
    global _session
    if _session is not None and _session.jsonl is not None:
        _session.jsonl.close()
    _session = None
    set_tracer(None)


def current_session() -> TelemetrySession | None:
    return _session


__all__ = [
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "MetricsRegistry",
    "NoopTracer",
    "Span",
    "TelemetrySession",
    "Tracer",
    "current_session",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "get_tracer",
    "global_registry",
    "layer_of",
    "load_telemetry",
    "pop_registry",
    "push_registry",
    "render_report",
    "set_tracer",
    "summarize_trace",
    "use_registry",
]
