"""AST for the xlog language: operators and predicate expressions.

Tuple streams are lists of dicts; document streams are lists of
:class:`~repro.docmodel.document.Document`.  Extract ops turn a document
stream into a tuple stream with the standard extraction fields
``doc_id, entity, attribute, value, confidence, span_start, span_end``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


# ------------------------------------------------------------- expressions


@dataclass(frozen=True)
class FieldRef:
    """Reference to a tuple field by name."""

    name: str


@dataclass(frozen=True)
class Const:
    """A literal value."""

    value: Any


@dataclass(frozen=True)
class Compare:
    """Binary comparison: one of = != < <= > >=."""

    op: str
    left: Any
    right: Any


@dataclass(frozen=True)
class Logic:
    """and / or / not over sub-expressions."""

    op: str
    operands: tuple[Any, ...]


def eval_expr(node: Any, row: dict[str, Any]) -> Any:
    """Evaluate a predicate expression against one tuple.

    Comparisons involving a missing/None field are False (so filters never
    crash on heterogeneous tuples).
    """
    if isinstance(node, Const):
        return node.value
    if isinstance(node, FieldRef):
        return row.get(node.name)
    if isinstance(node, Compare):
        left = eval_expr(node.left, row)
        right = eval_expr(node.right, row)
        if left is None or right is None:
            return False
        try:
            if node.op == "=":
                return left == right
            if node.op == "!=":
                return left != right
            if node.op == "<":
                return left < right
            if node.op == "<=":
                return left <= right
            if node.op == ">":
                return left > right
            if node.op == ">=":
                return left >= right
        except TypeError:
            return False
        raise ValueError(f"unknown comparison {node.op!r}")
    if isinstance(node, Logic):
        if node.op == "and":
            return all(eval_expr(o, row) for o in node.operands)
        if node.op == "or":
            return any(eval_expr(o, row) for o in node.operands)
        if node.op == "not":
            return not eval_expr(node.operands[0], row)
        raise ValueError(f"unknown logic op {node.op!r}")
    raise ValueError(f"cannot evaluate expression node {node!r}")


def expr_fields(node: Any) -> set[str]:
    """All field names an expression references."""
    if isinstance(node, FieldRef):
        return {node.name}
    if isinstance(node, Compare):
        return expr_fields(node.left) | expr_fields(node.right)
    if isinstance(node, Logic):
        out: set[str] = set()
        for operand in node.operands:
            out |= expr_fields(operand)
        return out
    return set()


def render_expr(node: Any) -> str:
    """Back to (approximate) source form, for plan display."""
    if isinstance(node, Const):
        return repr(node.value)
    if isinstance(node, FieldRef):
        return node.name
    if isinstance(node, Compare):
        return f"{render_expr(node.left)} {node.op} {render_expr(node.right)}"
    if isinstance(node, Logic):
        if node.op == "not":
            return f"not ({render_expr(node.operands[0])})"
        joiner = f" {node.op} "
        return "(" + joiner.join(render_expr(o) for o in node.operands) + ")"
    return repr(node)


# ---------------------------------------------------------------- operators


@dataclass
class Op:
    """Base operator: ``name`` is the bound variable, ``inputs`` the
    operator's input variable names."""

    name: str = ""
    inputs: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class DocsOp(Op):
    """Source: the corpus bound at execution time."""

    def describe(self) -> str:
        return "docs()"


@dataclass
class ExtractOp(Op):
    """Run a registered extractor over a document stream."""

    extractor: str = ""

    def describe(self) -> str:
        return f"extract({self.inputs[0]}, {self.extractor!r})"


@dataclass
class FilterOp(Op):
    """Keep tuples satisfying a predicate expression."""

    predicate: Any = None

    def describe(self) -> str:
        return f"filter({self.inputs[0]}, {render_expr(self.predicate)})"


@dataclass
class DocFilterOp(Op):
    """Keep documents containing at least one keyword group.

    ``keyword_groups`` is a list of groups; a document passes when for some
    group *all* its keywords occur (case-insensitive substring).  Inserted
    by the optimizer as a cheap pre-filter before expensive extractors.
    """

    keyword_groups: list[list[str]] = field(default_factory=list)

    def describe(self) -> str:
        groups = " | ".join("&".join(g) for g in self.keyword_groups)
        return f"docfilter({self.inputs[0]}, {groups})"


@dataclass
class SelectOp(Op):
    """Project tuple fields."""

    fields: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return f"select({self.inputs[0]}, {', '.join(self.fields)})"


@dataclass
class JoinOp(Op):
    """Equi-join two tuple streams on a shared field."""

    on: str = ""

    def describe(self) -> str:
        return f"join({self.inputs[0]}, {self.inputs[1]}, on={self.on})"


@dataclass
class UnionOp(Op):
    """Concatenate two tuple streams."""

    def describe(self) -> str:
        return f"union({', '.join(self.inputs)})"


@dataclass
class FuseOp(Op):
    """Fuse conflicting extractions per (entity, attribute)."""

    strategy: str = "weighted_vote"

    def describe(self) -> str:
        return f"fuse({self.inputs[0]}, {self.strategy!r})"


@dataclass
class ResolveOp(Op):
    """Canonicalize entity names with a registered entity resolver."""

    resolver: str = ""

    def describe(self) -> str:
        return f"resolve({self.inputs[0]}, {self.resolver!r})"


@dataclass
class AskOp(Op):
    """Route tuples matching ``where`` to the crowd (HI operator).

    ``mode`` is ``validate`` (keep/drop each routed tuple by crowd verdict)
    or ``verify`` (same, but boost surviving confidence to the vote share).
    Tuples not matching ``where`` pass through untouched.
    """

    mode: str = "validate"
    where: Any = None
    redundancy: int = 3

    def describe(self) -> str:
        cond = render_expr(self.where) if self.where is not None else "true"
        return (f"ask({self.inputs[0]}, {self.mode!r}, where={cond}, "
                f"redundancy={self.redundancy})")


@dataclass
class LimitOp(Op):
    """Keep the first n tuples."""

    n: int = 0

    def describe(self) -> str:
        return f"limit({self.inputs[0]}, {self.n})"


@dataclass
class DedupOp(Op):
    """Drop duplicate tuples.

    Two tuples are duplicates when they agree on ``keys`` (all shared
    fields when ``keys`` is empty).  The first occurrence wins, so a
    higher-confidence extractor placed earlier in a union takes precedence.
    """

    keys: list[str] = field(default_factory=list)

    def describe(self) -> str:
        keys = ", ".join(self.keys) if self.keys else "*"
        return f"dedup({self.inputs[0]}, {keys})"
