"""Execution engine for xlog plans.

Evaluates operators in dependency order, materializing each stream.
Extraction can run either inline or as a map wave on the simulated cluster
(the physical-layer integration).

All work accounting flows through one per-execution
:class:`~repro.telemetry.metrics.MetricsRegistry`: operators record
``executor.*`` counters (characters scanned per extractor, rows per
operator, HI questions asked), extraction payloads record
``extraction.*`` counters even when they run on worker processes (the
backends merge worker-local registries back), and nested map-reduce /
RDBMS work lands in the same registry because it is installed as the
ambient registry for the duration of the run.  :class:`ExecutionStats` is
a thin read view over that registry, keeping the attribute API the
optimizer experiments (E6) and the HI experiments (E2) report on.  When a
tracer is enabled, each operator additionally gets an ``executor.op.*``
span.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Iterator, Sequence

from repro.cache.fingerprint import extractor_fingerprint
from repro.cache.store import ExtractionCache, document_key
from repro.cluster.backends import ExecutionBackend, make_backend
from repro.cluster.mapreduce import MapReduceJob, run_mapreduce
from repro.cluster.simulator import SimulatedCluster
from repro.docmodel.document import Document, Span
from repro.extraction.base import Extraction
from repro.faults.retry import RetryPolicy
from repro.hi.aggregate import aggregate_majority
from repro.hi.tasks import ValidateValueTask
from repro.integration.entity_resolution import Mention
from repro.integration.fusion import fuse_extractions
from repro.telemetry import metrics
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import get_tracer
from repro.lang.ast import (
    AskOp,
    DedupOp,
    DocFilterOp,
    DocsOp,
    ExtractOp,
    FilterOp,
    FuseOp,
    JoinOp,
    LimitOp,
    Op,
    ResolveOp,
    SelectOp,
    UnionOp,
    eval_expr,
)
from repro.lang.optimizer import Optimizer, doc_passes_keyword_groups
from repro.lang.parser import parse_program
from repro.lang.plan import LogicalPlan
from repro.lang.registry import OperatorRegistry


class ExecutionStats:
    """Read view over one execution's :class:`MetricsRegistry`.

    The executor no longer accumulates its own Counters — every number
    below is derived from registry counters/gauges on access, so the same
    run is visible both here (the stable per-execution API) and in the
    merged telemetry snapshot (``repro stats``).  The per-operator maps
    are :class:`collections.Counter`, as before, so readers keep their
    missing-key-is-zero semantics.

    ``backend_name`` / ``real_parallel_seconds`` / ``wave_task_counts``
    describe *real* parallel execution (E15); ``cluster_makespan`` remains
    the *simulated* cost model (E7).  The two are independent and can be
    reported side by side.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 backend_name: str = "inline") -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.backend_name = backend_name

    @property
    def chars_scanned(self) -> Counter:
        return self.registry.labeled("executor.chars_scanned")

    @property
    def docs_extracted(self) -> Counter:
        return self.registry.labeled("executor.docs_extracted")

    @property
    def tuples_produced(self) -> Counter:
        return self.registry.labeled("executor.rows")

    @property
    def wave_task_counts(self) -> Counter:
        return self.registry.labeled("executor.wave_tasks")

    @property
    def hi_questions(self) -> int:
        return int(self.registry.get("executor.hi_questions"))

    @property
    def wall_seconds(self) -> float:
        return self.registry.gauge("executor.wall_seconds")

    @property
    def cluster_makespan(self) -> float:
        return self.registry.get("executor.cluster_makespan")

    @property
    def real_parallel_seconds(self) -> float:
        return self.registry.get("executor.real_parallel_seconds")

    @property
    def cache_hits(self) -> int:
        return int(self.registry.get("cache.hits"))

    @property
    def cache_misses(self) -> int:
        return int(self.registry.get("cache.misses"))

    @property
    def docs_failed(self) -> int:
        return int(self.registry.get("executor.docs_failed"))

    @property
    def total_chars_scanned(self) -> int:
        return int(sum(self.chars_scanned.values()))


def extraction_to_tuple(extraction: Extraction) -> dict[str, Any]:
    """The standard tuple form of an extraction."""
    return {
        "doc_id": extraction.span.doc_id,
        "entity": extraction.entity,
        "attribute": extraction.attribute,
        "value": extraction.value,
        "confidence": extraction.confidence,
        "span_start": extraction.span.start,
        "span_end": extraction.span.end,
        "span_text": extraction.span.text,
        "extractor": extraction.extractor,
    }


def tuple_to_extraction(row: dict[str, Any]) -> Extraction:
    """Inverse of :func:`extraction_to_tuple` (for fuse/resolve ops)."""
    return Extraction(
        entity=row.get("entity", ""),
        attribute=row["attribute"],
        value=row["value"],
        span=Span(row["doc_id"], row["span_start"], row["span_end"],
                  row.get("span_text", " " * (row["span_end"] - row["span_start"]))),
        confidence=row.get("confidence", 1.0),
        extractor=row.get("extractor", ""),
    )


def _record_extraction_metrics(rows: list[dict[str, Any]]) -> None:
    """Per-document ``extraction.*`` counters (docs, yield, precision proxy).

    Runs wherever the payload runs — inline, pool thread, or worker
    process; the ambient registry there is merged back by the backend, so
    totals are backend-independent.  ``high_confidence`` vs
    ``extractions`` is the precision proxy: the share of output the
    debugger would trust without human review.
    """
    registry = metrics.get_registry()
    registry.inc("extraction.docs")
    registry.inc("extraction.extractions", len(rows))
    registry.inc(
        "extraction.high_confidence",
        sum(1 for r in rows if r.get("confidence", 1.0) >= 0.9),
    )


#: Per-document retry budget: extraction faults are usually transient
#: (resource hiccups, injected test faults), so three quick attempts with
#: tightly capped backoff resolve them without visible latency.
DEFAULT_DOC_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001,
                                max_delay=0.02)

_POISON_KEY = "__poison__"


def _poison_row(doc_id: str, exc: BaseException, attempts: int) -> dict[str, Any]:
    """Quarantine marker emitted in place of a failed document's rows.

    Markers flow through backends and map-reduce exactly like ordinary
    rows (picklable, mergeable), then get stripped — and recorded — by the
    executor before results reach downstream operators.
    """
    return {
        _POISON_KEY: True,
        "doc_id": doc_id,
        "error": str(exc),
        "error_type": type(exc).__name__,
        "attempts": attempts,
    }


def _is_poison(rows: list[Any]) -> bool:
    """Is this per-document row list a quarantine marker?"""
    return bool(rows) and isinstance(rows[0], dict) \
        and bool(rows[0].get(_POISON_KEY))


@dataclass(frozen=True)
class _ExtractDocPayload:
    """Per-document extraction payload for execution backends.

    A module-level dataclass (not a lambda) so process backends can ship
    it to workers — every bundled extractor pickles cleanly.

    Retrying happens *inside* the payload, in whatever worker it landed
    on: a transient fault is healed on the spot without a round-trip
    through the pool, and fault-injector attempt counts work unchanged on
    process backends (the retries all see the same unpickled injector).
    A document still failing after the budget yields a poison marker
    instead of raising — unless ``fail_fast``, which restores
    abort-on-first-error semantics.
    """

    extractor: Any  # Extractor; Any avoids a hard import cycle in hints
    retry: RetryPolicy | None = None
    fail_fast: bool = False

    def __call__(self, doc: Document) -> list[dict[str, Any]]:
        try:
            extractions = self._attempt(doc)
        except Exception as exc:
            if self.fail_fast:
                raise
            metrics.get_registry().inc("extraction.poison_docs")
            attempts = self.retry.max_attempts if self.retry is not None else 1
            return [_poison_row(doc.doc_id, exc, attempts)]
        rows = [extraction_to_tuple(e) for e in extractions]
        _record_extraction_metrics(rows)
        return rows

    def _attempt(self, doc: Document) -> list[Extraction]:
        if self.retry is None:
            return self.extractor.extract(doc)
        return self.retry.run(lambda: self.extractor.extract(doc),
                              salt=doc.doc_id)


@dataclass(frozen=True)
class _ExtractMapFn:
    """Map-function form of extraction for the Map-Reduce path."""

    extractor: Any
    retry: RetryPolicy | None = None
    fail_fast: bool = False

    def __call__(self, doc: Document) -> list[tuple[str, dict[str, Any]]]:
        payload = _ExtractDocPayload(self.extractor, retry=self.retry,
                                     fail_fast=self.fail_fast)
        return [(doc.doc_id, row) for row in payload(doc)]


@dataclass(frozen=True)
class _BackendFailureMarker:
    """``on_item_failure`` callback: poison marker for a dead-worker item.

    Runs caller-side, after the backend's own retry/rebuild budget is
    spent on a document — the only failures that reach here are ones the
    in-worker payload could not catch (the worker process died).
    """

    retry: RetryPolicy | None

    def __call__(self, doc: Document,
                 exc: BaseException) -> list[dict[str, Any]]:
        metrics.get_registry().inc("extraction.poison_docs")
        attempts = self.retry.max_attempts if self.retry is not None else 1
        return [_poison_row(doc.doc_id, exc, attempts)]


def _values_reduce(key: Any, values: list[Any]) -> list[Any]:
    """Identity reduce (picklable module-level replacement for a lambda)."""
    return values


@dataclass
class ExecutionResult:
    """Output rows plus the executed plan and its statistics.

    ``failed_docs`` lists quarantined documents — one dict per document
    whose extraction still failed after retries (``doc_id``, ``error``,
    ``error_type``, ``attempts``, ``extractor``).  The run itself
    completed; these documents simply contributed no rows.
    """

    rows: list[dict[str, Any]]
    stats: ExecutionStats
    plan: LogicalPlan
    failed_docs: list[dict[str, Any]] = field(default_factory=list)


class Executor:
    """Evaluates a logical plan over a corpus.

    Args:
        registry: name bindings for extractors/resolvers/crowd.
        cluster: when given, extract operators run as map waves on the
            simulated cluster and the job makespans accumulate in
            ``stats.cluster_makespan``.
        backend: real execution backend (``"serial"`` / ``"thread"`` /
            ``"process"``, an :class:`ExecutionBackend`, or None for
            inline).  Extraction payloads fan out on it — combined with a
            cluster they run inside the simulated waves; without one they
            run as a plain parallel map.  Output is identical across
            backends (the determinism contract).
        cache: content-addressed extraction cache.  Each extract operator
            partitions its documents into hits and misses against
            ``(document key, extractor fingerprint)``; only the misses
            are extracted (on whichever execution path is configured) and
            fresh results are written back.  Output — including its byte
            order — is identical with and without the cache; the
            ``executor.*`` work counters then measure only extraction
            actually performed, with ``cache.hits``/``cache.misses``
            recorded alongside.
        retry: per-document retry policy for extraction faults; defaults
            to :data:`DEFAULT_DOC_RETRY` (three quick attempts).  A
            document that still fails is *quarantined*: it contributes no
            rows, the run completes, and the failure is reported in
            ``ExecutionResult.failed_docs``.
        fail_fast: restore abort-on-first-error semantics — no retries,
            the first extraction failure propagates.
    """

    def __init__(self, registry: OperatorRegistry,
                 cluster: SimulatedCluster | None = None,
                 backend: str | ExecutionBackend | None = None,
                 cache: ExtractionCache | None = None,
                 retry: RetryPolicy | None = None,
                 fail_fast: bool = False) -> None:
        self._registry = registry
        self._cluster = cluster
        self._fail_fast = fail_fast
        self._retry = retry if retry is not None \
            else (None if fail_fast else DEFAULT_DOC_RETRY)
        if isinstance(backend, str):
            backend_retry = RetryPolicy(max_attempts=1) if fail_fast else None
            self._backend = make_backend(backend, retry=backend_retry)
        else:
            self._backend = backend
        self._cache = cache
        self._failed_docs: list[dict[str, Any]] = []

    def execute(self, plan: LogicalPlan,
                corpus: Sequence[Document]) -> ExecutionResult:
        """Run the plan; returns rows of the output stream plus stats.

        The run gets a fresh registry, installed as the thread's ambient
        registry so nested map-reduce and payload metrics accumulate with
        the executor's own; it is merged into the enclosing ambient
        registry afterwards (one global snapshot sees every run).
        """
        registry = MetricsRegistry()
        self._failed_docs = []
        stats = ExecutionStats(
            registry,
            backend_name=self._backend.name if self._backend is not None
            else "inline",
        )
        tracer = get_tracer()
        outer_registry = metrics.get_registry()
        started = time.perf_counter()
        with metrics.use_registry(registry), \
                tracer.span("executor.plan", output=plan.output) as plan_span:
            corpus_list = list(corpus)  # materialize once, not per operator
            streams: dict[str, Any] = {}
            n_ops = 0
            for op in plan.topological():
                n_ops += 1
                op_kind = type(op).__name__.removesuffix("Op").lower()
                with tracer.span(f"executor.op.{op_kind}", op=op.name) as sp:
                    result = self._eval(op, streams, corpus_list, stats)
                    streams[op.name] = result
                    if isinstance(result, list) and result \
                            and isinstance(result[0], dict):
                        registry.inc(f"executor.rows.{op.name}", len(result))
                        sp.set_attribute("rows", len(result))
            plan_span.set_attribute("operators", n_ops)
            registry.set_gauge("executor.wall_seconds",
                               time.perf_counter() - started)
        outer_registry.merge(registry)
        rows = streams[plan.output]
        if rows and isinstance(rows[0], Document):
            rows = [{"doc_id": d.doc_id, "chars": len(d.text)} for d in rows]
        return ExecutionResult(rows=rows, stats=stats, plan=plan,
                               failed_docs=list(self._failed_docs))

    # ------------------------------------------------------------ operators

    def _eval(self, op: Op, streams: dict[str, Any],
              corpus: list[Document], stats: ExecutionStats) -> Any:
        if isinstance(op, DocsOp):
            return list(corpus)  # fresh list: downstream ops own their copy
        if isinstance(op, DocFilterOp):
            docs: list[Document] = streams[op.inputs[0]]
            kept = [
                d for d in docs if doc_passes_keyword_groups(d, op.keyword_groups)
            ]
            stats.registry.inc(
                f"executor.chars_scanned.docfilter:{op.name}",
                sum(len(d.text) for d in docs),
            )
            return kept
        if isinstance(op, ExtractOp):
            return self._eval_extract(op, streams[op.inputs[0]], stats)
        if isinstance(op, FilterOp):
            rows = streams[op.inputs[0]]
            return [r for r in rows if eval_expr(op.predicate, r)]
        if isinstance(op, SelectOp):
            rows = streams[op.inputs[0]]
            return [{f: r.get(f) for f in op.fields} for r in rows]
        if isinstance(op, JoinOp):
            left, right = streams[op.inputs[0]], streams[op.inputs[1]]
            buckets: dict[Any, list[dict[str, Any]]] = {}
            for row in right:
                buckets.setdefault(row.get(op.on), []).append(row)
            joined: list[dict[str, Any]] = []
            for row in left:
                key = row.get(op.on)
                if key is None:
                    continue
                for other in buckets.get(key, ()):
                    merged = dict(other)
                    merged.update(row)
                    joined.append(merged)
            return joined
        if isinstance(op, UnionOp):
            return list(streams[op.inputs[0]]) + list(streams[op.inputs[1]])
        if isinstance(op, FuseOp):
            rows = streams[op.inputs[0]]
            fused = fuse_extractions(
                [tuple_to_extraction(r) for r in rows], strategy=op.strategy
            )
            registry = stats.registry
            registry.inc("integration.fuse.input_rows", len(rows))
            registry.inc("integration.fuse.fused_values", len(fused))
            registry.inc("integration.fuse.conflicts",
                         sum(f.conflict for f in fused))
            return [
                {
                    "entity": f.entity,
                    "attribute": f.attribute,
                    "value": f.value,
                    "confidence": f.confidence,
                    "support": f.support,
                    "conflict": f.conflict,
                    "doc_id": f.spans[0].doc_id if f.spans else "",
                    "span_start": f.spans[0].start if f.spans else 0,
                    "span_end": f.spans[0].end if f.spans else 0,
                    "span_text": f.spans[0].text if f.spans else "",
                }
                for f in fused
            ]
        if isinstance(op, ResolveOp):
            return self._eval_resolve(op, streams[op.inputs[0]], stats)
        if isinstance(op, AskOp):
            return self._eval_ask(op, streams[op.inputs[0]], stats)
        if isinstance(op, LimitOp):
            return list(streams[op.inputs[0]])[: op.n]
        if isinstance(op, DedupOp):
            rows = streams[op.inputs[0]]
            seen: set[tuple] = set()
            out: list[dict[str, Any]] = []
            for row in rows:
                if op.keys:
                    key = tuple(repr(row.get(k)) for k in op.keys)
                else:
                    key = tuple(sorted((k, repr(v)) for k, v in row.items()))
                if key in seen:
                    continue
                seen.add(key)
                out.append(row)
            return out
        raise TypeError(f"cannot execute operator {type(op).__name__}")

    def _eval_extract(self, op: ExtractOp, docs: list[Document],
                      stats: ExecutionStats) -> list[dict[str, Any]]:
        extractor = self._registry.extractor(op.extractor)
        key = f"{op.extractor}@{op.name}"
        registry = stats.registry
        payload = _ExtractDocPayload(extractor, retry=self._retry,
                                     fail_fast=self._fail_fast)

        # Partition into cache hits and misses; only misses are extracted.
        # Cached entries hold the extractor's per-document output in its
        # natural emission order, so reassembly below reproduces the
        # uncached byte stream exactly on every execution path.
        cached: dict[int, list[dict[str, Any]]] = {}
        miss_docs = docs
        fingerprint = ""
        # Duplicate doc_ids inside one operator input (reachable via a
        # union of document streams) would make the per-document
        # regrouping on the cluster path ambiguous — such streams simply
        # bypass the cache.
        if self._cache is not None and docs \
                and len({d.doc_id for d in docs}) == len(docs):
            fingerprint = extractor_fingerprint(extractor)
            with get_tracer().span("cache.lookup", op=op.name) as span:
                miss_docs = []
                for i, doc in enumerate(docs):
                    rows = self._cache.get(document_key(doc), fingerprint)
                    if rows is None:
                        miss_docs.append(doc)
                    else:
                        cached[i] = rows
                span.set_attribute("hits", len(cached))
                span.set_attribute("misses", len(miss_docs))

        total_chars = sum(len(d.text) for d in miss_docs)
        registry.inc(f"executor.chars_scanned.{key}", total_chars)
        registry.inc(f"executor.docs_extracted.{key}", len(miss_docs))

        if self._cluster is not None and docs:
            if miss_docs:
                job = MapReduceJob(
                    map_fn=_ExtractMapFn(extractor, retry=self._retry,
                                         fail_fast=self._fail_fast),
                    reduce_fn=_values_reduce,
                    split_size=max(len(miss_docs) // (len(self._cluster.worker_speeds()) * 4), 1),
                    num_reducers=1,
                    map_cost_per_item=extractor.cost_per_char
                    * (total_chars / len(miss_docs)),
                )
                result = run_mapreduce(job, miss_docs, cluster=self._cluster,
                                       backend=self._backend)
                registry.inc("executor.cluster_makespan", result.makespan)
                registry.inc("executor.real_parallel_seconds",
                             result.real_seconds)
                registry.inc("executor.wave_tasks.map", result.map_tasks)
                registry.inc("executor.wave_tasks.reduce", result.reduce_tasks)
                if fingerprint:
                    # result.output[doc_id] is that document's rows in
                    # emission order (map preserves it, the identity
                    # reduce keeps it) — the per-doc form both the
                    # write-back and the reassembly need.
                    per_miss_doc = [
                        result.output.get(doc.doc_id, []) for doc in miss_docs
                    ]
                    self._cache_write_back(fingerprint, miss_docs,
                                           per_miss_doc)
                    rows = self._flatten(docs, cached, per_miss_doc,
                                         op.extractor)
                else:
                    rows = []
                    for values in result.output.values():
                        if _is_poison(values):
                            self._note_failure(values[0], op.extractor)
                            continue
                        rows.extend(values)
            else:  # fully warm wave: every document hit the cache
                rows = self._flatten(docs, cached, [], op.extractor)
            rows.sort(key=lambda r: (r["doc_id"], r["span_start"], r["attribute"]))
            return rows
        if self._backend is not None and miss_docs:
            started = time.perf_counter()
            # The payload retries and quarantines internally; the backend
            # callback covers failures the payload cannot catch in-process
            # — a worker that died (os._exit, segfault) and kept dying on
            # the rebuilt pool.
            on_item_failure = None
            if not self._fail_fast:
                on_item_failure = _BackendFailureMarker(self._retry)
            per_miss_doc = self._backend.map(payload, miss_docs,
                                             on_item_failure=on_item_failure)
            registry.inc("executor.real_parallel_seconds",
                         time.perf_counter() - started)
            registry.inc("executor.wave_tasks.map", len(miss_docs))
            self._cache_write_back(fingerprint, miss_docs, per_miss_doc)
            # Input order is preserved, so flattening matches the serial
            # loop below row for row.
            return self._flatten(docs, cached, per_miss_doc, op.extractor)
        per_miss_doc = [payload(doc) for doc in miss_docs]
        self._cache_write_back(fingerprint, miss_docs, per_miss_doc)
        return self._flatten(docs, cached, per_miss_doc, op.extractor)

    def _flatten(self, docs: list[Document],
                 cached: dict[int, list[dict[str, Any]]],
                 per_miss_doc: list[list[dict[str, Any]]],
                 extractor_name: str) -> list[dict[str, Any]]:
        """Flatten per-document row lists, diverting quarantine markers."""
        out: list[dict[str, Any]] = []
        for per_doc in self._assemble(docs, cached, per_miss_doc):
            if _is_poison(per_doc):
                self._note_failure(per_doc[0], extractor_name)
            else:
                out.extend(per_doc)
        return out

    def _note_failure(self, marker: dict[str, Any],
                      extractor_name: str) -> None:
        """Record one quarantined document from its poison marker."""
        self._failed_docs.append({
            "doc_id": marker.get("doc_id", ""),
            "error": marker.get("error", ""),
            "error_type": marker.get("error_type", ""),
            "attempts": int(marker.get("attempts", 1)),
            "extractor": extractor_name,
        })
        metrics.get_registry().inc("executor.docs_failed")

    def _cache_write_back(self, fingerprint: str, miss_docs: list[Document],
                          per_doc_rows: list[list[dict[str, Any]]]) -> None:
        """Store freshly extracted rows (empty lists included — an
        unchanged document that yields nothing must also hit next time;
        quarantine markers excluded — a failed document must be retried,
        not remembered as empty)."""
        if self._cache is None or not fingerprint:
            return
        for doc, rows in zip(miss_docs, per_doc_rows):
            if _is_poison(rows):
                continue
            self._cache.put(document_key(doc), fingerprint, rows)

    @staticmethod
    def _assemble(docs: list[Document],
                  cached: dict[int, list[dict[str, Any]]],
                  per_miss_doc: list[list[dict[str, Any]]],
                  ) -> Iterator[list[dict[str, Any]]]:
        """Per-document row lists in original document order, merging
        cache hits with freshly extracted misses."""
        fresh = iter(per_miss_doc)
        for i in range(len(docs)):
            yield cached[i] if i in cached else next(fresh)

    def _eval_resolve(self, op: ResolveOp, rows: list[dict[str, Any]],
                      stats: ExecutionStats) -> list[dict[str, Any]]:
        resolver = self._registry.resolver(op.resolver)
        names = sorted({r.get("entity", "") for r in rows if r.get("entity")})
        mentions = [Mention(i, name) for i, name in enumerate(names)]
        clusters = resolver.resolve(mentions)
        stats.registry.inc("integration.resolve.mentions", len(mentions))
        stats.registry.inc("integration.resolve.clusters", len(clusters))
        stats.registry.inc("integration.resolve.merged",
                           len(mentions) - len(clusters))
        canonical: dict[str, str] = {}
        for cluster in clusters:
            for mention_id in cluster.mention_ids:
                canonical[names[mention_id]] = cluster.canonical_name
        out = []
        for row in rows:
            updated = dict(row)
            entity = row.get("entity", "")
            if entity in canonical:
                updated["entity"] = canonical[entity]
            out.append(updated)
        return out

    def _eval_ask(self, op: AskOp, rows: list[dict[str, Any]],
                  stats: ExecutionStats) -> list[dict[str, Any]]:
        crowd = self._registry.crowd
        if crowd is None:
            raise RuntimeError("program uses ask() but no crowd is registered")
        oracle = self._registry.hi_truth_oracle
        out: list[dict[str, Any]] = []
        for i, row in enumerate(rows):
            if op.where is not None and not eval_expr(op.where, row):
                out.append(row)
                continue
            truth = (
                bool(oracle(row)) if callable(oracle)
                else row.get("confidence", 1.0) >= 0.5
            )
            task = ValidateValueTask(
                task_id=f"{op.name}:{i}",
                prompt=f"Is {row.get('entity')!r}.{row.get('attribute')!r} = "
                       f"{row.get('value')!r} plausible?",
                entity=str(row.get("entity", "")),
                attribute=str(row.get("attribute", "")),
                value=row.get("value"),
            )
            responses = crowd.ask(task, truth, redundancy=op.redundancy)
            stats.registry.inc("executor.hi_questions", len(responses))
            answer, share = aggregate_majority(responses)
            if not answer:
                continue  # crowd rejected the tuple
            accepted = dict(row)
            if op.mode == "verify":
                accepted["confidence"] = share
            out.append(accepted)
        return out


def run_program(source: str, corpus: Sequence[Document],
                registry: OperatorRegistry, optimize: bool = True,
                cluster: SimulatedCluster | None = None,
                backend: str | ExecutionBackend | None = None,
                cache: ExtractionCache | None = None,
                retry: RetryPolicy | None = None,
                fail_fast: bool = False) -> ExecutionResult:
    """Parse, (optionally) optimize, and execute an xlog program."""
    ops, output = parse_program(source)
    plan = LogicalPlan.from_ops(ops, output)
    if optimize:
        # islice: the optimizer only probes a small sample — don't
        # materialize the whole (possibly lazily streamed) corpus for it.
        plan = Optimizer(registry).optimize(plan, list(islice(corpus, 50)))
    return Executor(registry, cluster=cluster, backend=backend,
                    cache=cache, retry=retry,
                    fail_fast=fail_fast).execute(plan, corpus)
