"""Operator registry: binds names used in programs to implementations.

Programs reference extractors, resolvers, and the crowd by name; the
registry is the environment those names resolve in.  Developers register
their domain-specific operators here — "developers may have to write
domain-specific operators, but the framework makes it easy to use such
operators in the programs."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extraction.base import Extractor
from repro.hi.crowd import SimulatedCrowd
from repro.integration.entity_resolution import EntityResolver


class RegistryError(KeyError):
    """Raised when a program references an unregistered name."""


@dataclass
class OperatorRegistry:
    """Named extractors, resolvers, and the crowd used by HI operators."""

    extractors: dict[str, Extractor] = field(default_factory=dict)
    resolvers: dict[str, EntityResolver] = field(default_factory=dict)
    crowd: SimulatedCrowd | None = None
    hi_truth_oracle: object | None = None  # callable(tuple_dict) -> bool

    def register_extractor(self, name: str, extractor: Extractor) -> None:
        if name in self.extractors:
            raise ValueError(f"extractor {name!r} already registered")
        self.extractors[name] = extractor

    def register_resolver(self, name: str, resolver: EntityResolver) -> None:
        if name in self.resolvers:
            raise ValueError(f"resolver {name!r} already registered")
        self.resolvers[name] = resolver

    def extractor(self, name: str) -> Extractor:
        if name not in self.extractors:
            raise RegistryError(f"no extractor registered as {name!r}")
        return self.extractors[name]

    def resolver(self, name: str) -> EntityResolver:
        if name not in self.resolvers:
            raise RegistryError(f"no resolver registered as {name!r}")
        return self.resolvers[name]
