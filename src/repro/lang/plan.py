"""Logical plans: a validated DAG of xlog operators."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterator

from repro.lang.ast import DocFilterOp, DocsOp, ExtractOp, Op


class PlanError(Exception):
    """Raised when a program does not form a valid plan."""


@dataclass
class LogicalPlan:
    """Operators keyed by their bound variable plus the output variable.

    The plan validates that every input is defined before use, that the
    graph is acyclic (guaranteed by define-before-use), and it knows which
    variables are *document* streams vs *tuple* streams so type errors are
    caught before execution.
    """

    ops: dict[str, Op] = field(default_factory=dict)
    output: str = ""

    @staticmethod
    def from_ops(ops: list[Op], output: str) -> "LogicalPlan":
        """Build and validate a plan from parsed operators.

        Raises:
            PlanError: undefined inputs or type mismatches.
        """
        plan = LogicalPlan(output=output)
        for op in ops:
            for input_name in op.inputs:
                if input_name not in plan.ops:
                    raise PlanError(
                        f"operator {op.name!r} uses undefined input {input_name!r}"
                    )
            plan.ops[op.name] = op
        if output not in plan.ops:
            raise PlanError(f"output {output!r} is not defined")
        plan._validate_types()
        return plan

    def is_doc_stream(self, name: str) -> bool:
        """True when the variable holds documents rather than tuples."""
        op = self.ops[name]
        if isinstance(op, DocsOp):
            return True
        if isinstance(op, DocFilterOp):
            return self.is_doc_stream(op.inputs[0])
        return False

    def topological(self) -> Iterator[Op]:
        """Operators in dependency order (insertion order suffices because
        programs define before use), restricted to those the output needs."""
        needed: set[str] = set()
        stack = [self.output]
        while stack:
            name = stack.pop()
            if name in needed:
                continue
            needed.add(name)
            stack.extend(self.ops[name].inputs)
        for name, op in self.ops.items():
            if name in needed:
                yield op

    def consumers_of(self, name: str) -> list[Op]:
        return [op for op in self.ops.values() if name in op.inputs]

    def extract_ops(self) -> list[ExtractOp]:
        return [op for op in self.ops.values() if isinstance(op, ExtractOp)]

    def clone(self) -> "LogicalPlan":
        """Deep copy (rewrite rules mutate the copy)."""
        return copy.deepcopy(self)

    def insert_before(self, target: str, new_op: Op) -> None:
        """Insert ``new_op`` between ``target``'s input and ``target``.

        ``new_op.inputs`` must already point at the stream to intercept;
        ``target``'s matching input is rewired to ``new_op.name``.

        Raises:
            PlanError: name clash or missing target.
        """
        if new_op.name in self.ops:
            raise PlanError(f"variable {new_op.name!r} already defined")
        if target not in self.ops:
            raise PlanError(f"no operator {target!r}")
        target_op = self.ops[target]
        intercepted = new_op.inputs[0]
        if intercepted not in target_op.inputs:
            raise PlanError(
                f"{target!r} does not read {intercepted!r}"
            )
        # Rebuild dict preserving definition order, placing new op before target.
        rebuilt: dict[str, Op] = {}
        for name, op in self.ops.items():
            if name == target:
                rebuilt[new_op.name] = new_op
            rebuilt[name] = op
        target_op.inputs = [
            new_op.name if i == intercepted else i for i in target_op.inputs
        ]
        self.ops = rebuilt

    def render(self) -> str:
        """Readable multi-line plan listing (used by EXPLAIN-style output)."""
        lines = []
        for op in self.topological():
            lines.append(f"{op.name} = {op.describe()}")
        lines.append(f"output {self.output}")
        return "\n".join(lines)

    # ------------------------------------------------------------ internals

    def _validate_types(self) -> None:
        for op in self.ops.values():
            if isinstance(op, (DocsOp,)):
                continue
            if isinstance(op, (ExtractOp, DocFilterOp)):
                for input_name in op.inputs:
                    if not self.is_doc_stream(input_name):
                        raise PlanError(
                            f"{op.name!r} ({op.describe()}) needs a document "
                            f"stream, but {input_name!r} is a tuple stream"
                        )
            else:
                for input_name in op.inputs:
                    if self.is_doc_stream(input_name):
                        raise PlanError(
                            f"{op.name!r} ({op.describe()}) needs a tuple "
                            f"stream, but {input_name!r} is a document stream"
                        )
