"""The declarative IE+II+HI language — Figure 1, processing layer.

"At the heart of this layer is a data model, a declarative language (over
this data model) that combines IE, II, and HI, and a library of basic
operators. ... These programs can be parsed, reformulated, optimized, then
executed."

The language (we call it *xlog*, after the Wisconsin group's own naming) is
a sequence of assignments over streams of tuples:

.. code-block:: text

    pages  = docs()
    temps  = extract(pages, "temp_rules")
    cities = extract(pages, "city_dict")
    temps2 = filter(temps, confidence >= 0.6 and value < 130)
    fused  = fuse(temps2, "weighted_vote")
    good   = ask(fused, "validate", where = confidence < 0.8, redundancy = 5)
    output good

Pipeline: :func:`parse_program` → :class:`LogicalPlan` →
:class:`Optimizer` (rule-based rewrites + cost model) →
:class:`Executor` (optionally running extraction on the simulated
cluster).  Experiment E6 measures the optimizer's benefit.
"""

from repro.lang.ast import (
    AskOp,
    DedupOp,
    DocFilterOp,
    DocsOp,
    ExtractOp,
    FilterOp,
    FuseOp,
    JoinOp,
    LimitOp,
    ResolveOp,
    SelectOp,
    UnionOp,
)
from repro.lang.parser import ParseError, parse_program
from repro.lang.plan import LogicalPlan, PlanError
from repro.lang.registry import OperatorRegistry
from repro.lang.optimizer import Optimizer
from repro.lang.executor import ExecutionResult, ExecutionStats, Executor, run_program

__all__ = [
    "parse_program",
    "ParseError",
    "LogicalPlan",
    "PlanError",
    "OperatorRegistry",
    "Optimizer",
    "Executor",
    "ExecutionResult",
    "ExecutionStats",
    "run_program",
    "DocsOp",
    "ExtractOp",
    "FilterOp",
    "DocFilterOp",
    "SelectOp",
    "JoinOp",
    "FuseOp",
    "ResolveOp",
    "AskOp",
    "UnionOp",
    "LimitOp",
    "DedupOp",
]
