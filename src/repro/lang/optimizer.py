"""Rule-based and cost-based optimization of xlog plans.

The paper's processing layer parses, reformulates, *optimizes*, then
executes declarative IE+II+HI programs.  Two rewrites are implemented (both
semantics-preserving), plus a cost model that decides whether each rewrite
actually pays off:

* **Trigger pre-filtering** — an extractor that can only fire on documents
  containing certain keywords (see
  :meth:`~repro.extraction.base.Extractor.prefilter_terms`) gets a cheap
  :class:`~repro.lang.ast.DocFilterOp` inserted below it, so the expensive
  operator never scans irrelevant documents.  This is the classic
  "push cheap predicates below expensive extraction" optimization.
* **Filter fusion** — adjacent tuple filters merge into one conjunction
  (one pass instead of two).

The cost model estimates per-extractor work as
``cost_per_char × expected characters scanned``; document-filter
selectivity is estimated on a corpus sample.  Experiment E6 measures
naive vs optimized execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.docmodel.document import Document
from repro.lang.ast import DocFilterOp, ExtractOp, FilterOp, Logic
from repro.lang.plan import LogicalPlan
from repro.lang.registry import OperatorRegistry


def doc_passes_keyword_groups(doc: Document, groups: list[list[str]]) -> bool:
    """True when for some group all keywords occur in the document.

    Uses the document's memoized lowercase text — this runs per document
    per filter *and* per selectivity probe, and re-lowercasing the full
    text each call was an O(corpus) allocation on the pre-filter path.
    """
    lowered = doc.text_lower
    return any(all(kw.lower() in lowered for kw in group) for group in groups)


@dataclass
class CostEstimate:
    """Estimated work for a plan (abstract char-scan units)."""

    extract_cost: float = 0.0
    docfilter_cost: float = 0.0
    details: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.extract_cost + self.docfilter_cost


@dataclass
class Optimizer:
    """Optimizes a logical plan against a registry and corpus sample.

    Args:
        registry: resolves extractor names for prefilter terms and costs.
        sample_size: documents sampled to estimate filter selectivity.
        docfilter_cost_per_char: cost of the keyword pre-scan (cheap).
    """

    registry: OperatorRegistry
    sample_size: int = 50
    docfilter_cost_per_char: float = 0.05

    def optimize(self, plan: LogicalPlan,
                 corpus_sample: Sequence[Document] = ()) -> LogicalPlan:
        """Produce an optimized copy of the plan.

        Rewrites are applied only when the cost model predicts a win on the
        provided sample (always applied when no sample is given, since the
        pre-filter is at worst a cheap extra scan).
        """
        optimized = plan.clone()
        self._fuse_adjacent_filters(optimized)
        self._insert_trigger_prefilters(optimized, corpus_sample)
        return optimized

    def estimate_cost(self, plan: LogicalPlan,
                      corpus_sample: Sequence[Document]) -> CostEstimate:
        """Cost estimate for a plan over a corpus like the sample."""
        estimate = CostEstimate()
        if not corpus_sample:
            return estimate
        avg_chars = sum(len(d.text) for d in corpus_sample) / len(corpus_sample)
        selectivity = self._stream_selectivities(plan, corpus_sample)
        for op in plan.topological():
            if isinstance(op, ExtractOp):
                extractor = self.registry.extractor(op.extractor)
                sel = selectivity.get(op.inputs[0], 1.0)
                cost = extractor.cost_per_char * avg_chars * sel
                estimate.extract_cost += cost
                estimate.details[op.name] = cost
            elif isinstance(op, DocFilterOp):
                sel = selectivity.get(op.inputs[0], 1.0)
                cost = self.docfilter_cost_per_char * avg_chars * sel
                estimate.docfilter_cost += cost
                estimate.details[op.name] = cost
        return estimate

    # ------------------------------------------------------------ rewrites

    def _insert_trigger_prefilters(self, plan: LogicalPlan,
                                   corpus_sample: Sequence[Document]) -> None:
        counter = 0
        for op in list(plan.extract_ops()):
            extractor = self.registry.extractor(op.extractor)
            groups = extractor.prefilter_terms()
            if not groups:
                continue
            upstream = plan.ops[op.inputs[0]]
            if isinstance(upstream, DocFilterOp) and (
                upstream.keyword_groups == groups
            ):
                continue  # already filtered identically
            if corpus_sample:
                sample = list(corpus_sample)[: self.sample_size]
                passing = sum(
                    1 for d in sample if doc_passes_keyword_groups(d, groups)
                )
                selectivity = passing / len(sample)
                avg_chars = sum(len(d.text) for d in sample) / len(sample)
                saved = extractor.cost_per_char * avg_chars * (1.0 - selectivity)
                added = self.docfilter_cost_per_char * avg_chars
                if saved <= added:
                    continue  # not worth it (filter passes ~everything)
            counter += 1
            prefilter = DocFilterOp(
                name=f"__prefilter_{op.name}_{counter}",
                inputs=[op.inputs[0]],
                keyword_groups=groups,
            )
            plan.insert_before(op.name, prefilter)

    @staticmethod
    def _fuse_adjacent_filters(plan: LogicalPlan) -> None:
        changed = True
        while changed:
            changed = False
            for op in list(plan.ops.values()):
                if not isinstance(op, FilterOp):
                    continue
                upstream = plan.ops.get(op.inputs[0])
                if not isinstance(upstream, FilterOp):
                    continue
                consumers = plan.consumers_of(upstream.name)
                if len(consumers) != 1 or upstream.name == plan.output:
                    continue  # shared or output stream: leave alone
                op.predicate = Logic("and", (upstream.predicate, op.predicate))
                op.inputs = [upstream.inputs[0]]
                del plan.ops[upstream.name]
                changed = True
                break

    # ------------------------------------------------------------ internals

    def _stream_selectivities(self, plan: LogicalPlan,
                              corpus_sample: Sequence[Document]) -> dict[str, float]:
        """Fraction of documents flowing through each doc-stream variable."""
        sample = list(corpus_sample)[: self.sample_size]
        selectivity: dict[str, float] = {}
        for op in plan.topological():
            if not plan.is_doc_stream(op.name):
                continue
            if isinstance(op, DocFilterOp):
                upstream_sel = selectivity.get(op.inputs[0], 1.0)
                if sample:
                    passing = sum(
                        1 for d in sample
                        if doc_passes_keyword_groups(d, op.keyword_groups)
                    )
                    own = passing / len(sample)
                else:
                    own = 1.0
                selectivity[op.name] = upstream_sel * own
            else:
                selectivity[op.name] = 1.0
        return selectivity
