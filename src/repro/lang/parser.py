"""Parser for xlog programs.

A program is a sequence of lines::

    name = op(arg, ...)     # assignment
    output name             # marks the program's result stream
    # comments and blank lines are skipped

Supported ops and their signatures are documented on the AST classes.
Predicate arguments use Python-like syntax: field names, literals,
comparisons, ``and`` / ``or`` / ``not``, parentheses.
"""

from __future__ import annotations

import re
from typing import Any

from repro.lang.ast import (
    AskOp,
    Compare,
    Const,
    DedupOp,
    DocFilterOp,
    DocsOp,
    ExtractOp,
    FieldRef,
    FilterOp,
    FuseOp,
    JoinOp,
    LimitOp,
    Logic,
    Op,
    ResolveOp,
    SelectOp,
    UnionOp,
)


class ParseError(Exception):
    """Raised on malformed programs."""


_EXPR_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
      | (?P<number>[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
      | (?P<op><=|>=|!=|=|<|>|\(|\))
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )""",
    re.VERBOSE,
)


class _ExprParser:
    """Recursive-descent parser for predicate expressions."""

    def __init__(self, text: str) -> None:
        self._tokens = self._lex(text)
        self._pos = 0

    @staticmethod
    def _lex(text: str) -> list[tuple[str, Any]]:
        tokens: list[tuple[str, Any]] = []
        pos = 0
        while pos < len(text):
            if text[pos].isspace():
                pos += 1
                continue
            match = _EXPR_TOKEN_RE.match(text, pos)
            if match is None or match.end() == pos:
                raise ParseError(f"cannot tokenize expression at {text[pos:pos+15]!r}")
            pos = match.end()
            if match.group("string") is not None:
                raw = match.group("string")
                tokens.append(("const", raw[1:-1]))
            elif match.group("number") is not None:
                raw = match.group("number")
                is_float = "." in raw or "e" in raw.lower()
                tokens.append(("const", float(raw) if is_float else int(raw)))
            elif match.group("op") is not None:
                tokens.append(("op", match.group("op")))
            else:
                word = match.group("word")
                lowered = word.lower()
                if lowered in ("and", "or", "not"):
                    tokens.append(("logic", lowered))
                elif lowered == "true":
                    tokens.append(("const", True))
                elif lowered == "false":
                    tokens.append(("const", False))
                elif lowered in ("none", "null"):
                    tokens.append(("const", None))
                else:
                    tokens.append(("field", word))
        tokens.append(("eof", None))
        return tokens

    def parse(self) -> Any:
        node = self._parse_or()
        if self._tokens[self._pos][0] != "eof":
            raise ParseError(
                f"trailing tokens in expression: {self._tokens[self._pos][1]!r}"
            )
        return node

    def _parse_or(self) -> Any:
        operands = [self._parse_and()]
        while self._at("logic", "or"):
            self._pos += 1
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else Logic("or", tuple(operands))

    def _parse_and(self) -> Any:
        operands = [self._parse_not()]
        while self._at("logic", "and"):
            self._pos += 1
            operands.append(self._parse_not())
        return operands[0] if len(operands) == 1 else Logic("and", tuple(operands))

    def _parse_not(self) -> Any:
        if self._at("logic", "not"):
            self._pos += 1
            return Logic("not", (self._parse_not(),))
        return self._parse_comparison()

    def _parse_comparison(self) -> Any:
        left = self._parse_atom()
        kind, value = self._tokens[self._pos]
        if kind == "op" and value in ("=", "!=", "<", "<=", ">", ">="):
            self._pos += 1
            right = self._parse_atom()
            return Compare(value, left, right)
        return left

    def _parse_atom(self) -> Any:
        kind, value = self._tokens[self._pos]
        if kind == "op" and value == "(":
            self._pos += 1
            node = self._parse_or()
            kind, value = self._tokens[self._pos]
            if kind != "op" or value != ")":
                raise ParseError("expected ')'")
            self._pos += 1
            return node
        if kind == "const":
            self._pos += 1
            return Const(value)
        if kind == "field":
            self._pos += 1
            return FieldRef(value)
        raise ParseError(f"unexpected token {value!r} in expression")

    def _at(self, kind: str, value: Any) -> bool:
        return self._tokens[self._pos] == (kind, value)


def parse_expression(text: str) -> Any:
    """Parse a predicate expression string into AST nodes."""
    return _ExprParser(text).parse()


_ASSIGN_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z_0-9]*)\s*=\s*([A-Za-z_]+)\s*\((.*)\)\s*$")
_OUTPUT_RE = re.compile(r"^\s*output\s+([A-Za-z_][A-Za-z_0-9]*)\s*$")


def _split_args(body: str) -> list[str]:
    """Split op arguments on commas at depth 0, respecting quotes."""
    args: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    for ch in body:
        if quote is not None:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "\"'":
            quote = ch
            current.append(ch)
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    last = "".join(current).strip()
    if last:
        args.append(last)
    return args


def _string_arg(arg: str, context: str) -> str:
    if len(arg) >= 2 and arg[0] in "\"'" and arg[-1] == arg[0]:
        return arg[1:-1]
    raise ParseError(f"{context}: expected a quoted string, got {arg!r}")


def _int_arg(arg: str, context: str) -> int:
    try:
        return int(arg)
    except ValueError as exc:
        raise ParseError(f"{context}: expected an integer, got {arg!r}") from exc


def _kwargs_of(args: list[str]) -> tuple[list[str], dict[str, str]]:
    positional: list[str] = []
    keyword: dict[str, str] = {}
    for arg in args:
        match = re.match(r"^([A-Za-z_][A-Za-z_0-9]*)\s*=\s*(.+)$", arg)
        # An '=' inside a predicate is not a kwarg; only treat as kwarg when
        # the key is a known parameter name.
        if match and match.group(1) in ("where", "redundancy", "on", "n"):
            keyword[match.group(1)] = match.group(2).strip()
        else:
            positional.append(arg)
    return positional, keyword


def parse_program(source: str) -> tuple[list[Op], str]:
    """Parse a full program.

    Returns:
        (operators in source order, name of the output stream).

    Raises:
        ParseError: malformed program, duplicate names, missing output.
    """
    ops: list[Op] = []
    names: set[str] = set()
    output: str | None = None
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        out_match = _OUTPUT_RE.match(line)
        if out_match:
            if output is not None:
                raise ParseError(f"line {line_no}: multiple output statements")
            output = out_match.group(1)
            continue
        assign = _ASSIGN_RE.match(line)
        if not assign:
            raise ParseError(f"line {line_no}: cannot parse {line!r}")
        name, op_name, body = assign.group(1), assign.group(2).lower(), assign.group(3)
        if name in names:
            raise ParseError(f"line {line_no}: duplicate variable {name!r}")
        names.add(name)
        args = _split_args(body)
        ops.append(_build_op(name, op_name, args, line_no))
    if output is None:
        raise ParseError("program has no output statement")
    if output not in names:
        raise ParseError(f"output references unknown variable {output!r}")
    return ops, output


def _build_op(name: str, op_name: str, args: list[str], line_no: int) -> Op:
    ctx = f"line {line_no}"
    positional, kwargs = _kwargs_of(args)
    if op_name == "docs":
        if positional or kwargs:
            raise ParseError(f"{ctx}: docs() takes no arguments")
        return DocsOp(name=name)
    if op_name == "extract":
        if len(positional) != 2:
            raise ParseError(f"{ctx}: extract(input, \"extractor\")")
        return ExtractOp(name=name, inputs=[positional[0]],
                         extractor=_string_arg(positional[1], ctx))
    if op_name == "filter":
        if len(positional) < 2:
            raise ParseError(f"{ctx}: filter(input, predicate)")
        predicate = parse_expression(", ".join(positional[1:]))
        return FilterOp(name=name, inputs=[positional[0]], predicate=predicate)
    if op_name == "docfilter":
        if len(positional) < 2:
            raise ParseError(f"{ctx}: docfilter(input, \"kw\", ...)")
        groups = [[_string_arg(a, ctx)] for a in positional[1:]]
        return DocFilterOp(name=name, inputs=[positional[0]], keyword_groups=groups)
    if op_name == "select":
        if len(positional) < 2:
            raise ParseError(f"{ctx}: select(input, field, ...)")
        return SelectOp(name=name, inputs=[positional[0]], fields=positional[1:])
    if op_name == "join":
        if len(positional) != 2 or "on" not in kwargs:
            raise ParseError(f"{ctx}: join(a, b, on=field)")
        return JoinOp(name=name, inputs=positional, on=kwargs["on"])
    if op_name == "union":
        if len(positional) != 2:
            raise ParseError(f"{ctx}: union(a, b)")
        return UnionOp(name=name, inputs=positional)
    if op_name == "fuse":
        if len(positional) != 2:
            raise ParseError(f"{ctx}: fuse(input, \"strategy\")")
        return FuseOp(name=name, inputs=[positional[0]],
                      strategy=_string_arg(positional[1], ctx))
    if op_name == "resolve":
        if len(positional) != 2:
            raise ParseError(f"{ctx}: resolve(input, \"resolver\")")
        return ResolveOp(name=name, inputs=[positional[0]],
                         resolver=_string_arg(positional[1], ctx))
    if op_name == "ask":
        if len(positional) != 2:
            raise ParseError(f"{ctx}: ask(input, \"mode\", where=..., redundancy=n)")
        where = parse_expression(kwargs["where"]) if "where" in kwargs else None
        redundancy = _int_arg(kwargs["redundancy"], ctx) if "redundancy" in kwargs else 3
        mode = _string_arg(positional[1], ctx)
        if mode not in ("validate", "verify"):
            raise ParseError(f"{ctx}: ask mode must be validate|verify")
        return AskOp(name=name, inputs=[positional[0]], mode=mode,
                     where=where, redundancy=redundancy)
    if op_name == "limit":
        if len(positional) != 2:
            raise ParseError(f"{ctx}: limit(input, n)")
        return LimitOp(name=name, inputs=[positional[0]],
                       n=_int_arg(positional[1], ctx))
    if op_name == "dedup":
        if len(positional) < 1:
            raise ParseError(f"{ctx}: dedup(input, key, ...)")
        return DedupOp(name=name, inputs=[positional[0]],
                       keys=positional[1:])
    raise ParseError(f"{ctx}: unknown operator {op_name!r}")
