"""Data storage layer (Figure 1, second layer).

The paper argues that the different forms of data in an unstructured-data
management system want different storage devices:

* daily crawl snapshots overlap heavily → a *diff* store (Subversion-like):
  :mod:`repro.storage.snapshots`;
* intermediate structured data is read/written sequentially → plain files:
  :mod:`repro.storage.filestore`;
* the final concurrently-edited structure needs transactions → an RDBMS:
  :mod:`repro.storage.rdbms`.

:class:`StorageManager` routes each data form to its device.
"""

from repro.storage.snapshots import SnapshotStore, FullCopyStore
from repro.storage.filestore import RecordFileStore, Record
from repro.storage.manager import StorageManager

__all__ = [
    "SnapshotStore",
    "FullCopyStore",
    "RecordFileStore",
    "Record",
    "StorageManager",
]
