"""Versioned snapshot stores for crawled corpora.

The paper: *"if the unstructured data is retrieved daily from a collection of
Web sites, then the daily snapshots will overlap a lot, and hence may be best
stored in a device such as Subversion, which only stores the 'diff' across
the snapshots, to save space."*

:class:`SnapshotStore` implements exactly that: per document it keeps a chain
of line-level deltas with periodic full keyframes (so checkout cost stays
bounded).  :class:`FullCopyStore` is the naive comparator that stores every
snapshot in full; experiment E5 measures the space ratio between the two.

Both stores persist to a directory as JSON so that on-disk size is a real,
measurable quantity.
"""

from __future__ import annotations

import difflib
import json
import os
from dataclasses import dataclass
from typing import Iterator

from repro.docmodel.document import Document, DocumentMetadata

_OP_EQUAL = "="
_OP_INSERT = "+"
_OP_DELETE = "-"


@dataclass(frozen=True)
class SnapshotInfo:
    """Metadata about one stored version of one document."""

    doc_id: str
    version: int
    is_keyframe: bool
    byte_size: int


def compute_delta(old_lines: list[str], new_lines: list[str]) -> list[list]:
    """Line-level delta transforming ``old_lines`` into ``new_lines``.

    The delta is a list of ops: ``["=", n]`` copies n lines from the old
    version, ``["-", n]`` skips n old lines, ``["+", [lines...]]`` inserts
    new lines.  This is the minimal structure needed to replay the chain.
    """
    matcher = difflib.SequenceMatcher(a=old_lines, b=new_lines, autojunk=False)
    delta: list[list] = []
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "equal":
            delta.append([_OP_EQUAL, i2 - i1])
        elif tag == "delete":
            delta.append([_OP_DELETE, i2 - i1])
        elif tag == "insert":
            delta.append([_OP_INSERT, new_lines[j1:j2]])
        elif tag == "replace":
            delta.append([_OP_DELETE, i2 - i1])
            delta.append([_OP_INSERT, new_lines[j1:j2]])
    return delta


def apply_delta(old_lines: list[str], delta: list[list]) -> list[str]:
    """Apply a delta produced by :func:`compute_delta`.

    Raises:
        ValueError: if the delta does not fit the old version (corruption).
    """
    out: list[str] = []
    cursor = 0
    for op in delta:
        kind = op[0]
        if kind == _OP_EQUAL:
            count = op[1]
            if cursor + count > len(old_lines):
                raise ValueError("delta copies past end of base version")
            out.extend(old_lines[cursor : cursor + count])
            cursor += count
        elif kind == _OP_DELETE:
            count = op[1]
            if cursor + count > len(old_lines):
                raise ValueError("delta deletes past end of base version")
            cursor += count
        elif kind == _OP_INSERT:
            out.extend(op[1])
        else:
            raise ValueError(f"unknown delta op {kind!r}")
    if cursor != len(old_lines):
        raise ValueError("delta does not consume the whole base version")
    return out


class SnapshotStore:
    """Diff-based versioned document store with periodic keyframes.

    Layout: ``<root>/<doc_id>/v<NNNN>.json``; each file is either a keyframe
    (full line list) or a delta against the previous version.  A keyframe is
    written every ``keyframe_every`` versions so checkout replays at most
    that many deltas.
    """

    def __init__(self, root: str, keyframe_every: int = 20) -> None:
        if keyframe_every < 1:
            raise ValueError("keyframe_every must be >= 1")
        self._root = root
        self._keyframe_every = keyframe_every
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------ API

    def commit(self, doc: Document) -> int:
        """Store a new version of ``doc``; returns the new version number."""
        doc_dir = self._doc_dir(doc.doc_id, create=True)
        latest = self.latest_version(doc.doc_id)
        version = 0 if latest is None else latest + 1
        new_lines = doc.lines()
        if version % self._keyframe_every == 0:
            payload = {"keyframe": True, "lines": new_lines}
        else:
            old_lines = self._materialize(doc.doc_id, version - 1)
            payload = {
                "keyframe": False,
                "delta": compute_delta(old_lines, new_lines),
            }
        path = self._version_path(doc.doc_id, version)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        os.replace(tmp, path)
        return version

    def checkout(self, doc_id: str, version: int | None = None) -> Document:
        """Reconstruct a document at ``version`` (default: latest).

        Raises:
            KeyError: unknown document or version.
        """
        latest = self.latest_version(doc_id)
        if latest is None:
            raise KeyError(doc_id)
        if version is None:
            version = latest
        if version < 0 or version > latest:
            raise KeyError(f"{doc_id}@{version}")
        lines = self._materialize(doc_id, version)
        return Document(
            doc_id=doc_id,
            text="".join(lines),
            metadata=DocumentMetadata(source=f"snapshot:{doc_id}@{version}"),
        )

    def latest_version(self, doc_id: str) -> int | None:
        """Highest stored version number, or None if the doc is unknown."""
        doc_dir = self._doc_dir(doc_id, create=False)
        if not os.path.isdir(doc_dir):
            return None
        versions = [
            int(name[1:-5])
            for name in os.listdir(doc_dir)
            if name.startswith("v") and name.endswith(".json")
        ]
        return max(versions) if versions else None

    def doc_ids(self) -> list[str]:
        """IDs of all stored documents."""
        return sorted(
            name for name in os.listdir(self._root)
            if os.path.isdir(os.path.join(self._root, name))
        )

    def history(self, doc_id: str) -> Iterator[SnapshotInfo]:
        """Yield per-version storage info, oldest first."""
        latest = self.latest_version(doc_id)
        if latest is None:
            return
        for version in range(latest + 1):
            path = self._version_path(doc_id, version)
            with open(path, "r", encoding="utf-8") as f:
                payload = json.load(f)
            yield SnapshotInfo(
                doc_id=doc_id,
                version=version,
                is_keyframe=payload["keyframe"],
                byte_size=os.path.getsize(path),
            )

    def total_bytes(self) -> int:
        """Total on-disk size of all stored versions (E5's metric)."""
        total = 0
        for dirpath, _, filenames in os.walk(self._root):
            for name in filenames:
                if name.endswith(".json"):
                    total += os.path.getsize(os.path.join(dirpath, name))
        return total

    # ------------------------------------------------------------ internals

    def _materialize(self, doc_id: str, version: int) -> list[str]:
        keyframe_version = (version // self._keyframe_every) * self._keyframe_every
        path = self._version_path(doc_id, keyframe_version)
        if not os.path.exists(path):
            raise KeyError(f"{doc_id}@{keyframe_version}")
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
        if not payload["keyframe"]:
            raise ValueError(f"expected keyframe at {doc_id}@{keyframe_version}")
        lines: list[str] = payload["lines"]
        for v in range(keyframe_version + 1, version + 1):
            vpath = self._version_path(doc_id, v)
            if not os.path.exists(vpath):
                raise KeyError(f"{doc_id}@{v}")
            with open(vpath, "r", encoding="utf-8") as f:
                vpayload = json.load(f)
            if vpayload["keyframe"]:
                lines = vpayload["lines"]
            else:
                lines = apply_delta(lines, vpayload["delta"])
        return lines

    def _doc_dir(self, doc_id: str, create: bool) -> str:
        safe = doc_id.replace(os.sep, "_")
        path = os.path.join(self._root, safe)
        if create:
            os.makedirs(path, exist_ok=True)
        return path

    def _version_path(self, doc_id: str, version: int) -> str:
        return os.path.join(self._doc_dir(doc_id, create=False), f"v{version:04d}.json")


class FullCopyStore:
    """Naive comparator: stores every snapshot in full.

    Same API subset as :class:`SnapshotStore` (commit / checkout /
    total_bytes) so E5 can swap the two.
    """

    def __init__(self, root: str) -> None:
        self._root = root
        os.makedirs(root, exist_ok=True)

    def commit(self, doc: Document) -> int:
        doc_dir = os.path.join(self._root, doc.doc_id.replace(os.sep, "_"))
        os.makedirs(doc_dir, exist_ok=True)
        existing = [
            int(name[1:-4]) for name in os.listdir(doc_dir)
            if name.startswith("v") and name.endswith(".txt")
        ]
        version = max(existing) + 1 if existing else 0
        path = os.path.join(doc_dir, f"v{version:04d}.txt")
        with open(path, "w", encoding="utf-8") as f:
            f.write(doc.text)
        return version

    def checkout(self, doc_id: str, version: int | None = None) -> Document:
        doc_dir = os.path.join(self._root, doc_id.replace(os.sep, "_"))
        if not os.path.isdir(doc_dir):
            raise KeyError(doc_id)
        versions = sorted(
            int(name[1:-4]) for name in os.listdir(doc_dir)
            if name.startswith("v") and name.endswith(".txt")
        )
        if not versions:
            raise KeyError(doc_id)
        if version is None:
            version = versions[-1]
        path = os.path.join(doc_dir, f"v{version:04d}.txt")
        if not os.path.exists(path):
            raise KeyError(f"{doc_id}@{version}")
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        return Document(doc_id=doc_id, text=text,
                        metadata=DocumentMetadata(source=f"fullcopy:{doc_id}@{version}"))

    def total_bytes(self) -> int:
        total = 0
        for dirpath, _, filenames in os.walk(self._root):
            for name in filenames:
                if name.endswith(".txt"):
                    total += os.path.getsize(os.path.join(dirpath, name))
        return total
