"""Append-only record file store for intermediate structured data.

The paper: *"the system often executes only sequential reads and writes over
intermediate structured data, in which case such data can best be kept in
the file systems."*

:class:`RecordFileStore` is a log-structured store: records (JSON-encodable
dicts) are appended to segment files; reads are full sequential scans.  It
supports segment rotation, tombstone deletes, and compaction.  It is the
device of choice for extraction intermediates (experiment E13 quantifies the
paper's device-choice argument by comparing it to the RDBMS for scan-heavy
workloads).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Iterator

_TOMBSTONE_KEY = "__deleted__"


@dataclass(frozen=True)
class Record:
    """One stored record: an auto-assigned ID plus a JSON-able payload."""

    record_id: int
    payload: dict[str, Any]


class RecordFileStore:
    """Log-structured append-only record store.

    Layout: ``<root>/seg-<NNNN>.jsonl``; each line is
    ``{"id": int, ...payload}`` or a tombstone ``{"id": int, "__deleted__": true}``.
    Record IDs are monotonically increasing across segments.
    """

    def __init__(self, root: str, segment_max_records: int = 10_000,
                 tolerant: bool = False) -> None:
        """Create or reopen a store at ``root``.

        Args:
            root: segment directory.
            segment_max_records: records per segment before rotation.
            tolerant: skip unparseable or id-less segment lines during
                scans instead of raising (invalid UTF-8 bytes are
                decoded with replacement characters first, so flipped
                bytes surface as JSON errors rather than aborting the
                read), counting them in :attr:`corrupt_lines` — the
                count from the most recent complete scan.  Crash-safe
                readers — the extraction cache — opt in; the strict
                default keeps silent data loss impossible elsewhere.
        """
        if segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        self._root = root
        self._segment_max = segment_max_records
        self._tolerant = tolerant
        self.corrupt_lines = 0
        os.makedirs(root, exist_ok=True)
        self._next_id, self._active_segment, self._active_count = self._recover()

    # ------------------------------------------------------------------ API

    def append(self, payload: dict[str, Any]) -> int:
        """Append one record; returns its assigned ID.

        Raises:
            ValueError: if the payload uses the reserved tombstone key.
        """
        if _TOMBSTONE_KEY in payload:
            raise ValueError(f"{_TOMBSTONE_KEY!r} is reserved")
        record_id = self._next_id
        self._next_id += 1
        self._write_line({"id": record_id, **payload})
        return record_id

    def append_many(self, payloads: list[dict[str, Any]]) -> list[int]:
        """Append a batch; returns assigned IDs in order."""
        return [self.append(p) for p in payloads]

    def delete(self, record_id: int) -> None:
        """Mark a record deleted (tombstone; reclaimed by :meth:`compact`)."""
        self._write_line({"id": record_id, _TOMBSTONE_KEY: True})

    def scan(self) -> Iterator[Record]:
        """Sequentially yield all live records, oldest first."""
        deleted: set[int] = set()
        records: dict[int, dict[str, Any]] = {}
        for line in self._scan_lines():
            rid = line.pop("id")
            if line.get(_TOMBSTONE_KEY):
                deleted.add(rid)
                records.pop(rid, None)
            else:
                records[rid] = line
        for rid in sorted(records):
            if rid not in deleted:
                yield Record(record_id=rid, payload=records[rid])

    def scan_where(self, predicate: Callable[[dict[str, Any]], bool]) -> Iterator[Record]:
        """Sequential scan with a payload filter."""
        for record in self.scan():
            if predicate(record.payload):
                yield record

    def count(self) -> int:
        """Number of live records (requires a scan)."""
        return sum(1 for _ in self.scan())

    def compact(self) -> int:
        """Rewrite all segments dropping tombstones; returns live count."""
        live = list(self.scan())
        for name in self._segment_names():
            os.remove(os.path.join(self._root, name))
        self._active_segment = 0
        self._active_count = 0
        for record in live:
            self._write_line({"id": record.record_id, **record.payload})
        return len(live)

    def clear(self) -> int:
        """Delete every segment and reset to an empty store.

        Unlike :meth:`compact` this drops live records too (the extraction
        cache's ``clear`` uses it).  Record IDs restart at 0.  Returns the
        number of segment files removed.
        """
        names = self._segment_names()
        for name in names:
            os.remove(os.path.join(self._root, name))
        self._next_id = 0
        self._active_segment = 0
        self._active_count = 0
        return len(names)

    def total_bytes(self) -> int:
        """Total on-disk size of all segments."""
        return sum(
            os.path.getsize(os.path.join(self._root, name))
            for name in self._segment_names()
        )

    def segment_count(self) -> int:
        return len(self._segment_names())

    # ------------------------------------------------------------ internals

    def _segment_names(self) -> list[str]:
        return sorted(
            name for name in os.listdir(self._root)
            if name.startswith("seg-") and name.endswith(".jsonl")
        )

    def _segment_path(self, index: int) -> str:
        return os.path.join(self._root, f"seg-{index:04d}.jsonl")

    def _scan_lines(self) -> Iterator[dict[str, Any]]:
        errors = "replace" if self._tolerant else "strict"
        corrupt = 0
        for name in self._segment_names():
            with open(os.path.join(self._root, name), "r", encoding="utf-8",
                      errors=errors) as f:
                for raw in f:
                    raw = raw.strip()
                    if not raw:
                        continue
                    if not self._tolerant:
                        yield json.loads(raw)
                        continue
                    try:
                        line = json.loads(raw)
                    except json.JSONDecodeError:
                        corrupt += 1
                        continue
                    if not isinstance(line, dict) or "id" not in line:
                        corrupt += 1
                        continue
                    yield line
        self.corrupt_lines = corrupt

    def _write_line(self, obj: dict[str, Any]) -> None:
        if self._active_count >= self._segment_max:
            self._active_segment += 1
            self._active_count = 0
        path = self._segment_path(self._active_segment)
        with open(path, "a", encoding="utf-8") as f:
            f.write(json.dumps(obj) + "\n")
        self._active_count += 1

    def _recover(self) -> tuple[int, int, int]:
        """Rebuild next-ID and active-segment state from the segments."""
        names = self._segment_names()
        if not names:
            return 0, 0, 0
        max_id = -1
        for line in self._scan_lines():
            max_id = max(max_id, line["id"])
        last_index = int(names[-1][4:-6])
        errors = "replace" if self._tolerant else "strict"
        with open(os.path.join(self._root, names[-1]), "r", encoding="utf-8",
                  errors=errors) as f:
            last_count = sum(1 for raw in f if raw.strip())
        return max_id + 1, last_index, last_count
