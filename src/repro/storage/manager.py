"""Storage manager: routes each data form to its device.

The paper's storage layer holds four forms of data; the manager gives each
its recommended device (all rooted under one workspace directory):

* raw unstructured snapshots → :class:`SnapshotStore` (``raw/``),
* intermediate structured data → :class:`RecordFileStore` (``intermediate/``),
* final structured data → :class:`Database` (``final/``),
* user contributions → :class:`Database` table space too (they need the
  same concurrency control as the final structure).
"""

from __future__ import annotations

import os

from repro.storage.filestore import RecordFileStore
from repro.storage.rdbms.engine import Database
from repro.storage.snapshots import SnapshotStore


class StorageManager:
    """One-stop factory for the storage layer, rooted at a directory.

    Attributes:
        raw: versioned store for crawled/unstructured snapshots.
        intermediate: sequential record store for extraction intermediates.
        final: transactional relational store for the derived structure
            and for user contributions.
    """

    def __init__(self, root: str, durable: bool = True,
                 keyframe_every: int = 20) -> None:
        self._root = root
        os.makedirs(root, exist_ok=True)
        self.raw = SnapshotStore(os.path.join(root, "raw"),
                                 keyframe_every=keyframe_every)
        self.intermediate = RecordFileStore(os.path.join(root, "intermediate"))
        self.final = Database(os.path.join(root, "final") if durable else None)

    @property
    def root(self) -> str:
        return self._root

    def close(self) -> None:
        """Release file handles (the final DB's WAL)."""
        self.final.close()

    def disk_usage(self) -> dict[str, int]:
        """Bytes used per device (raw / intermediate / final WAL)."""
        return {
            "raw": self.raw.total_bytes(),
            "intermediate": self.intermediate.total_bytes(),
            "final_wal": self.final.wal_size_bytes(),
        }
