"""A SQL subset over the mini engine.

Supported statements (enough for the paper's exploitation scenarios — the
"sophisticated user poses a SQL query" path of the DGE model):

* ``CREATE TABLE t (col TYPE [PRIMARY KEY] [NOT NULL], ...)``
* ``INSERT INTO t (c1, c2) VALUES (v1, v2), (v3, v4)``
* ``SELECT <exprs> FROM t [JOIN u ON t.a = u.b] [WHERE <pred>]
  [GROUP BY c1, c2] [HAVING <pred over group keys and aggregate aliases>]
  [ORDER BY c [ASC|DESC]] [LIMIT n]``
  with aggregates COUNT(*), COUNT(c), SUM(c), AVG(c), MIN(c), MAX(c)
* ``UPDATE t SET c = v [, ...] [WHERE <pred>]``
* ``DELETE FROM t [WHERE <pred>]``
* ``EXPLAIN <select>`` — returns the chosen physical plan as rows
* ``EXPLAIN ANALYZE <select>`` — executes the plan with per-operator
  instrumentation and returns the plan annotated with actuals (rows,
  loops, wall time, zone-map pruning) plus an execution summary line

Predicates: comparisons (=, !=, <>, <, <=, >, >=), AND/OR/NOT, ``LIKE`` with
``%``/``_`` wildcards, ``IS [NOT] NULL``, ``IN (v1, v2, ...)``, parentheses.

Execution goes through the cost-based planner in
:mod:`repro.storage.rdbms.planner` by default (index lookups, range
scans, pushed-down join predicates, statistics-driven join choice); pass
``use_planner=False`` to get the original naive interpreter, which the
differential tests treat as the semantics oracle.  All statements run
inside a transaction.
"""

from __future__ import annotations

import functools
import heapq
import itertools
import re
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterable

from repro.errors import (CancellationToken, QueryDeadlockError, QueryError,
                          QueryLockTimeoutError, StaleSnapshotError)
from repro.storage.rdbms.engine import Database, Transaction
from repro.storage.rdbms.lockmgr import DeadlockError, LockTimeoutError
from repro.storage.rdbms.types import Column, ColumnType, TableSchema
from repro.telemetry.tracing import get_tracer


class SqlError(Exception):
    """Raised on parse or execution errors."""


# --------------------------------------------------------------------- lexer

_SQL_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
      | (?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\*|\.)
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset(
    {
        "select", "from", "where", "group", "by", "order", "limit", "and", "or",
        "not", "like", "is", "null", "in", "insert", "into", "values", "update",
        "set", "delete", "create", "table", "primary", "key", "asc", "desc",
        "join", "on", "count", "sum", "avg", "min", "max", "true", "false",
        "distinct", "as", "having", "explain", "analyze", "alter", "compact",
        "shard", "shards", "reshard",
    }
)


@dataclass
class _Token:
    kind: str  # 'string' | 'number' | 'op' | 'word' | 'keyword' | 'eof'
    value: Any
    text: str


def _lex(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        if sql[pos].isspace():
            pos += 1
            continue
        match = _SQL_TOKEN_RE.match(sql, pos)
        if match is None or match.end() == pos:
            raise SqlError(f"cannot tokenize SQL at: {sql[pos:pos+20]!r}")
        pos = match.end()
        if match.group("string") is not None:
            raw = match.group("string")
            tokens.append(_Token("string", raw[1:-1].replace("''", "'"), raw))
        elif match.group("number") is not None:
            raw = match.group("number")
            is_float = "." in raw or "e" in raw.lower()
            value = float(raw) if is_float else int(raw)
            tokens.append(_Token("number", value, raw))
        elif match.group("op") is not None:
            tokens.append(_Token("op", match.group("op"), match.group("op")))
        else:
            word = match.group("word")
            kind = "keyword" if word.lower() in _KEYWORDS else "word"
            tokens.append(_Token(kind, word.lower() if kind == "keyword" else word, word))
    tokens.append(_Token("eof", None, ""))
    return tokens


# ----------------------------------------------------------------------- AST


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly table-qualified) column reference."""

    table: str | None
    name: str

    def key(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    """A constant value in a predicate or VALUES list."""

    value: Any


@dataclass(frozen=True)
class Comparison:
    """A binary comparison between two operands."""

    op: str
    left: Any
    right: Any


@dataclass(frozen=True)
class LikePredicate:
    """A LIKE pattern test against a column."""

    column: ColumnRef
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class NullPredicate:
    """An IS [NOT] NULL test against a column."""

    column: ColumnRef
    negated: bool


@dataclass(frozen=True)
class InPredicate:
    """A column IN (v1, v2, ...) membership test."""

    column: ColumnRef
    values: tuple[Any, ...]
    negated: bool = False


@dataclass(frozen=True)
class BoolOp:
    """AND / OR / NOT over sub-predicates."""

    op: str  # 'and' | 'or' | 'not'
    operands: tuple[Any, ...]


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call: COUNT/SUM/AVG/MIN/MAX over a column or *."""

    func: str  # count | sum | avg | min | max
    column: ColumnRef | None  # None means COUNT(*)
    alias: str | None = None

    def key(self) -> str:
        if self.alias:
            return self.alias
        inner = self.column.key() if self.column else "*"
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One item of a SELECT list: a column or an aggregate."""

    expr: ColumnRef | Aggregate
    alias: str | None = None

    def key(self) -> str:
        if self.alias:
            return self.alias
        return self.expr.key()


@dataclass
class SelectStatement:
    """A parsed SELECT with all optional clauses."""

    items: list[SelectItem]
    star: bool
    table: str
    join_table: str | None = None
    join_left: ColumnRef | None = None
    join_right: ColumnRef | None = None
    where: Any = None
    group_by: list[ColumnRef] = field(default_factory=list)
    having: Any = None
    order_by: ColumnRef | None = None
    order_desc: bool = False
    limit: int | None = None


@dataclass
class InsertStatement:
    """A parsed multi-row INSERT."""

    table: str
    columns: list[str]
    rows: list[list[Any]]


@dataclass
class UpdateStatement:
    """A parsed UPDATE with assignments and predicate."""

    table: str
    assignments: dict[str, Any]
    where: Any = None


@dataclass
class DeleteStatement:
    """A parsed DELETE with an optional predicate."""

    table: str
    where: Any = None


@dataclass
class CreateTableStatement:
    """A parsed CREATE TABLE carrying the schema and optional
    ``SHARD BY (col) SHARDS n`` partitioning clause."""

    schema: TableSchema
    shard_key: str | None = None
    shard_count: int = 1


@dataclass
class ExplainStatement:
    """An EXPLAIN wrapping a SELECT: plan, don't execute — unless
    ``analyze`` is set, in which case the plan runs instrumented and the
    rendered tree carries per-operator actuals."""

    select: SelectStatement
    analyze: bool = False


@dataclass
class CompactStatement:
    """A parsed ``ALTER TABLE <t> COMPACT``: freeze the committed tail
    into columnar segments (runs in its own transaction, like DDL)."""

    table: str


@dataclass
class ReshardStatement:
    """A parsed ``ALTER TABLE <t> RESHARD BY (col) SHARDS n``: change
    the table's hash-partitioning layout (runs like DDL, WAL-covered)."""

    table: str
    shard_key: str
    shard_count: int


# -------------------------------------------------------------------- parser

_TYPE_MAP = {
    "int": ColumnType.INT,
    "integer": ColumnType.INT,
    "float": ColumnType.FLOAT,
    "real": ColumnType.FLOAT,
    "double": ColumnType.FLOAT,
    "text": ColumnType.TEXT,
    "varchar": ColumnType.TEXT,
    "string": ColumnType.TEXT,
    "bool": ColumnType.BOOL,
    "boolean": ColumnType.BOOL,
}


class _Parser:
    def __init__(self, sql: str) -> None:
        self._tokens = _lex(sql)
        self._pos = 0

    # -- token plumbing

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _next(self) -> _Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.value != word:
            raise SqlError(f"expected {word.upper()}, got {token.text!r}")

    def _expect_op(self, op: str) -> None:
        token = self._next()
        if token.kind != "op" or token.value != op:
            raise SqlError(f"expected {op!r}, got {token.text!r}")

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.value in words

    def _at_op(self, op: str) -> bool:
        token = self._peek()
        return token.kind == "op" and token.value == op

    def _identifier(self) -> str:
        token = self._next()
        if token.kind not in ("word", "keyword"):
            raise SqlError(f"expected identifier, got {token.text!r}")
        return token.text if token.kind == "word" else token.value

    # -- entry point

    def parse(self):
        token = self._peek()
        if token.kind != "keyword":
            raise SqlError(f"unexpected start of statement: {token.text!r}")
        if token.value == "select":
            return self._parse_select()
        if token.value == "insert":
            return self._parse_insert()
        if token.value == "update":
            return self._parse_update()
        if token.value == "delete":
            return self._parse_delete()
        if token.value == "create":
            return self._parse_create()
        if token.value == "alter":
            return self._parse_alter()
        if token.value == "explain":
            return self._parse_explain()
        raise SqlError(f"unsupported statement {token.text!r}")

    # -- statements

    def _parse_explain(self) -> ExplainStatement:
        self._expect_keyword("explain")
        analyze = False
        if self._at_keyword("analyze"):
            self._next()
            analyze = True
        if not self._at_keyword("select"):
            raise SqlError("EXPLAIN supports SELECT statements only")
        return ExplainStatement(self._parse_select(), analyze=analyze)

    def _parse_alter(self) -> "CompactStatement | ReshardStatement":
        self._expect_keyword("alter")
        self._expect_keyword("table")
        table = self._identifier()
        if self._at_keyword("reshard"):
            self._next()
            key, count = self._parse_shard_clause(by_consumed=False)
            if self._peek().kind != "eof":
                raise SqlError(f"trailing input: {self._peek().text!r}")
            return ReshardStatement(table, key, count)
        self._expect_keyword("compact")
        if self._peek().kind != "eof":
            raise SqlError(f"trailing input: {self._peek().text!r}")
        return CompactStatement(table)

    def _parse_shard_clause(self, by_consumed: bool) -> tuple[str, int]:
        """``BY ( col ) SHARDS n`` (the SHARD/RESHARD word is consumed
        by the caller)."""
        if not by_consumed:
            self._expect_keyword("by")
        self._expect_op("(")
        key = self._identifier()
        self._expect_op(")")
        self._expect_keyword("shards")
        token = self._next()
        if token.kind != "number" or not isinstance(token.value, int) \
                or token.value < 1:
            raise SqlError(f"SHARDS expects a positive integer, "
                           f"got {token.text!r}")
        return key, token.value

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("select")
        star = False
        items: list[SelectItem] = []
        if self._at_op("*"):
            self._next()
            star = True
        else:
            items.append(self._parse_select_item())
            while self._at_op(","):
                self._next()
                items.append(self._parse_select_item())
        self._expect_keyword("from")
        table = self._identifier()
        stmt = SelectStatement(items=items, star=star, table=table)
        if self._at_keyword("join"):
            self._next()
            stmt.join_table = self._identifier()
            self._expect_keyword("on")
            stmt.join_left = self._parse_column_ref()
            self._expect_op("=")
            stmt.join_right = self._parse_column_ref()
        if self._at_keyword("where"):
            self._next()
            stmt.where = self._parse_or()
        if self._at_keyword("group"):
            self._next()
            self._expect_keyword("by")
            stmt.group_by.append(self._parse_column_ref())
            while self._at_op(","):
                self._next()
                stmt.group_by.append(self._parse_column_ref())
        if self._at_keyword("having"):
            self._next()
            stmt.having = self._parse_or()
        if self._at_keyword("order"):
            self._next()
            self._expect_keyword("by")
            stmt.order_by = self._parse_column_ref()
            if self._at_keyword("asc", "desc"):
                stmt.order_desc = self._next().value == "desc"
        if self._at_keyword("limit"):
            self._next()
            token = self._next()
            if token.kind != "number" or not isinstance(token.value, int):
                raise SqlError("LIMIT expects an integer")
            stmt.limit = token.value
        if self._peek().kind != "eof":
            raise SqlError(f"trailing input: {self._peek().text!r}")
        return stmt

    def _parse_select_item(self) -> SelectItem:
        if self._at_keyword("count", "sum", "avg", "min", "max"):
            func = self._next().value
            self._expect_op("(")
            column: ColumnRef | None = None
            if self._at_op("*"):
                self._next()
                if func != "count":
                    raise SqlError(f"{func.upper()}(*) is not valid")
            else:
                column = self._parse_column_ref()
            self._expect_op(")")
            alias = self._parse_alias()
            return SelectItem(Aggregate(func, column, alias), alias)
        ref = self._parse_column_ref()
        alias = self._parse_alias()
        return SelectItem(ref, alias)

    def _parse_alias(self) -> str | None:
        if self._at_keyword("as"):
            self._next()
            return self._identifier()
        return None

    def _parse_column_ref(self) -> ColumnRef:
        first = self._identifier()
        if self._at_op("."):
            self._next()
            second = self._identifier()
            return ColumnRef(first, second)
        return ColumnRef(None, first)

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._identifier()
        self._expect_op("(")
        columns = [self._identifier()]
        while self._at_op(","):
            self._next()
            columns.append(self._identifier())
        self._expect_op(")")
        self._expect_keyword("values")
        rows: list[list[Any]] = []
        while True:
            self._expect_op("(")
            row = [self._parse_literal()]
            while self._at_op(","):
                self._next()
                row.append(self._parse_literal())
            self._expect_op(")")
            if len(row) != len(columns):
                raise SqlError("VALUES arity does not match column list")
            rows.append(row)
            if self._at_op(","):
                self._next()
                continue
            break
        return InsertStatement(table, columns, rows)

    def _parse_update(self) -> UpdateStatement:
        self._expect_keyword("update")
        table = self._identifier()
        self._expect_keyword("set")
        assignments: dict[str, Any] = {}
        while True:
            column = self._identifier()
            self._expect_op("=")
            assignments[column] = self._parse_literal()
            if self._at_op(","):
                self._next()
                continue
            break
        where = None
        if self._at_keyword("where"):
            self._next()
            where = self._parse_or()
        return UpdateStatement(table, assignments, where)

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._identifier()
        where = None
        if self._at_keyword("where"):
            self._next()
            where = self._parse_or()
        return DeleteStatement(table, where)

    def _parse_create(self) -> CreateTableStatement:
        self._expect_keyword("create")
        self._expect_keyword("table")
        name = self._identifier()
        self._expect_op("(")
        columns: list[Column] = []
        primary_key: str | None = None
        while True:
            col_name = self._identifier()
            type_word = self._identifier().lower()
            if type_word not in _TYPE_MAP:
                raise SqlError(f"unknown type {type_word!r}")
            nullable = True
            while self._at_keyword("primary", "not"):
                word = self._next().value
                if word == "primary":
                    self._expect_keyword("key")
                    primary_key = col_name
                    nullable = False
                else:
                    self._expect_keyword("null")
                    nullable = False
            columns.append(Column(col_name, _TYPE_MAP[type_word], nullable))
            if self._at_op(","):
                self._next()
                continue
            break
        self._expect_op(")")
        shard_key: str | None = None
        shard_count = 1
        if self._at_keyword("shard"):
            self._next()
            shard_key, shard_count = self._parse_shard_clause(
                by_consumed=False)
        return CreateTableStatement(
            TableSchema(name, tuple(columns), primary_key),
            shard_key=shard_key, shard_count=shard_count)

    # -- predicates

    def _parse_or(self):
        node = self._parse_and()
        operands = [node]
        while self._at_keyword("or"):
            self._next()
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else BoolOp("or", tuple(operands))

    def _parse_and(self):
        node = self._parse_not()
        operands = [node]
        while self._at_keyword("and"):
            self._next()
            operands.append(self._parse_not())
        return operands[0] if len(operands) == 1 else BoolOp("and", tuple(operands))

    def _parse_not(self):
        if self._at_keyword("not"):
            self._next()
            return BoolOp("not", (self._parse_not(),))
        return self._parse_predicate()

    def _parse_predicate(self):
        if self._at_op("("):
            self._next()
            node = self._parse_or()
            self._expect_op(")")
            return node
        left = self._parse_operand()
        token = self._peek()
        if token.kind == "keyword" and token.value == "is":
            self._next()
            negated = False
            if self._at_keyword("not"):
                self._next()
                negated = True
            self._expect_keyword("null")
            if not isinstance(left, ColumnRef):
                raise SqlError("IS NULL requires a column")
            return NullPredicate(left, negated)
        if token.kind == "keyword" and token.value in ("like", "in", "not"):
            negated = False
            if token.value == "not":
                self._next()
                negated = True
                token = self._peek()
            if token.kind == "keyword" and token.value == "like":
                self._next()
                pattern_token = self._next()
                if pattern_token.kind != "string":
                    raise SqlError("LIKE expects a string pattern")
                if not isinstance(left, ColumnRef):
                    raise SqlError("LIKE requires a column")
                return LikePredicate(left, pattern_token.value, negated)
            if token.kind == "keyword" and token.value == "in":
                self._next()
                self._expect_op("(")
                values = [self._parse_literal()]
                while self._at_op(","):
                    self._next()
                    values.append(self._parse_literal())
                self._expect_op(")")
                if not isinstance(left, ColumnRef):
                    raise SqlError("IN requires a column")
                return InPredicate(left, tuple(v.value for v in values), negated)
            raise SqlError(f"unexpected NOT before {token.text!r}")
        op_token = self._next()
        if op_token.kind != "op" or op_token.value not in ("=", "!=", "<>", "<", "<=", ">", ">="):
            raise SqlError(f"expected comparison operator, got {op_token.text!r}")
        right = self._parse_operand()
        op = "!=" if op_token.value == "<>" else op_token.value
        return Comparison(op, left, right)

    def _parse_operand(self):
        token = self._peek()
        if token.kind in ("string", "number"):
            return self._parse_literal()
        if token.kind == "keyword" and token.value in ("true", "false", "null"):
            return self._parse_literal()
        return self._parse_column_ref()

    def _parse_literal(self) -> Literal:
        token = self._next()
        if token.kind in ("string", "number"):
            return Literal(token.value)
        if token.kind == "keyword" and token.value == "true":
            return Literal(True)
        if token.kind == "keyword" and token.value == "false":
            return Literal(False)
        if token.kind == "keyword" and token.value == "null":
            return Literal(None)
        raise SqlError(f"expected literal, got {token.text!r}")


def parse_sql(sql: str):
    """Parse one SQL statement into its AST node.

    Raises:
        SqlError: on syntax errors.
    """
    return _Parser(sql).parse()


def normalize_sql(sql: str) -> str:
    """Canonical text for a statement: whitespace collapsed, keywords
    uppercased, literals re-rendered.  Two statements that tokenize the
    same normalize the same — this is the result cache's key.

    Raises:
        SqlError: on lexing errors.
    """
    parts: list[str] = []
    for token in _lex(sql):
        if token.kind == "eof":
            break
        if token.kind == "keyword":
            parts.append(token.value.upper())
        elif token.kind == "string":
            parts.append("'" + str(token.value).replace("'", "''") + "'")
        elif token.kind == "number":
            parts.append(repr(token.value))
        else:
            parts.append(token.text)
    return " ".join(parts)


# ----------------------------------------------------------------- evaluator


def _resolve(row: dict[str, Any], ref: ColumnRef) -> Any:
    if ref.table is not None:
        qualified = f"{ref.table}.{ref.name}"
        if qualified in row:
            return row[qualified]
    if ref.name in row:
        return row[ref.name]
    matches = [k for k in row if k.endswith("." + ref.name)]
    if len(matches) == 1:
        return row[matches[0]]
    raise SqlError(f"unknown column {ref.key()!r}")


@functools.lru_cache(maxsize=256)
def _like_to_regex(pattern: str) -> re.Pattern:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE)


def eval_predicate(node: Any, row: dict[str, Any]) -> bool:
    """Evaluate a parsed predicate against a row dict (SQL three-valued
    logic simplified: comparisons with NULL are false)."""
    if node is None:
        return True
    if isinstance(node, BoolOp):
        if node.op == "and":
            return all(eval_predicate(n, row) for n in node.operands)
        if node.op == "or":
            return any(eval_predicate(n, row) for n in node.operands)
        return not eval_predicate(node.operands[0], row)
    if isinstance(node, Comparison):
        left = _operand_value(node.left, row)
        right = _operand_value(node.right, row)
        if left is None or right is None:
            return False
        try:
            if node.op == "=":
                return left == right
            if node.op == "!=":
                return left != right
            if node.op == "<":
                return left < right
            if node.op == "<=":
                return left <= right
            if node.op == ">":
                return left > right
            if node.op == ">=":
                return left >= right
        except TypeError as exc:
            raise SqlError(f"type error comparing {left!r} {node.op} {right!r}") from exc
    if isinstance(node, LikePredicate):
        value = _resolve(row, node.column)
        if not isinstance(value, str):
            return node.negated
        matched = bool(_like_to_regex(node.pattern).match(value))
        return matched != node.negated
    if isinstance(node, NullPredicate):
        is_null = _resolve(row, node.column) is None
        return is_null != node.negated
    if isinstance(node, InPredicate):
        value = _resolve(row, node.column)
        return (value in node.values) != node.negated
    raise SqlError(f"cannot evaluate predicate node {node!r}")


def _operand_value(operand: Any, row: dict[str, Any]) -> Any:
    if isinstance(operand, Literal):
        return operand.value
    if isinstance(operand, ColumnRef):
        return _resolve(row, operand)
    raise SqlError(f"bad operand {operand!r}")


def _feedback_keys(where: Any) -> list[tuple[str, str]]:
    """(column, predicate shape) pairs for cardinality feedback.

    Flattens the top-level AND; OR/NOT subtrees and column-to-column
    comparisons get no per-column attribution (re-analyzing one column's
    histogram could not fix them anyway)."""
    keys: list[tuple[str, str]] = []
    stack = [where]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(node, BoolOp):
            if node.op == "and":
                stack.extend(node.operands)
            continue
        if isinstance(node, Comparison):
            if isinstance(node.left, ColumnRef) and isinstance(node.right, Literal):
                ref = node.left
            elif isinstance(node.right, ColumnRef) and isinstance(node.left, Literal):
                ref = node.right
            else:
                continue
            shape = "eq" if node.op == "=" else (
                "neq" if node.op == "!=" else "range")
            keys.append((ref.name, shape))
        elif isinstance(node, LikePredicate):
            keys.append((node.column.name, "like"))
        elif isinstance(node, NullPredicate):
            keys.append((node.column.name, "null"))
        elif isinstance(node, InPredicate):
            keys.append((node.column.name, "in"))
    return keys


def _equality_lookup(node: Any) -> tuple[str, Any] | None:
    """If the predicate is a top-level ``col = literal`` (possibly inside an
    AND), return (column, value) for index-assisted execution."""
    if isinstance(node, Comparison) and node.op == "=":
        if isinstance(node.left, ColumnRef) and isinstance(node.right, Literal):
            return node.left.name, node.right.value
        if isinstance(node.right, ColumnRef) and isinstance(node.left, Literal):
            return node.right.name, node.left.value
    if isinstance(node, BoolOp) and node.op == "and":
        for operand in node.operands:
            found = _equality_lookup(operand)
            if found is not None:
                return found
    return None


class _Executor:
    def __init__(self, db: Database, txn: Transaction,
                 use_planner: bool = True) -> None:
        self._db = db
        self._txn = txn
        self._use_planner = use_planner

    def execute(self, stmt) -> list[dict[str, Any]]:
        if isinstance(stmt, SelectStatement):
            return self._select(stmt)
        if isinstance(stmt, ExplainStatement):
            if stmt.analyze:
                return _analyze_rows(self._db, stmt, self._txn)
            return _explain_rows(self._db, stmt)
        if isinstance(stmt, InsertStatement):
            count = 0
            for row in stmt.rows:
                values = {c: v.value for c, v in zip(stmt.columns, row)}
                self._txn.insert(stmt.table, values)
                count += 1
            return [{"inserted": count}]
        if isinstance(stmt, UpdateStatement):
            changes = {c: v.value for c, v in stmt.assignments.items()}
            rows = self._matching_rows(stmt.table, stmt.where)
            for row in rows:
                self._txn.update(stmt.table, row["__rid__"], changes)
            return [{"updated": len(rows)}]
        if isinstance(stmt, DeleteStatement):
            rows = self._matching_rows(stmt.table, stmt.where)
            for row in rows:
                self._txn.delete(stmt.table, row["__rid__"])
            return [{"deleted": len(rows)}]
        if isinstance(stmt, CreateTableStatement):
            self._db.create_table(stmt.schema, shard_key=stmt.shard_key,
                                  shard_count=stmt.shard_count)
            return [{"created": stmt.schema.name}]
        raise SqlError(f"cannot execute {stmt!r}")

    # -- row production

    def _matching_rows(self, table: str, where) -> list[dict[str, Any]]:
        """Rows of ``table`` satisfying ``where`` (with ``__rid__``).

        With the planner enabled, the access path (index lookup, range
        scan, or full scan) is chosen by cost; the full predicate is
        still re-checked on every candidate, so a stale plan can only
        cost time, never rows.
        """
        if self._use_planner and where is not None:
            from repro.storage.rdbms import planner as _planner

            conjuncts = _planner.split_conjuncts(where)
            node, _ = _planner.Planner(self._db).plan_access(table, conjuncts)
            candidates = node.execute(self._txn)
            keys = _feedback_keys(where)
            if keys:
                self._db.statistics().record_predicate_feedback(
                    table, keys, node.est_rows, len(candidates))
            return [row for row in candidates if eval_predicate(where, row)]
        lookup = _equality_lookup(where) if where is not None else None
        if lookup is not None and self._db._find_index(table, lookup[0]) is not None:
            candidates = self._txn.lookup(table, lookup[0], lookup[1])
        else:
            candidates = self._txn.scan(table)
        rows = []
        for r in candidates:
            row = dict(r.values)
            row["__rid__"] = r.rid
            if eval_predicate(where, row):
                rows.append(row)
        return rows

    def _select(self, stmt: SelectStatement,
                plan: Any = None) -> list[dict[str, Any]]:
        has_aggregates = any(isinstance(i.expr, Aggregate) for i in stmt.items)
        aggregate_stage = bool(stmt.group_by) or has_aggregates
        if not aggregate_stage and stmt.having is not None:
            raise SqlError("HAVING requires GROUP BY or aggregates")
        if self._use_planner:
            from repro.storage.rdbms import planner as _planner

            tracer = get_tracer()
            if plan is None:
                with tracer.span("rdbms.plan"):
                    plan = _planner.Planner(self._db).plan_select(stmt)
            with tracer.span("rdbms.exec") as span:
                source_count: int | None = None
                if plan.vector is not None:
                    # Columnar aggregation straight off segment buffers.
                    result = plan.vector.execute(self._txn)
                elif aggregate_stage:
                    src = plan.execute(self._txn)
                    source_count = len(src)
                    result = self._run_stage(
                        plan, "Aggregate", lambda: self._aggregate(stmt, src))
                elif stmt.star:
                    rows_iter = (
                        {k: v for k, v in r.items() if k != "__rid__"}
                        for r in plan.rows(self._txn))
                    result = self._run_stage(
                        plan, "output",
                        lambda: self._order_and_limit(stmt, rows_iter))
                else:
                    rows_iter = (
                        {item.key(): _resolve(r, item.expr)
                         for item in stmt.items}
                        for r in plan.rows(self._txn))
                    result = self._run_stage(
                        plan, "output",
                        lambda: self._order_and_limit(stmt, rows_iter))
                span.set_attribute("rows", len(result))
            if not aggregate_stage:
                if source_count is None and stmt.limit is None:
                    source_count = len(result)
                self._record_feedback(stmt, plan, source_count)
                return result
            self._record_feedback(stmt, plan, source_count)
            if stmt.having is not None:
                result = [r for r in result if eval_predicate(stmt.having, r)]
            return self._run_stage(
                plan, "output", lambda: self._order_and_limit(stmt, result))
        rows = self._source_rows(stmt)
        rows = [r for r in rows if eval_predicate(stmt.where, r)]
        if aggregate_stage:
            result = self._aggregate(stmt, rows)
            if stmt.having is not None:
                result = [r for r in result if eval_predicate(stmt.having, r)]
        elif stmt.star:
            result = [
                {k: v for k, v in r.items() if k != "__rid__"} for r in rows
            ]
        else:
            result = [
                {item.key(): _resolve(r, item.expr) for item in stmt.items}
                for r in rows
            ]
        return self._order_and_limit(stmt, result)

    @staticmethod
    def _run_stage(plan, name: str, fn):
        """Run one pseudo stage (projection/order/aggregate), timing it
        into the plan's stage profile when EXPLAIN ANALYZE is active."""
        prof = plan.stage_profile(name)
        if prof is None:
            return fn()
        prof.loops += 1
        t0 = perf_counter()
        out = fn()
        prof.seconds += perf_counter() - t0
        prof.rows += len(out)
        return out

    def _record_feedback(self, stmt: SelectStatement, plan,
                         source_count: int | None) -> None:
        """Feed estimated-vs-actual source cardinality to the statistics
        manager.  Single-table plans compare the source root's estimate
        against the rows it actually produced (exact from the operator
        profile under ANALYZE, otherwise derived from the result when no
        LIMIT truncated it); join plans contribute per-access-path
        observations only when profiled."""
        if stmt.join_table is not None:
            if plan.stage_profiles is not None:
                self._record_operator_feedback(plan.source)
            return
        src = plan.source
        prof = src.profile
        if prof is not None and prof.loops:
            if stmt.limit is not None and stmt.order_by is None:
                return  # bare LIMIT stopped the scan early: truncated actuals
            source_count = prof.rows
        if source_count is None or stmt.where is None:
            return
        keys = _feedback_keys(stmt.where)
        if keys:
            self._db.statistics().record_predicate_feedback(
                stmt.table, keys, src.est_rows, source_count)

    def _record_operator_feedback(self, node) -> None:
        """Per-access-path feedback for profiled join subtrees."""
        from repro.storage.rdbms import planner as _planner

        mgr = self._db.statistics()
        prof = node.profile
        if prof is not None and prof.loops:
            if isinstance(node, _planner.IndexLookup):
                mgr.record_predicate_feedback(
                    node.table, [(node.column, "eq")],
                    node.est_rows, prof.rows)
            elif isinstance(node, _planner.RangeScan):
                mgr.record_predicate_feedback(
                    node.table, [(node.column, "range")],
                    node.est_rows, prof.rows)
            elif isinstance(node, _planner.SegmentScan) and node.conjuncts:
                keys = [key for c in node.conjuncts
                        for key in _feedback_keys(c)]
                if keys:
                    mgr.record_predicate_feedback(
                        node.table, keys, node.est_rows, prof.rows)
            else:
                from repro.storage.rdbms.parallel import ParallelScan
                if isinstance(node, ParallelScan) and node.conjuncts:
                    keys = [key for c in node.conjuncts
                            for key in _feedback_keys(c)]
                    if keys:
                        mgr.record_predicate_feedback(
                            node.table, keys, node.est_rows, prof.rows)
        for child in node.children():
            self._record_operator_feedback(child)

    def _order_and_limit(self, stmt: SelectStatement,
                         result: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
        """Apply ORDER BY and LIMIT to ``result`` (list or row iterator).

        ``ORDER BY … LIMIT k`` runs as a heap top-k — ``heapq.nsmallest``
        / ``nlargest`` are documented equivalent to full-sort-then-slice
        (and stable), so the output rows are identical but the sort never
        materializes more than k rows beyond the heap.  A bare LIMIT
        stops consuming the row iterator after k rows."""
        if stmt.order_by is not None:
            key_name = self._order_key(stmt)

            def sort_key(r: dict[str, Any]) -> tuple:
                return (r.get(key_name) is None, r.get(key_name))

            if stmt.limit is not None and stmt.limit >= 0:
                pick = heapq.nlargest if stmt.order_desc else heapq.nsmallest
                return pick(stmt.limit, result, key=sort_key)
            result = list(result)
            result.sort(key=sort_key, reverse=stmt.order_desc)
        if stmt.limit is not None:
            if stmt.limit >= 0:
                return list(itertools.islice(result, stmt.limit))
            return list(result)[: stmt.limit]
        return result if isinstance(result, list) else list(result)

    def _order_key(self, stmt: SelectStatement) -> str:
        assert stmt.order_by is not None
        wanted = stmt.order_by.key()
        for item in stmt.items:
            if item.key() == wanted or (
                isinstance(item.expr, ColumnRef) and item.expr.name == stmt.order_by.name
            ):
                return item.key()
        return wanted

    def _source_rows(self, stmt: SelectStatement) -> list[dict[str, Any]]:
        if stmt.join_table is None:
            return self._matching_rows(stmt.table, None)
        left_rows = self._txn.scan(stmt.table)
        right_rows = self._txn.scan(stmt.join_table)
        assert stmt.join_left is not None and stmt.join_right is not None
        left_col, right_col = self._join_columns(stmt)
        # hash join on the right side
        buckets: dict[Any, list] = {}
        for rr in right_rows:
            buckets.setdefault(rr.values.get(right_col), []).append(rr)
        joined: list[dict[str, Any]] = []
        for lr in left_rows:
            key = lr.values.get(left_col)
            if key is None:
                continue
            for rr in buckets.get(key, ()):
                row: dict[str, Any] = {}
                for k, v in lr.values.items():
                    row[f"{stmt.table}.{k}"] = v
                    row.setdefault(k, v)
                for k, v in rr.values.items():
                    row[f"{stmt.join_table}.{k}"] = v
                    row.setdefault(k, v)
                row["__rid__"] = lr.rid
                joined.append(row)
        return joined

    def _join_columns(self, stmt: SelectStatement) -> tuple[str, str]:
        assert stmt.join_left is not None and stmt.join_right is not None
        left, right = stmt.join_left, stmt.join_right
        if left.table == stmt.join_table or right.table == stmt.table:
            left, right = right, left
        return left.name, right.name

    def _aggregate(self, stmt: SelectStatement, rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
        groups: dict[tuple, list[dict[str, Any]]] = {}
        for row in rows:
            key = tuple(_resolve(row, g) for g in stmt.group_by)
            groups.setdefault(key, []).append(row)
        if not stmt.group_by and not groups:
            groups[()] = []
        out: list[dict[str, Any]] = []
        for key, members in sorted(
            groups.items(), key=lambda kv: tuple((v is None, v) for v in kv[0])
        ):
            result: dict[str, Any] = {}
            for g, value in zip(stmt.group_by, key):
                result[g.key()] = value
            for item in stmt.items:
                if isinstance(item.expr, Aggregate):
                    result[item.key()] = self._agg_value(item.expr, members)
                elif stmt.group_by and any(
                    g.name == item.expr.name for g in stmt.group_by
                ):
                    pass  # already emitted as a group key
                else:
                    raise SqlError(
                        f"column {item.key()!r} must appear in GROUP BY"
                    )
            out.append(result)
        return out

    @staticmethod
    def _agg_value(agg: Aggregate, members: list[dict[str, Any]]) -> Any:
        if agg.func == "count":
            if agg.column is None:
                return len(members)
            return sum(1 for m in members if _resolve(m, agg.column) is not None)
        values = [
            v for m in members
            if (v := _resolve(m, agg.column)) is not None  # type: ignore[arg-type]
        ]
        if not values:
            return None
        if agg.func == "sum":
            return sum(values)
        if agg.func == "avg":
            return sum(values) / len(values)
        if agg.func == "min":
            return min(values)
        if agg.func == "max":
            return max(values)
        raise SqlError(f"unknown aggregate {agg.func!r}")


def _explain_rows(db: Database, stmt: ExplainStatement) -> list[dict[str, Any]]:
    from repro.storage.rdbms import planner as _planner

    lines = _planner.Planner(db).explain(stmt.select)
    return [{"plan": line} for line in lines]


def _analyze_rows(db: Database, stmt: ExplainStatement,
                  txn: Transaction) -> list[dict[str, Any]]:
    """EXPLAIN ANALYZE: run the planned SELECT instrumented, render the
    plan annotated with per-operator actuals plus a summary line."""
    from repro.storage.rdbms import planner as _planner
    from repro.telemetry import metrics as _metrics

    select = stmt.select
    tracer = get_tracer()
    with tracer.span("rdbms.plan"):
        plan = _planner.Planner(db).plan_select(select)
    plan.enable_profiling()
    executor = _Executor(db, txn, use_planner=True)
    t0 = perf_counter()
    rows = executor._select(select, plan=plan)
    total = perf_counter() - t0
    _metrics.get_registry().inc("planner.explain_analyze")
    lines = plan.render()
    lines.append(f"Execution: {len(rows)} rows in {total * 1000.0:.2f} ms")
    return [{"plan": line} for line in lines]


#: Attempts for a read whose plan went stale mid-flight (a reshard raced
#: between snapshot acquisition and planning; readers take no locks, so
#: nothing serializes the two).
_STALE_PLAN_ATTEMPTS = 3


def _run_snapshot_read(db: Database, guard: CancellationToken | None,
                       runner) -> list[dict[str, Any]]:
    """Run a read-only statement against a fresh commit-point snapshot.

    On :class:`~repro.errors.StaleSnapshotError` (shard layout changed
    under the plan) the statement retries with a fresh snapshot *and* a
    fresh plan; the error escapes only if the layout keeps churning
    faster than the retries.
    """
    last: StaleSnapshotError | None = None
    for _ in range(_STALE_PLAN_ATTEMPTS):
        snap = db.begin_snapshot(guard=guard)
        try:
            return runner(snap)
        except StaleSnapshotError as exc:
            last = exc
        finally:
            snap.commit()
    raise last


def execute_statement(db: Database, stmt, txn: Transaction | None = None,
                      use_planner: bool = True,
                      guard: CancellationToken | None = None,
                      ) -> list[dict[str, Any]]:
    """Execute one already-parsed statement (see :func:`execute_sql`)."""
    if guard is not None:
        guard.check()
    if isinstance(stmt, CreateTableStatement):
        db.create_table(stmt.schema, shard_key=stmt.shard_key,
                        shard_count=stmt.shard_count)
        return [{"created": stmt.schema.name}]
    if isinstance(stmt, CompactStatement):
        try:
            summary = db.compact(stmt.table)
        except KeyError:
            raise SqlError(f"unknown table {stmt.table!r}") from None
        return [{
            "compacted": stmt.table,
            "segments_created": summary["segments_created"],
            "rows_frozen": summary["rows_frozen"],
        }]
    if isinstance(stmt, ReshardStatement):
        try:
            summary = db.reshard(stmt.table, stmt.shard_key,
                                 stmt.shard_count)
        except KeyError:
            raise SqlError(f"unknown table {stmt.table!r}") from None
        return [{
            "resharded": stmt.table,
            "shard_key": summary["shard_key"],
            "shard_count": summary["shard_count"],
            "rows": summary["rows"],
        }]
    if isinstance(stmt, ExplainStatement):
        if not stmt.analyze:
            return _explain_rows(db, stmt)
        if txn is not None:
            return _analyze_rows(db, stmt, txn)
        return _run_snapshot_read(
            db, guard, lambda snap: _analyze_rows(db, stmt, snap))
    if txn is not None:
        return _Executor(db, txn, use_planner).execute(stmt)
    if isinstance(stmt, SelectStatement):
        # Auto-transaction SELECTs run lock-free on a committed snapshot:
        # they cannot block behind writers, deadlock, or enter the
        # waits-for graph (DESIGN.md §15).
        return _run_snapshot_read(
            db, guard,
            lambda snap: _Executor(db, snap, use_planner).execute(stmt))
    return db.run(lambda t: _Executor(db, t, use_planner).execute(stmt),
                  guard=guard)


def execute_sql(db: Database, sql: str, txn: Transaction | None = None,
                use_planner: bool = True,
                guard: CancellationToken | None = None,
                ) -> list[dict[str, Any]]:
    """Parse and execute one SQL statement.

    If ``txn`` is None, SELECTs run lock-free on a commit-point snapshot
    and writes run in their own transaction (with deadlock/lock-timeout
    retry).  Returns result rows as a list of dicts; DML returns a
    one-row summary (e.g. ``[{"updated": 3}]``), ``EXPLAIN <select>`` one
    ``{"plan": line}`` row per plan-tree line.

    ``use_planner=False`` bypasses the cost-based planner and runs the
    naive interpreter — the reference semantics the planner is tested
    against.  ``guard`` is an optional cooperative-cancellation token
    (query deadline / shutdown) checked throughout execution.

    Raises:
        SqlError: on parse or execution errors.
        QueryDeadlockError: retries exhausted on a persistent deadlock.
        QueryLockTimeoutError: retries exhausted on lock-wait timeouts.
        QueryTimeoutError: the guard's deadline passed mid-execution.
    """
    try:
        return execute_statement(db, parse_sql(sql), txn, use_planner, guard)
    except QueryError as exc:
        if exc.sql is None:
            exc.sql = sql
        raise
    except DeadlockError as exc:
        raise QueryDeadlockError(str(exc), sql=sql) from exc
    except LockTimeoutError as exc:
        raise QueryLockTimeoutError(str(exc), sql=sql) from exc
