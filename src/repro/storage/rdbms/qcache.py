"""Snapshot-coherent query-result cache for the SQL serving path.

Serving traffic (form submissions, the query translator, dashboards)
re-runs a small set of SELECT statements far more often than the facts
table changes.  :class:`QueryResultCache` memoizes SELECT results keyed
by the *normalized* statement text plus the MVCC snapshot version of
every table the statement reads (DESIGN.md §15).

Coherence does not depend on eviction timing: a lookup first pins a
commit-point snapshot, then accepts a cached entry only when the entry's
recorded versions are *equal* to that snapshot's versions.  Because a
miss executes against the very snapshot whose versions it stores, a
cached entry always describes exactly the committed state named by its
key — a commit racing an in-flight lookup can therefore never produce a
stale hit; at worst it turns a would-be hit into an extra miss.  The
commit listener still evicts eagerly, but purely as memory hygiene.

Only SELECTs are cached; every other statement (DML, DDL, EXPLAIN)
passes straight through to the executor.  Rows are defensively copied in
both directions, so callers may mutate what they get back.

This is also the observability funnel: every ``system.query`` and
exploration-session statement flows through :meth:`execute`, so when a
:class:`~repro.telemetry.slowlog.SlowQueryLog` is attached, one
``perf_counter`` pair around the statement decides slow-query capture —
cache hits included (a slow *hit* is an operator signal too).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter
from typing import Any

from repro.errors import CancellationToken, StaleSnapshotError
from repro.storage.rdbms.engine import Database
from repro.telemetry import metrics


class QueryResultCache:
    """An LRU of SELECT results, keyed by snapshot version.

    Args:
        db: the database whose snapshots version the entries.
        capacity: maximum number of cached statements (LRU eviction).
        slowlog: optional slow-query log observing every statement's
            wall time; None keeps the pre-observability fast path.
    """

    def __init__(self, db: Database, capacity: int = 128,
                 slowlog: Any = None) -> None:
        self._db = db
        self._capacity = capacity
        self.slowlog = slowlog
        self._lock = threading.Lock()
        # normalized sql -> (tables, {table: snapshot version}, rows)
        self._entries: OrderedDict[
            str, tuple[tuple[str, ...], dict[str, int], list[dict[str, Any]]]
        ] = OrderedDict()
        # Ensure the statistics manager registers its listener first, so
        # versions are already bumped when our eviction listener runs.
        self._stats = db.statistics()
        db.add_commit_listener(self._on_commit)

    # ------------------------------------------------------------- serving

    def execute(self, sql: str,
                guard: CancellationToken | None = None,
                ) -> list[dict[str, Any]]:
        """Run one statement, serving SELECTs from cache when fresh.

        ``guard`` is an optional cooperative-cancellation token checked
        throughout execution (query deadlines, shutdown).

        Raises:
            SqlError: on parse or execution errors.
        """
        if self.slowlog is None:
            return self._execute(sql, guard)
        t0 = perf_counter()
        rows = self._execute(sql, guard)
        self.slowlog.observe(self._db, sql, perf_counter() - t0, len(rows))
        return rows

    def _execute(self, sql: str,
                 guard: CancellationToken | None = None,
                 ) -> list[dict[str, Any]]:
        from repro.storage.rdbms import sql as sqlmod

        stmt = sqlmod.parse_sql(sql)
        if not isinstance(stmt, sqlmod.SelectStatement):
            return sqlmod.execute_statement(self._db, stmt, guard=guard)
        registry = metrics.get_registry()
        key = sqlmod.normalize_sql(sql)
        tables = tuple(
            t for t in (stmt.table, stmt.join_table) if t is not None)
        last: StaleSnapshotError | None = None
        for _ in range(sqlmod._STALE_PLAN_ATTEMPTS):
            snap = self._db.begin_snapshot(guard=guard)
            try:
                versions = {t: snap.version_of(t) for t in tables}
                with self._lock:
                    entry = self._entries.get(key)
                    if entry is not None and entry[1] == versions:
                        self._entries.move_to_end(key)
                        registry.inc("planner.cache.hits")
                        return [dict(r) for r in entry[2]]
                registry.inc("planner.cache.misses")
                # Executing against the pinned snapshot makes the stored
                # rows correspond exactly to the stored versions; a
                # commit racing this statement bumps versions and simply
                # makes the entry miss for post-commit readers.
                rows = sqlmod.execute_statement(self._db, stmt, txn=snap)
                with self._lock:
                    self._entries[key] = (
                        tables, versions, [dict(r) for r in rows])
                    self._entries.move_to_end(key)
                    while len(self._entries) > self._capacity:
                        self._entries.popitem(last=False)
                return [dict(r) for r in rows]
            except StaleSnapshotError as exc:
                last = exc
            finally:
                snap.commit()
        raise last

    # -------------------------------------------------------- invalidation

    def _on_commit(self, changed: frozenset[str]) -> None:
        # Memory hygiene only: correctness never depends on this running
        # (hits are validated against the reader's own snapshot).
        evicted = 0
        with self._lock:
            stale = [key for key, (tables, _, _) in self._entries.items()
                     if any(t in changed for t in tables)]
            for key in stale:
                del self._entries[key]
                evicted += 1
        if evicted:
            metrics.get_registry().inc("planner.cache.invalidations", evicted)

    # ------------------------------------------------------------ plumbing

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Current hit/miss/invalidation counters plus entry count."""
        registry = metrics.get_registry()
        return {
            "entries": len(self),
            "hits": int(registry.get("planner.cache.hits")),
            "misses": int(registry.get("planner.cache.misses")),
            "invalidations": int(
                registry.get("planner.cache.invalidations")),
        }
