"""Commit-invalidated query-result cache for the SQL serving path.

Serving traffic (form submissions, the query translator, dashboards)
re-runs a small set of SELECT statements far more often than the facts
table changes.  :class:`QueryResultCache` memoizes SELECT results keyed
by the *normalized* statement text plus the version of every table the
statement reads; versions come from the same commit-listener stream that
drives statistics maintenance (:mod:`repro.storage.rdbms.stats`), so any
committed write or schema change to a referenced table makes the cached
entry unreachable and a listener evicts it eagerly.

Only SELECTs are cached; every other statement (DML, DDL, EXPLAIN)
passes straight through to the executor.  Rows are defensively copied in
both directions, so callers may mutate what they get back.

This is also the observability funnel: every ``system.query`` and
exploration-session statement flows through :meth:`execute`, so when a
:class:`~repro.telemetry.slowlog.SlowQueryLog` is attached, one
``perf_counter`` pair around the statement decides slow-query capture —
cache hits included (a slow *hit* is an operator signal too).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter
from typing import Any

from repro.storage.rdbms.engine import Database
from repro.telemetry import metrics


class QueryResultCache:
    """An LRU of SELECT results, invalidated by table version.

    Args:
        db: the database whose commit stream versions the entries.
        capacity: maximum number of cached statements (LRU eviction).
        slowlog: optional slow-query log observing every statement's
            wall time; None keeps the pre-observability fast path.
    """

    def __init__(self, db: Database, capacity: int = 128,
                 slowlog: Any = None) -> None:
        self._db = db
        self._capacity = capacity
        self.slowlog = slowlog
        self._lock = threading.Lock()
        # normalized sql -> (tables, {table: version}, rows)
        self._entries: OrderedDict[
            str, tuple[tuple[str, ...], dict[str, int], list[dict[str, Any]]]
        ] = OrderedDict()
        # Ensure the statistics manager registers its listener first, so
        # versions are already bumped when our eviction listener runs.
        self._stats = db.statistics()
        db.add_commit_listener(self._on_commit)

    # ------------------------------------------------------------- serving

    def execute(self, sql: str) -> list[dict[str, Any]]:
        """Run one statement, serving SELECTs from cache when fresh.

        Raises:
            SqlError: on parse or execution errors.
        """
        if self.slowlog is None:
            return self._execute(sql)
        t0 = perf_counter()
        rows = self._execute(sql)
        self.slowlog.observe(self._db, sql, perf_counter() - t0, len(rows))
        return rows

    def _execute(self, sql: str) -> list[dict[str, Any]]:
        from repro.storage.rdbms import sql as sqlmod

        stmt = sqlmod.parse_sql(sql)
        if not isinstance(stmt, sqlmod.SelectStatement):
            return sqlmod.execute_statement(self._db, stmt)
        registry = metrics.get_registry()
        key = sqlmod.normalize_sql(sql)
        tables = tuple(
            t for t in (stmt.table, stmt.join_table) if t is not None)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                _, versions, rows = entry
                if all(self._stats.version(t) == v
                       for t, v in versions.items()):
                    self._entries.move_to_end(key)
                    registry.inc("planner.cache.hits")
                    return [dict(r) for r in rows]
                del self._entries[key]
        registry.inc("planner.cache.misses")
        # Snapshot versions *before* executing: a commit racing with the
        # query makes the stored entry immediately stale (extra miss),
        # never silently wrong.
        versions = {t: self._stats.version(t) for t in tables}
        rows = sqlmod.execute_statement(self._db, stmt)
        with self._lock:
            self._entries[key] = (tables, versions, [dict(r) for r in rows])
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
        return [dict(r) for r in rows]

    # -------------------------------------------------------- invalidation

    def _on_commit(self, changed: frozenset[str]) -> None:
        evicted = 0
        with self._lock:
            stale = [key for key, (tables, _, _) in self._entries.items()
                     if any(t in changed for t in tables)]
            for key in stale:
                del self._entries[key]
                evicted += 1
        if evicted:
            metrics.get_registry().inc("planner.cache.invalidations", evicted)

    # ------------------------------------------------------------ plumbing

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Current hit/miss/invalidation counters plus entry count."""
        registry = metrics.get_registry()
        return {
            "entries": len(self),
            "hits": int(registry.get("planner.cache.hits")),
            "misses": int(registry.get("planner.cache.misses")),
            "invalidations": int(
                registry.get("planner.cache.invalidations")),
        }
