"""The relational engine facade: tables + transactions + recovery.

:class:`Database` owns the heap tables, secondary indexes, lock manager, and
(optionally) the write-ahead log.  :class:`Transaction` is the unit of work:
all reads and writes go through it, acquiring strict-2PL locks and logging
before/after images.  Recovery reconstructs state from the latest checkpoint
plus the committed suffix of the log, so a "crash" (simply abandoning the
in-memory object) loses no committed work — experiment E11 exercises exactly
this.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator

from repro.errors import CancellationToken
from repro.faults.retry import RetryPolicy
from repro.storage.rdbms.index import HashIndex, Index, SortedIndex
from repro.telemetry import metrics
from repro.telemetry.metrics import DEFAULT_SIZE_BUCKETS
from repro.telemetry.tracing import get_tracer
from repro.storage.rdbms.lockmgr import LockManager, LockMode
from repro.storage.rdbms.segments import SEGMENT_TARGET_ROWS
from repro.storage.rdbms.sharding import ShardSpec
from repro.storage.rdbms.table import HeapTable, Row
from repro.storage.rdbms.types import SchemaError, TableSchema
from repro.storage.rdbms.wal import WriteAheadLog

#: Default transaction retry policy: deadlock/lock-timeout victims retry
#: with exponential backoff and full deterministic jitter (decorrelated
#: sleeps, so two victims of the same conflict don't re-collide in
#: lockstep).  Replaces the bespoke immediate-retry loop.
TXN_RETRY = RetryPolicy(max_attempts=25, base_delay=0.002, max_delay=0.05,
                        multiplier=2.0, jitter=1.0)


class TransactionAborted(Exception):
    """Raised when operating on a finished (committed/aborted) transaction."""


@dataclass(frozen=True)
class TableDelta:
    """Row-level changes one committed transaction made to one table.

    Value dicts are the engine's own copies (the same objects handed back
    from the write APIs); listeners must treat them as read-only.
    """

    inserted: tuple[dict[str, Any], ...] = ()
    #: ``(before, after)`` value pairs, in write order.
    updated: tuple[tuple[dict[str, Any], dict[str, Any]], ...] = ()
    deleted: tuple[dict[str, Any], ...] = ()

    def __len__(self) -> int:
        return len(self.inserted) + len(self.updated) + len(self.deleted)


@dataclass(frozen=True)
class CommitDelta:
    """What one commit (or DDL event) changed, for delta listeners.

    ``tables`` maps table name → :class:`TableDelta` for row-level
    changes.  ``ddl`` names tables whose contents changed *wholesale*
    (create/drop/alter): row-level deltas are not available for those,
    so delta consumers must resynchronize their per-table state.
    """

    tables: dict[str, TableDelta] = field(default_factory=dict)
    ddl: frozenset[str] = frozenset()


class Transaction:
    """A unit of work with strict-2PL isolation and all-or-nothing effects.

    Obtained from :meth:`Database.begin`.  Usable as a context manager:
    commits on clean exit, aborts on exception.
    """

    def __init__(self, db: "Database", txn_id: int) -> None:
        self._db = db
        self.txn_id = txn_id
        self._undo: list[tuple[str, ...]] = []
        self._tables_written: set[str] = set()
        #: Row-level change records for delta listeners, in write order:
        #: ``("insert", table, values)`` / ``("update", table, before,
        #: after)`` / ``("delete", table, values)``.  Only populated when
        #: the database has delta listeners (zero cost otherwise).
        self._delta_rows: list[tuple] = []
        self.finished = False
        #: Optional cooperative-cancellation token checked at every
        #: operation boundary (and at commit, so a post-deadline
        #: transaction aborts instead of committing late).
        self.guard: CancellationToken | None = None

    # ----------------------------------------------------------- lifecycle

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.finished:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def commit(self) -> None:
        """Make all changes durable and release locks.

        The MVCC visibility flip (deregistering this transaction's undo
        from the active-write set and bumping the committed version of
        every table it wrote) happens atomically under the mutate lock,
        so a snapshot built at any instant sees either the full
        pre-commit state (undo applied) or the full post-commit state —
        never a mix.

        Commit listeners registered on the database fire after locks are
        released (so a listener's own queries cannot self-deadlock) and
        only when the transaction actually wrote rows.
        """
        self._check_finished()
        if self.guard is not None:
            self.guard.check()
        self._db._log(self.txn_id, "commit")
        self._db._mvcc_commit(self)
        self.finished = True
        self._db._end_txn(self)
        metrics.get_registry().inc("rdbms.txn.commits")
        if self._tables_written:
            self._db._notify_commit(frozenset(self._tables_written))
            if self._delta_rows and self._db._delta_listeners:
                self._db._notify_delta(self._build_delta())
            self._db._maybe_auto_compact(self._tables_written)

    def _build_delta(self) -> CommitDelta:
        """Fold this transaction's row-change records into a CommitDelta."""
        inserted: dict[str, list] = {}
        updated: dict[str, list] = {}
        deleted: dict[str, list] = {}
        for record in self._delta_rows:
            kind, table = record[0], record[1]
            if kind == "insert":
                inserted.setdefault(table, []).append(record[2])
            elif kind == "update":
                updated.setdefault(table, []).append((record[2], record[3]))
            else:
                deleted.setdefault(table, []).append(record[2])
        tables = {
            name: TableDelta(
                inserted=tuple(inserted.get(name, ())),
                updated=tuple(updated.get(name, ())),
                deleted=tuple(deleted.get(name, ())),
            )
            for name in self._tables_written
            if name in inserted or name in updated or name in deleted
        }
        return CommitDelta(tables=tables)

    def abort(self) -> None:
        """Undo all changes (in reverse order) and release locks.

        The whole rollback runs under one mutate-lock hold, together
        with the MVCC deregistration: a snapshot builder can never
        observe a half-undone transaction.  The guard is deliberately
        NOT checked here — abort is the cleanup path for an
        already-expired deadline and must always run.
        """
        self._check_finished()
        db = self._db
        with db._mutate_lock:
            for entry in reversed(self._undo):
                db._apply_undo(entry)
            self._undo.clear()
            db._mvcc_forget(self)
        db._log(self.txn_id, "abort")
        self.finished = True
        db._end_txn(self)
        metrics.get_registry().inc("rdbms.txn.aborts")

    # ------------------------------------------------------------- writes

    def insert(self, table: str, values: dict[str, Any]) -> Row:
        """Insert a row; X-locks it.

        Raises:
            SchemaError: schema violation.
            KeyError: unknown table.
        """
        self._check_active()
        db = self._db
        db._locks.acquire(self.txn_id, (table, None), LockMode.INTENTION_EXCLUSIVE)
        with db._mutate_lock:
            row = db._table(table).insert(values)
            db._locks.acquire(self.txn_id, (table, row.rid), LockMode.EXCLUSIVE)
            db._index_insert(table, row)
            db._log(self.txn_id, "insert", table=table, rid=row.rid, values=row.values)
            self._undo.append(("insert", table, row.rid))
        self._tables_written.add(table)
        if db._delta_listeners:
            self._delta_rows.append(("insert", table, row.values))
        metrics.get_registry().inc("rdbms.rows.inserted")
        return row

    def insert_many(self, table: str, values_list: list[dict[str, Any]]) -> list[Row]:
        """Insert a batch of rows; X-locks each.

        The batched fast path for bulk fact generation: one
        intention-exclusive table lock acquisition, one mutate-lock
        critical section, and one ``insert_many`` WAL record for the whole
        batch (vs one of each per row on the :meth:`insert` path).  The
        batch is all-or-nothing — a schema or primary-key violation on any
        row stores none of them.

        Raises:
            SchemaError: schema violation on any row.
            KeyError: unknown table.
        """
        self._check_active()
        if not values_list:
            return []
        db = self._db
        db._locks.acquire(self.txn_id, (table, None), LockMode.INTENTION_EXCLUSIVE)
        with db._mutate_lock:
            rows = db._table(table).insert_many(values_list)
            for row in rows:
                db._locks.acquire(self.txn_id, (table, row.rid), LockMode.EXCLUSIVE)
                db._index_insert(table, row)
                self._undo.append(("insert", table, row.rid))
            db._log(
                self.txn_id, "insert_many", table=table,
                rows=[{"rid": r.rid, "values": r.values} for r in rows],
            )
        self._tables_written.add(table)
        if db._delta_listeners:
            self._delta_rows.extend(
                ("insert", table, row.values) for row in rows)
        registry = metrics.get_registry()
        registry.inc("rdbms.rows.inserted", len(rows))
        registry.observe("rdbms.insert.batch_size", len(rows),
                         buckets=DEFAULT_SIZE_BUCKETS)
        return rows

    def update(self, table: str, rid: int, changes: dict[str, Any]) -> Row:
        """Update a row by rid; X-locks it; returns the new row."""
        self._check_active()
        db = self._db
        db._locks.acquire(self.txn_id, (table, None), LockMode.INTENTION_EXCLUSIVE)
        db._locks.acquire(self.txn_id, (table, rid), LockMode.EXCLUSIVE)
        with db._mutate_lock:
            old, new = db._table(table).update(rid, changes)
            db._index_update(table, old, new)
            db._log(
                self.txn_id, "update",
                table=table, rid=rid, before=old.values, after=new.values,
            )
            self._undo.append(("update", table, rid, old.values))
        self._tables_written.add(table)
        if db._delta_listeners:
            self._delta_rows.append(("update", table, old.values, new.values))
        return new

    def delete(self, table: str, rid: int) -> Row:
        """Delete a row by rid; X-locks it; returns the removed row."""
        self._check_active()
        db = self._db
        db._locks.acquire(self.txn_id, (table, None), LockMode.INTENTION_EXCLUSIVE)
        db._locks.acquire(self.txn_id, (table, rid), LockMode.EXCLUSIVE)
        with db._mutate_lock:
            row = db._table(table).delete(rid)
            db._index_delete(table, row)
            db._log(self.txn_id, "delete", table=table, rid=rid, values=row.values)
            self._undo.append(("delete", table, rid, row.values))
        self._tables_written.add(table)
        if db._delta_listeners:
            self._delta_rows.append(("delete", table, row.values))
        return row

    # -------------------------------------------------------------- reads

    def get(self, table: str, rid: int) -> Row:
        """Point read by rid (IS on table, S on row)."""
        self._check_active()
        db = self._db
        db._locks.acquire(self.txn_id, (table, None), LockMode.INTENTION_SHARED)
        db._locks.acquire(self.txn_id, (table, rid), LockMode.SHARED)
        return db._table(table).get(rid)

    def get_by_pk(self, table: str, key: Any) -> Row | None:
        """Point read by primary key, or None."""
        self._check_active()
        db = self._db
        db._locks.acquire(self.txn_id, (table, None), LockMode.INTENTION_SHARED)
        row = db._table(table).get_by_pk(key)
        if row is None:
            return None
        db._locks.acquire(self.txn_id, (table, row.rid), LockMode.SHARED)
        return db._table(table).get(row.rid)

    def scan(self, table: str) -> list[Row]:
        """Full scan (S on the whole table)."""
        return list(self.scan_iter(table))

    def scan_iter(self, table: str) -> Iterator[Row]:
        """Streaming full scan (S on the whole table).

        The table lock is acquired eagerly, before any row is yielded;
        under strict 2PL it is held until commit/abort, so the iterator
        may be consumed lazily (the planner streams it through
        projection into top-k instead of materializing ``list[Row]``).
        """
        self._check_active()
        db = self._db
        db._locks.acquire(self.txn_id, (table, None), LockMode.SHARED)
        return db._table(table).scan()

    def scan_units(self, table: str) -> list[tuple[str, Any]]:
        """The table's vectorizable scan units (S on the whole table) —
        ``("segment", Segment)`` / ``("rows", Iterator[Row])`` pairs in
        global rid order; see :meth:`HeapTable.scan_units`."""
        self._check_active()
        db = self._db
        db._locks.acquire(self.txn_id, (table, None), LockMode.SHARED)
        return db._table(table).scan_units()

    def sharded_scan_units(self, table: str) -> list[list[tuple[str, Any]]]:
        """Per-shard vectorizable units (S on the whole table) for
        parallel plans; see :meth:`HeapTable.sharded_scan_units`."""
        self._check_active()
        db = self._db
        db._locks.acquire(self.txn_id, (table, None), LockMode.SHARED)
        return db._table(table).sharded_scan_units()

    def scan_where(self, table: str,
                   predicate: Callable[[dict[str, Any]], bool]) -> list[Row]:
        """Filtered full scan (S on the whole table)."""
        return [r for r in self.scan_iter(table) if predicate(r.values)]

    def lookup(self, table: str, column: str, value: Any) -> list[Row]:
        """Index-assisted equality lookup; falls back to a scan."""
        self._check_active()
        db = self._db
        index = db._find_index(table, column)
        registry = metrics.get_registry()
        if index is None:
            registry.inc("rdbms.index.scan_fallbacks")
            return self.scan_where(table, lambda v: v.get(column) == value)
        db._locks.acquire(self.txn_id, (table, None), LockMode.INTENTION_SHARED)
        rows: list[Row] = []
        for rid in index.lookup(value):
            db._locks.acquire(self.txn_id, (table, rid), LockMode.SHARED)
            rows.append(db._table(table).get(rid))
        registry.inc("rdbms.index.lookups")
        registry.inc("rdbms.index.rows_fetched", len(rows))
        return rows

    def range_lookup(self, table: str, column: str, low: Any = None,
                     high: Any = None, include_low: bool = True,
                     include_high: bool = True) -> list[Row]:
        """Sorted-index range lookup; rows are returned in rid order (the
        same order a filtered scan would produce).  Falls back to a scan
        when no sorted index exists on the column."""
        self._check_active()
        db = self._db
        index = db.sorted_index(table, column)
        registry = metrics.get_registry()
        if index is None:
            registry.inc("rdbms.index.scan_fallbacks")

            def in_range(values: dict[str, Any]) -> bool:
                value = values.get(column)
                if value is None:
                    return False
                if low is not None and (
                        value < low if include_low else value <= low):
                    return False
                if high is not None and (
                        value > high if include_high else value >= high):
                    return False
                return True

            return self.scan_where(table, in_range)
        db._locks.acquire(self.txn_id, (table, None), LockMode.INTENTION_SHARED)
        rids = sorted(index.range(low, high, include_low, include_high))
        rows: list[Row] = []
        for rid in rids:
            db._locks.acquire(self.txn_id, (table, rid), LockMode.SHARED)
            rows.append(db._table(table).get(rid))
        registry.inc("rdbms.index.range_scans")
        registry.inc("rdbms.index.rows_fetched", len(rows))
        return rows

    # ---------------------------------------------------------- internals

    def _check_active(self) -> None:
        self._check_finished()
        if self.guard is not None:
            self.guard.check()

    def _check_finished(self) -> None:
        if self.finished:
            raise TransactionAborted(f"txn {self.txn_id} already finished")


class Database:
    """Top-level engine object.

    Args:
        directory: where the WAL and checkpoints live; ``None`` for a purely
            in-memory database (no durability, no recovery).
        sync_wal: fsync every log append (durable but slow).

    Opening a database over an existing directory runs recovery
    automatically.
    """

    def __init__(self, directory: str | None = None, sync_wal: bool = False) -> None:
        self._tables: dict[str, HeapTable] = {}
        self._indexes: dict[tuple[str, str], Index] = {}
        self._locks = LockManager()
        self._mutate_lock = threading.RLock()
        self._txn_counter = 0
        self._txn_lock = threading.Lock()
        self._commit_listeners: list[Callable[[frozenset[str]], None]] = []
        self._delta_listeners: list[Callable[[CommitDelta], None]] = []
        self._stats_manager = None
        # --- MVCC state (all guarded by _mutate_lock) ---
        #: Active write transactions whose undo logs roll snapshots back
        #: to committed state.
        self._active_txns: dict[int, Transaction] = {}
        #: Per-table committed version: bumped at every commit/DDL that
        #: touches the table.  Monotonic across the whole database (one
        #: shared sequence), so a dropped-and-recreated table can never
        #: reuse a version number.
        self._table_versions: dict[str, int] = {}
        self._version_seq = 0
        #: Per-table snapshot cache keyed by committed version: only the
        #: first reader after a commit pays the O(tail) copy.
        self._snapshot_cache: dict[str, Any] = {}
        #: Retry policy for :meth:`run` (deadlock / lock-timeout victims).
        self.txn_retry: RetryPolicy = TXN_RETRY
        #: When set, any commit that leaves a table's row-store tail at or
        #: above this many rows triggers :meth:`compact` on that table.
        self.auto_compact_rows: int | None = None
        #: Execution backend for parallel plans (DESIGN.md §14).  When set
        #: (an :mod:`repro.cluster.backends` backend), the planner fans
        #: scans/aggregates/joins over sharded tables out as per-shard
        #: tasks; when ``None`` every plan stays single-threaded.
        self.exec_backend: Any = None
        self._wal: WriteAheadLog | None = None
        if directory is not None:
            self._wal = WriteAheadLog(directory, sync=sync_wal)
            self._recover()

    # ----------------------------------------------------- commit listeners

    def add_commit_listener(
            self, listener: Callable[[frozenset[str]], None]) -> None:
        """Call ``listener(tables_written)`` after every data-writing commit
        and after every schema change (create/drop/alter table).

        This is how standing-query evaluation hooks the *batched* write
        paths (``insert_many`` / ``run_batch``) as well as single-row
        stores: any committed transaction that touched rows notifies,
        whatever API produced the writes.  The statistics manager and the
        query-result cache key their versions off the same stream, which
        is why schema changes notify too.  Listeners run outside all
        engine locks and must not raise.
        """
        self._commit_listeners.append(listener)

    def _notify_commit(self, tables: frozenset[str]) -> None:
        for listener in self._commit_listeners:
            listener(tables)

    def add_delta_listener(
            self, listener: Callable[[CommitDelta], None]) -> None:
        """Call ``listener(delta)`` with the row-level changes of every
        committed transaction, in commit order.

        Unlike :meth:`add_commit_listener` (which reports only *which*
        tables changed), delta listeners see the changed rows themselves —
        the foundation for O(delta) standing-query evaluation.  Recording
        per-row deltas costs one values-dict reference per written row, and
        only while at least one listener is registered; a database with no
        delta listeners pays nothing.  Schema changes arrive as a
        :class:`CommitDelta` whose ``ddl`` set names the affected tables
        (listeners should treat that as a wholesale resync signal).
        Listeners run outside all engine locks and must not raise.
        """
        self._delta_listeners.append(listener)

    def _notify_delta(self, delta: CommitDelta) -> None:
        for listener in self._delta_listeners:
            listener(delta)

    # -------------------------------------------------------------- schema

    def create_table(self, schema: TableSchema, shard_key: str | None = None,
                     shard_count: int = 1) -> None:
        """Create a table, optionally hash-sharded on ``shard_key``.

        Raises:
            SchemaError: if the table already exists, or the shard key is
                not one of its columns.
        """
        spec: ShardSpec | None = None
        if shard_key is not None:
            spec = ShardSpec(shard_key, shard_count)
        elif shard_count != 1:
            raise SchemaError("SHARDS requires a shard key")
        with self._mutate_lock:
            if schema.name in self._tables:
                raise SchemaError(f"table {schema.name!r} already exists")
            self._tables[schema.name] = HeapTable(schema, shard_spec=spec)
            self._bump_versions({schema.name})
            payload: dict[str, Any] = {"schema": schema.to_dict()}
            if spec is not None:
                payload["shard_key"] = spec.key
                payload["shard_count"] = spec.count
            self._log(0, "create_table", **payload)
        self._notify_commit(frozenset({schema.name}))
        if self._delta_listeners:
            self._notify_delta(CommitDelta(ddl=frozenset({schema.name})))

    def drop_table(self, name: str) -> None:
        """Drop a table and its indexes."""
        with self._mutate_lock:
            if name not in self._tables:
                raise SchemaError(f"no table {name!r}")
            del self._tables[name]
            self._table_versions.pop(name, None)
            self._snapshot_cache.pop(name, None)
            for key in [k for k in self._indexes if k[0] == name]:
                del self._indexes[key]
            self._log(0, "drop_table", table=name)
        self._notify_commit(frozenset({name}))
        if self._delta_listeners:
            self._notify_delta(CommitDelta(ddl=frozenset({name})))

    def alter_table(self, name: str, new_schema: TableSchema,
                    migrate: Callable[[dict[str, Any]], dict[str, Any]]) -> None:
        """Replace a table's schema, migrating each row through ``migrate``.

        Used by the schema-evolution subsystem; logged as a schema event
        followed by the rewritten rows so recovery replays deterministically.
        """
        with self._mutate_lock:
            table = self._table(name)
            table.replace_schema(new_schema, migrate)
            rows = {str(r.rid): r.values for r in table.scan()}
            extra: dict[str, Any] = {}
            if table.shard_spec is not None:
                # replace_schema re-routed (or dropped) the shard spec;
                # log the surviving one so replay rebuilds the same layout.
                extra["shard_key"] = table.shard_spec.key
                extra["shard_count"] = table.shard_spec.count
            self._log(0, "alter_schema", schema=new_schema.to_dict(),
                      rows=rows, **extra)
            for key in [k for k in self._indexes if k[0] == name]:
                column = key[1]
                if new_schema.has_column(column):
                    self._rebuild_index(name, column)
                else:
                    del self._indexes[key]
            self._bump_versions({name})
        self._notify_commit(frozenset({name}))
        if self._delta_listeners:
            self._notify_delta(CommitDelta(ddl=frozenset({name})))

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def schema(self, table: str) -> TableSchema:
        return self._table(table).schema

    def table_size(self, table: str) -> int:
        return len(self._table(table))

    # ------------------------------------------------------------- indexes

    def create_index(self, table: str, column: str, kind: str = "hash") -> None:
        """Create a secondary index (``kind`` is ``hash`` or ``sorted``)."""
        with self._mutate_lock:
            schema = self._table(table).schema
            if not schema.has_column(column):
                raise SchemaError(f"no column {column!r} in {table!r}")
            if (table, column) in self._indexes:
                raise SchemaError(f"index on {table}.{column} already exists")
            if kind == "hash":
                index: Index = HashIndex(table, column)
            elif kind == "sorted":
                index = SortedIndex(table, column)
            else:
                raise ValueError(f"unknown index kind {kind!r}")
            self._indexes[(table, column)] = index
            index.bulk_load((row.values.get(column), row.rid)
                            for row in self._table(table).scan())

    def sorted_index(self, table: str, column: str) -> SortedIndex | None:
        """The sorted index on (table, column) if one exists."""
        index = self._indexes.get((table, column))
        return index if isinstance(index, SortedIndex) else None

    # ---------------------------------------------------------- statistics

    def statistics(self):
        """The database's :class:`~repro.storage.rdbms.stats.StatisticsManager`
        (created lazily; one per database, versioned off the commit stream)."""
        if self._stats_manager is None:
            from repro.storage.rdbms.stats import StatisticsManager

            self._stats_manager = StatisticsManager(self)
        return self._stats_manager

    # ----------------------------------------------------------- compaction

    def compact(self, table: str,
                target_rows: int = SEGMENT_TARGET_ROWS) -> dict[str, Any]:
        """Freeze the table's committed tail rows into columnar segments.

        Runs in an internal transaction holding an EXCLUSIVE table lock,
        so no concurrent writer can have uncommitted rows in the tail
        while it runs — everything frozen is committed data.  The freeze
        is logged as a ``compact`` WAL record (txn 0, DDL-style: replay
        applies it unconditionally at its log position, where the
        committed row set provably matches the live one), so a crash at
        any point recovers to a consistent state: either the record made
        it and replay re-freezes the identical layout, or it did not and
        the rows are simply still in the tail.

        Compaction changes layout, not data, so commit listeners do NOT
        fire — cached query results and statistics stay valid.

        Returns a summary dict (segments created, rows frozen, totals).
        """
        txn = self.begin()
        try:
            self._locks.acquire(txn.txn_id, (table, None), LockMode.EXCLUSIVE)
            with get_tracer().span("rdbms.compact") as span:
                with self._mutate_lock:
                    heap = self._table(table)
                    created, frozen, max_rid = heap.compact(
                        target_rows=target_rows)
                    if frozen:
                        self._log(0, "compact", table=table, max_rid=max_rid,
                                  target_rows=target_rows)
                        # Layout-only change: data is identical, but the
                        # cached snapshot's unit structure is stale, so
                        # version it out (readers rebuild, rows unchanged).
                        self._bump_versions({table})
                    segment_count = heap.segment_count()
                span.set_attribute("table", table)
                span.set_attribute("segments_created", created)
                span.set_attribute("rows_frozen", frozen)
            txn.commit()
        except BaseException:
            if not txn.finished:
                txn.abort()
            raise
        return {
            "table": table,
            "segments_created": created,
            "rows_frozen": frozen,
            "segment_count": segment_count,
        }

    def reshard(self, table: str, shard_key: str | None,
                shard_count: int = 1) -> dict[str, Any]:
        """Re-partition an existing table (``shard_key=None`` unshards).

        Like :meth:`compact` this is a layout-only change run under an
        EXCLUSIVE table lock and covered by a txn-0 DDL-style ``reshard``
        WAL record: replay applies it unconditionally at its log
        position, where routing (seed-stable, see
        :mod:`repro.storage.rdbms.sharding`) reproduces the identical
        shard membership.  Existing segments are melted — re-compact to
        freeze per-shard segments.  Commit listeners do NOT fire: row
        data is untouched, so cached results and statistics stay valid.

        Returns a summary dict.
        """
        spec = ShardSpec(shard_key, shard_count) if shard_key is not None \
            else None
        txn = self.begin()
        try:
            self._locks.acquire(txn.txn_id, (table, None), LockMode.EXCLUSIVE)
            with get_tracer().span("rdbms.reshard") as span:
                with self._mutate_lock:
                    heap = self._table(table)
                    heap.set_shard_spec(spec)
                    self._log(0, "reshard", table=table, shard_key=shard_key,
                              shard_count=spec.count if spec else 1)
                    # Layout-only: invalidate cached snapshots so readers
                    # never serve per-shard units of the old routing.
                    self._bump_versions({table})
                    rows = len(heap)
                span.set_attribute("table", table)
                span.set_attribute("shard_count", spec.count if spec else 1)
            txn.commit()
        except BaseException:
            if not txn.finished:
                txn.abort()
            raise
        metrics.get_registry().inc("rdbms.resharded")
        return {
            "table": table,
            "shard_key": shard_key,
            "shard_count": spec.count if spec else 1,
            "rows": rows,
        }

    def shard_specs(self) -> dict[str, dict[str, Any]]:
        """Table name -> shard spec dict (``repro stats`` reporting)."""
        with self._mutate_lock:
            return {name: t.shard_spec.to_dict()
                    for name, t in self._tables.items()
                    if t.shard_spec is not None}

    def _maybe_auto_compact(self, tables: set[str]) -> None:
        threshold = self.auto_compact_rows
        if not threshold:
            return
        for table in tables:
            try:
                heap = self._table(table)
            except KeyError:
                continue
            if heap.tail_size >= threshold:
                # The compaction transaction writes no rows, so its own
                # commit cannot re-trigger this hook.
                self.compact(table)

    def segment_counts(self) -> dict[str, int]:
        """Table name -> live segment count (``repro stats`` reporting)."""
        with self._mutate_lock:
            return {name: t.segment_count()
                    for name, t in self._tables.items() if t.segment_count()}

    # --------------------------------------------------------- transactions

    def begin(self) -> Transaction:
        """Start a new transaction."""
        with self._txn_lock:
            self._txn_counter += 1
            txn_id = self._txn_counter
        self._log(txn_id, "begin")
        txn = Transaction(self, txn_id)
        # Registration is guarded by the mutate lock so a snapshot
        # builder iterating the active set never races a dict resize.
        with self._mutate_lock:
            self._active_txns[txn_id] = txn
        return txn

    def begin_snapshot(self, guard: CancellationToken | None = None):
        """Start a lock-free read-only transaction at the current commit
        point (DESIGN.md §15).

        All tables are resolved under one mutate-lock hold, so the
        returned :class:`~repro.storage.rdbms.mvcc.SnapshotTransaction`
        is cross-table consistent: it sees every transaction that
        committed before this call and none that commit after (or are
        still in flight).  Readers on this handle take no locks, cannot
        deadlock, and never enter the waits-for graph.
        """
        from repro.storage.rdbms.mvcc import (
            SnapshotTransaction,
            build_table_snapshot,
        )

        registry = metrics.get_registry()
        with self._mutate_lock:
            undo: list[tuple] = []
            for txn in self._active_txns.values():
                undo.extend(txn._undo)
            snapshots: dict[str, Any] = {}
            for name, heap in self._tables.items():
                version = self._table_versions.get(name, 0)
                cached = self._snapshot_cache.get(name)
                if cached is None or cached.version != version:
                    cached = build_table_snapshot(heap, undo, version)
                    self._snapshot_cache[name] = cached
                else:
                    registry.inc("rdbms.mvcc.snapshot_reuses")
                snapshots[name] = cached
        registry.inc("rdbms.mvcc.read_txns")
        return SnapshotTransaction(self, snapshots, guard=guard)

    def run(self, work: Callable[[Transaction], Any],
            retries: int | None = None,
            guard: CancellationToken | None = None) -> Any:
        """Run ``work`` in a transaction, retrying deadlocks and lock
        timeouts under :attr:`txn_retry` (a
        :class:`~repro.faults.retry.RetryPolicy`: exponential backoff,
        deterministic decorrelated jitter, optional deadline).

        Args:
            work: callable receiving the transaction.
            retries: override the policy's ``max_attempts`` for this call.
            guard: optional cancellation token installed on each attempt's
                transaction (checked at every operation and at commit).

        Returns whatever ``work`` returns; commits on success.
        """
        from repro.storage.rdbms.lockmgr import DeadlockError, LockTimeoutError

        policy = self.txn_retry
        if retries is not None and retries != policy.max_attempts:
            policy = replace(policy, max_attempts=retries)
        registry = metrics.get_registry()
        attempts = 0

        def attempt() -> tuple[Any, int]:
            nonlocal attempts
            attempts += 1
            if attempts > 1:
                registry.inc("rdbms.txn.retries")
            txn = self.begin()
            txn.guard = guard
            try:
                result = work(txn)
                txn.commit()
                return result, txn.txn_id
            except BaseException:
                if not txn.finished:
                    txn.abort()
                raise

        with get_tracer().span("rdbms.txn") as span:
            result, txn_id = policy.run(
                attempt, salt=f"txn-{threading.get_ident()}",
                retry_on=(DeadlockError, LockTimeoutError))
            span.set_attribute("txn_id", txn_id)
            span.set_attribute("attempts", attempts)
            return result

    def run_batch(self, works: "list[Callable[[Transaction], Any]]",
                  retries: int | None = None) -> list[Any]:
        """Run several work items inside ONE transaction (one begin/commit
        pair, one lock scope), retrying the whole batch on deadlock or
        lock timeout under the same :class:`RetryPolicy` as :meth:`run`.

        Returns the per-item results in order.  Use with
        :meth:`Transaction.insert_many` for bulk loads: a 5,000-fact
        generate() run becomes a handful of WAL records instead of 15,000.
        """
        return self.run(lambda txn: [work(txn) for work in works],
                        retries=retries)

    # ----------------------------------------------------------- durability

    def checkpoint(self) -> None:
        """Write a consistent snapshot and truncate the WAL."""
        if self._wal is None:
            return
        with self._mutate_lock:
            state = {
                "tables": {
                    name: {
                        "schema": t.schema.to_dict(),
                        "rows": {str(r.rid): r.values for r in t.scan()},
                    }
                    for name, t in self._tables.items()
                },
                "indexes": [
                    {"table": t, "column": c,
                     "kind": "sorted" if isinstance(i, SortedIndex) else "hash"}
                    for (t, c), i in self._indexes.items()
                ],
                # Segment layout survives WAL truncation: the snapshot rows
                # above include frozen rows, and reopen re-freezes this
                # layout (re-encoding rebuilds every zone map from data).
                "segments": {
                    name: t.segment_layout()
                    for name, t in self._tables.items() if t.segment_count()
                },
                # Shard specs must be restored BEFORE segment layouts:
                # 4-entry layout rows are selected by shard membership.
                "shards": {
                    name: t.shard_spec.to_dict()
                    for name, t in self._tables.items()
                    if t.shard_spec is not None
                },
            }
            self._wal.write_checkpoint(state)

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    def wal_size_bytes(self) -> int:
        return self._wal.size_bytes() if self._wal else 0

    # ------------------------------------------------------------ internals

    def _table(self, name: str) -> HeapTable:
        if name not in self._tables:
            raise KeyError(f"no table {name!r}")
        return self._tables[name]

    def _find_index(self, table: str, column: str) -> Index | None:
        return self._indexes.get((table, column))

    def _rebuild_index(self, table: str, column: str) -> None:
        old = self._indexes[(table, column)]
        new: Index = (
            SortedIndex(table, column) if isinstance(old, SortedIndex)
            else HashIndex(table, column)
        )
        new.bulk_load((row.values.get(column), row.rid)
                      for row in self._table(table).scan())
        self._indexes[(table, column)] = new

    def _index_insert(self, table: str, row: Row) -> None:
        for (t, column), index in self._indexes.items():
            if t == table:
                index.insert(row.values.get(column), row.rid)

    def _index_update(self, table: str, old: Row, new: Row) -> None:
        for (t, column), index in self._indexes.items():
            if t == table:
                index.update(old.values.get(column), new.values.get(column), new.rid)

    def _index_delete(self, table: str, row: Row) -> None:
        for (t, column), index in self._indexes.items():
            if t == table:
                index.remove(row.values.get(column), row.rid)

    def _log(self, txn_id: int, rec_type: str, **payload: Any) -> None:
        if self._wal is not None:
            self._wal.append(txn_id, rec_type, **payload)

    def _end_txn(self, txn: Transaction) -> None:
        self._locks.release_all(txn.txn_id)

    # --------------------------------------------------------------- MVCC

    def _bump_versions(self, tables: "set[str] | frozenset[str]") -> None:
        """Advance the committed version of each table (mutate lock held).

        Versions come from one database-wide monotonic sequence, so no
        two distinct committed states of any table — even across a
        drop/recreate — ever share a version number.
        """
        for table in tables:
            self._version_seq += 1
            self._table_versions[table] = self._version_seq
            self._snapshot_cache.pop(table, None)

    def _mvcc_commit(self, txn: Transaction) -> None:
        """Atomically make ``txn``'s writes visible to new snapshots."""
        with self._mutate_lock:
            self._active_txns.pop(txn.txn_id, None)
            if txn._tables_written:
                self._bump_versions(txn._tables_written)

    def _mvcc_forget(self, txn: Transaction) -> None:
        """Deregister an aborting transaction (mutate lock held: the
        caller pairs this with applying the undo log in one critical
        section)."""
        self._active_txns.pop(txn.txn_id, None)

    def _apply_undo(self, entry: tuple) -> None:
        kind = entry[0]
        with self._mutate_lock:
            if kind == "insert":
                _, table, rid = entry
                row = self._table(table).delete(rid)
                self._index_delete(table, row)
            elif kind == "update":
                _, table, rid, before = entry
                old, new = self._table(table).update(rid, before)
                self._index_update(table, old, new)
            elif kind == "delete":
                _, table, rid, values = entry
                row = self._table(table).insert(values, rid=rid)
                self._index_insert(table, row)
            else:
                raise ValueError(f"unknown undo entry {kind!r}")

    def _recover(self) -> None:
        """Rebuild state: checkpoint snapshot + committed log suffix."""
        assert self._wal is not None
        snapshot = self._wal.read_checkpoint()
        if snapshot is not None:
            for name, tdata in snapshot["tables"].items():
                table = HeapTable(TableSchema.from_dict(tdata["schema"]))
                for rid_str, values in tdata["rows"].items():
                    table.insert(values, rid=int(rid_str))
                spec_data = snapshot.get("shards", {}).get(name)
                if spec_data is not None:
                    table.set_shard_spec(ShardSpec.from_dict(spec_data))
                layout = snapshot.get("segments", {}).get(name)
                if layout and not table.restore_segments(layout):
                    # Checkpoint drifted from the rows we recovered: the
                    # un-restored remainder stays in the tail (correct,
                    # just uncompacted) rather than serving a segment
                    # whose zone maps no longer match its data.
                    metrics.get_registry().inc("segments.invalidated")
                self._tables[name] = table
            for idx in snapshot.get("indexes", []):
                key = (idx["table"], idx["column"])
                index: Index = (
                    SortedIndex(*key) if idx["kind"] == "sorted" else HashIndex(*key)
                )
                for row in self._tables[idx["table"]].scan():
                    index.insert(row.values.get(idx["column"]), row.rid)
                self._indexes[key] = index

        records = list(self._wal.records())
        committed = {r.txn_id for r in records if r.rec_type == "commit"}
        aborted = {r.txn_id for r in records if r.rec_type == "abort"}
        max_txn = 0
        for rec in records:
            max_txn = max(max_txn, rec.txn_id)
            apply_dml = rec.txn_id in committed and rec.txn_id not in aborted
            if rec.rec_type == "create_table":
                schema = TableSchema.from_dict(rec.payload["schema"])
                if schema.name not in self._tables:
                    spec = None
                    if rec.payload.get("shard_key") is not None:
                        spec = ShardSpec(rec.payload["shard_key"],
                                         rec.payload.get("shard_count", 1))
                    self._tables[schema.name] = HeapTable(
                        schema, shard_spec=spec)
            elif rec.rec_type == "drop_table":
                self._tables.pop(rec.payload["table"], None)
            elif rec.rec_type == "alter_schema":
                schema = TableSchema.from_dict(rec.payload["schema"])
                table = HeapTable(schema)
                for rid_str, values in rec.payload["rows"].items():
                    table.insert(values, rid=int(rid_str))
                if rec.payload.get("shard_key") is not None:
                    table.set_shard_spec(
                        ShardSpec(rec.payload["shard_key"],
                                  rec.payload.get("shard_count", 1)))
                self._tables[schema.name] = table
            elif rec.rec_type == "insert" and apply_dml:
                self._tables[rec.payload["table"]].insert(
                    rec.payload["values"], rid=rec.payload["rid"]
                )
            elif rec.rec_type == "insert_many" and apply_dml:
                table = self._tables[rec.payload["table"]]
                for entry in rec.payload["rows"]:
                    table.insert(entry["values"], rid=entry["rid"])
            elif rec.rec_type == "update" and apply_dml:
                self._tables[rec.payload["table"]].update(
                    rec.payload["rid"], rec.payload["after"]
                )
            elif rec.rec_type == "delete" and apply_dml:
                self._tables[rec.payload["table"]].delete(rec.payload["rid"])
            elif rec.rec_type == "compact":
                # DDL-style (txn 0): applied unconditionally at its log
                # position, where the replayed committed row set matches
                # the live tail the original compaction saw (it held an
                # exclusive table lock, so no writer straddled it).
                table = self._tables.get(rec.payload["table"])
                if table is not None:
                    table.compact(max_rid=rec.payload["max_rid"],
                                  target_rows=rec.payload["target_rows"])
            elif rec.rec_type == "reshard":
                # DDL-style like compact: routing is seed-stable, so
                # re-applying the spec reproduces shard membership exactly.
                table = self._tables.get(rec.payload["table"])
                if table is not None:
                    key = rec.payload.get("shard_key")
                    table.set_shard_spec(
                        ShardSpec(key, rec.payload.get("shard_count", 1))
                        if key is not None else None)
        self._txn_counter = max_txn
        for key in list(self._indexes):
            self._rebuild_index(*key)
