"""Seed-stable hash-shard routing for heap tables (DESIGN.md §14).

A sharded table assigns every row to one of ``count`` shards by hashing
the row's *shard key* column.  Two properties matter and both rule out
the builtin ``hash()``:

* **seed stability** — shard assignment must be identical across
  processes and ``PYTHONHASHSEED`` values, because process-pool workers
  and WAL replay after a restart must agree with the coordinator on
  which rows live where.  ``zlib.crc32`` over canonically-encoded key
  bytes is deterministic everywhere.
* **SQL equality semantics** — routing must agree with predicate
  evaluation: ``col = 1`` matches the stored values ``1``, ``1.0`` and
  ``True`` (python ``==``), so all numerics that compare equal must
  encode to the same bytes.  Integral floats collapse to their int
  (which also folds ``-0.0`` into ``0``), bools collapse to 0/1, and
  strings live in a separate namespace so ``1`` and ``'1'`` stay apart.

Without this, shard *pruning* (skipping shards a point predicate cannot
reach) would silently drop matching rows.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any


def canonical_key_bytes(value: Any) -> bytes:
    """Bytes whose equality matches SQL ``=`` on the underlying values."""
    if value is None:
        return b"\x00null"
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, float):
        if value != value:  # NaN never equals anything, any bucket works
            return b"f:nan"
        if value.is_integer():  # 1.0 == 1, -0.0 == 0
            value = int(value)
        else:
            return b"f:" + repr(value).encode("ascii")
    if isinstance(value, int):
        return b"i:" + str(value).encode("ascii")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    return b"r:" + repr(value).encode("utf-8", "backslashreplace")


def shard_of_value(value: Any, shard_count: int) -> int:
    """The shard a key value routes to: ``crc32(canonical bytes) % n``."""
    if shard_count <= 1:
        return 0
    return zlib.crc32(canonical_key_bytes(value)) % shard_count


@dataclass(frozen=True)
class ShardSpec:
    """A table's sharding declaration: hash of ``key`` into ``count``."""

    key: str
    count: int

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("shard key must be a column name")
        if self.count < 1:
            raise ValueError("shard count must be >= 1")

    def shard_of(self, value: Any) -> int:
        return shard_of_value(value, self.count)

    def to_dict(self) -> dict[str, Any]:
        return {"key": self.key, "count": self.count}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ShardSpec":
        return ShardSpec(key=data["key"], count=int(data["count"]))
