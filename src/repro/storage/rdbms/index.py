"""Secondary indexes: hash (equality) and sorted (range) indexes.

Indexes map a column value to the set of row IDs holding it.  The engine
maintains them on insert/update/delete; the SQL layer consults them for
equality and range predicates.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Any, Iterable, Iterator


class Index(ABC):
    """Common index interface."""

    def __init__(self, table: str, column: str) -> None:
        self.table = table
        self.column = column

    @abstractmethod
    def insert(self, value: Any, rid: int) -> None:
        """Register ``rid`` under ``value`` (None values are not indexed)."""

    @abstractmethod
    def remove(self, value: Any, rid: int) -> None:
        """Unregister; silently ignores unknown pairs."""

    @abstractmethod
    def lookup(self, value: Any) -> list[int]:
        """Row IDs with exactly ``value``."""

    def update(self, old_value: Any, new_value: Any, rid: int) -> None:
        """Move a rid from one key to another."""
        if old_value == new_value:
            return
        self.remove(old_value, rid)
        self.insert(new_value, rid)

    def bulk_load(self, pairs: "Iterable[tuple[Any, int]]") -> None:
        """Load many (value, rid) pairs into an empty index at once.

        Subclasses override with a sort-once fast path; per-pair
        :meth:`insert` into a large sorted structure is quadratic.
        """
        for value, rid in pairs:
            self.insert(value, rid)


class HashIndex(Index):
    """Dict-backed equality index.

    Buckets are rid lists kept sorted on mutation (binary-search insert
    and remove), so :meth:`lookup` returns the deterministic ascending
    order with an O(k) copy instead of an O(k log k) sort per call —
    lookups vastly outnumber mutations on the facts table's hot paths.
    """

    def __init__(self, table: str, column: str) -> None:
        super().__init__(table, column)
        self._buckets: dict[Any, list[int]] = {}

    def insert(self, value: Any, rid: int) -> None:
        if value is None:
            return
        bucket = self._buckets.setdefault(value, [])
        pos = bisect.bisect_left(bucket, rid)
        if pos == len(bucket) or bucket[pos] != rid:
            bucket.insert(pos, rid)

    def remove(self, value: Any, rid: int) -> None:
        if value is None:
            return
        bucket = self._buckets.get(value)
        if bucket is None:
            return
        pos = bisect.bisect_left(bucket, rid)
        if pos < len(bucket) and bucket[pos] == rid:
            bucket.pop(pos)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> list[int]:
        return list(self._buckets.get(value, ()))

    def bulk_load(self, pairs: Iterable[tuple[Any, int]]) -> None:
        buckets = self._buckets
        for value, rid in pairs:
            if value is None:
                continue
            buckets.setdefault(value, []).append(rid)
        for bucket in buckets.values():
            bucket.sort()

    def keys(self) -> list[Any]:
        return list(self._buckets)

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


class SortedIndex(Index):
    """Sorted-list index supporting range scans.

    Keeps parallel sorted arrays of (value, rid) pairs; lookups and range
    scans use :mod:`bisect`.  Values must be mutually comparable.
    """

    def __init__(self, table: str, column: str) -> None:
        super().__init__(table, column)
        self._pairs: list[tuple[Any, int]] = []

    def insert(self, value: Any, rid: int) -> None:
        if value is None:
            return
        bisect.insort(self._pairs, (value, rid))

    def remove(self, value: Any, rid: int) -> None:
        if value is None:
            return
        pos = bisect.bisect_left(self._pairs, (value, rid))
        if pos < len(self._pairs) and self._pairs[pos] == (value, rid):
            self._pairs.pop(pos)

    def bulk_load(self, pairs: Iterable[tuple[Any, int]]) -> None:
        self._pairs.extend((v, r) for v, r in pairs if v is not None)
        self._pairs.sort()

    def lookup(self, value: Any) -> list[int]:
        lo = bisect.bisect_left(self._pairs, (value, -1))
        rids: list[int] = []
        for v, rid in self._pairs[lo:]:
            if v != value:
                break
            rids.append(rid)
        return rids

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield row IDs whose value lies in the given (optional) bounds."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._pairs, (low, -1))
        else:
            start = bisect.bisect_right(self._pairs, (low, float("inf")))
        for value, rid in self._pairs[start:]:
            if high is not None:
                if include_high and value > high:
                    break
                if not include_high and value >= high:
                    break
            yield rid

    def min_value(self) -> Any:
        """Smallest indexed value, or None if empty."""
        return self._pairs[0][0] if self._pairs else None

    def max_value(self) -> Any:
        """Largest indexed value, or None if empty."""
        return self._pairs[-1][0] if self._pairs else None

    def __len__(self) -> int:
        return len(self._pairs)
