"""Parallel shard execution over the cluster backends (DESIGN.md §14).

When a table is sharded (``CREATE TABLE ... SHARD BY (col) SHARDS n``)
and the database carries an execution backend (``Database.exec_backend``),
the planner swaps its chosen scan for the operators in this module:

* :class:`ParallelScan` — fans the scan out as one task per shard chunk
  on the backend, prunes shards a shard-key equality/IN predicate pins
  away, and heap-merges the rid-sorted per-shard streams so the output
  is byte-identical to the single-shard plan;
* :class:`ParallelAggregate` — partial aggregation per shard, merged
  coordinator-side (type-gated so the merged fold is exact: FLOAT sums
  and FLOAT group keys fall back to the serial path);
* :class:`ParallelHashJoin` — shard-local hash join when both sides are
  co-partitioned on the join key, else broadcast of the
  statistics-smaller side to every shard of the fanned side.

Workers are module-level functions over picklable tasks (segments,
conjunct ASTs and row dicts all pickle), so the same code runs on the
serial, thread and process backends.  Each operator preserves the naive
interpreter's row order exactly — the sharded differential suite and the
E22 bench gate that invariant.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from itertools import zip_longest
from time import perf_counter
from typing import Any, Iterator

from repro.errors import StaleSnapshotError
from repro.storage.rdbms import planner as _planner
from repro.storage.rdbms.engine import Transaction
from repro.storage.rdbms.sharding import ShardSpec
from repro.storage.rdbms.sql import (
    Aggregate,
    InPredicate,
    SelectStatement,
    eval_predicate,
)
from repro.storage.rdbms.types import ColumnType
from repro.telemetry import metrics
from repro.telemetry.tracing import get_tracer

#: Rough per-task row budget: segments stay whole (they are already
#: frozen units), tail row lists are sliced, small units coalesce.
CHUNK_TARGET_ROWS = 16_384


# ---------------------------------------------------------- shard pruning


def _conjunct_shards(conjunct: Any, spec: ShardSpec,
                     table: str) -> set[int] | None:
    """Shards that can hold rows satisfying one conjunct, or None when
    the conjunct does not constrain the shard key."""
    eq = _planner._eq_conjunct(conjunct)
    if eq is not None:
        ref, value = eq
        if ref.table in (None, table) and ref.name == spec.key:
            if value is None:
                return set()  # ``col = NULL`` matches no row
            return {spec.shard_of(value)}
        return None
    if isinstance(conjunct, InPredicate) and not conjunct.negated:
        ref = conjunct.column
        if ref.table in (None, table) and ref.name == spec.key:
            # NULL in the value list matches NULL-keyed rows here (the
            # evaluator's ``value in values``), and those rows live in
            # shard_of(None) — which the comprehension already includes.
            return {spec.shard_of(v) for v in conjunct.values}
    return None


def allowed_shards(conjuncts: list[Any], spec: ShardSpec,
                   table: str) -> list[int]:
    """Shards that can contain matching rows (ascending); conjuncts that
    do not pin the shard key leave the set untouched."""
    allowed = set(range(spec.count))
    for conjunct in conjuncts:
        shards = _conjunct_shards(conjunct, spec, table)
        if shards is not None:
            allowed &= shards
    return sorted(allowed)


# ------------------------------------------------------------ scan worker


@dataclass
class ScanChunkTask:
    """One worker unit: a slice of one shard's scan."""

    table: str
    shard: int
    units: list[tuple[str, Any]]
    conjuncts: list[Any]
    vector: list[Any]
    fallback: list[Any]


def _scan_units(units: list[tuple[str, Any]], conjuncts: list[Any],
                vector: list[Any], fallback: list[Any],
                registry) -> tuple[list[dict[str, Any]], int, int]:
    """Evaluate scan units exactly like :class:`SegmentScan` would:
    zone-map prune, bitmap selection, fallback re-check, dense decode.
    Returns ``(rows, segments_scanned, segments_skipped)``."""
    full = _planner.conjoin(conjuncts)
    fallback_pred = _planner.conjoin(fallback)
    rows: list[dict[str, Any]] = []
    scanned = skipped = 0
    for kind, unit in units:
        if kind == "rows":
            for rid, values in unit:
                r = dict(values)
                r["__rid__"] = rid
                if full is None or eval_predicate(full, r):
                    rows.append(r)
            continue
        segment = unit
        if segment.count == 0:
            continue
        if any(_planner._zone_map_prunes(segment, c) for c in vector):
            registry.inc("segments.skipped")
            skipped += 1
            continue
        registry.inc("segments.scanned")
        scanned += 1
        selected = _planner._segment_selection(segment, vector)
        if selected is None:  # incomparable operands: naive error surface
            for rid, values in segment.iter_rows():
                values["__rid__"] = rid
                if full is None or eval_predicate(full, values):
                    rows.append(values)
            continue
        if fallback_pred is not None:
            for pos in selected:
                values = segment.row_values(pos)
                values["__rid__"] = segment.rids[pos]
                if eval_predicate(fallback_pred, values):
                    rows.append(values)
            continue
        if len(selected) * 4 >= segment.count:
            decoded = [(col.name, segment.columns[col.name].decoded())
                       for col in segment.schema.columns]
            rids = segment.rids
            for pos in selected:
                values = {name: column[pos] for name, column in decoded}
                values["__rid__"] = rids[pos]
                rows.append(values)
        else:
            for pos in selected:
                values = segment.row_values(pos)
                values["__rid__"] = segment.rids[pos]
                rows.append(values)
    return rows, scanned, skipped


def _preprune_units(units: list[tuple[str, Any]], vector: list[Any],
                    registry) -> tuple[list[tuple[str, Any]], int]:
    """Coordinator-side zone-map prune before tasks are built.

    Workers prune too (:func:`_scan_units`), but by then the segment has
    already been pickled across the process boundary.  Dropping provably
    empty segments here keeps them out of the task payloads entirely,
    which is what makes a shard-pruned point query competitive with the
    index path.  Returns ``(kept_units, segments_skipped)``.
    """
    if not vector:
        return units, 0
    kept: list[tuple[str, Any]] = []
    skipped = 0
    for kind, unit in units:
        if kind == "segment" and unit.count and any(
                _planner._zone_map_prunes(unit, c) for c in vector):
            skipped += 1
            continue
        kept.append((kind, unit))
    if skipped:
        registry.inc("segments.skipped", skipped)
    return kept, skipped


def run_scan_chunk(task: ScanChunkTask) -> dict[str, Any]:
    """Worker: scan one chunk of one shard, applying the full predicate."""
    t0 = perf_counter()
    rows, scanned, skipped = _scan_units(
        task.units, task.conjuncts, task.vector, task.fallback,
        metrics.get_registry())
    return {"shard": task.shard, "rows": rows,
            "seconds": perf_counter() - t0,
            "scanned": scanned, "skipped": skipped}


# ------------------------------------------------------------- operators


class ShardScan(_planner.PlanNode):
    """Pseudo-child rendering the fanned-out per-shard work.

    Fanned operators execute N worker tasks but must render ONE plan
    line, so the coordinator sums worker actuals into this node's
    profile (rows summed, loops = shards that executed, time = summed
    worker seconds).  ``profiled_manual`` keeps :func:`attach_profiles`
    from wrapping it — a fully pruned fan-out leaves the profile
    untouched, which describe() renders as ``never executed``.
    """

    profiled_manual = True

    def __init__(self, table: str, total: int, live: int,
                 side: str | None = None) -> None:
        self.table = table
        self.total = total
        self.live = live
        self.side = side  # join fan sides label which input fans out

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        return []  # only ever executed through its parent's fan-out

    def absorb(self, result: dict[str, Any], new_shard: bool,
               rows_key: str = "rows") -> None:
        """Fold one worker result's actuals into this node's profile."""
        prof = self.profile
        if prof is None:
            return
        if new_shard:
            prof.loops += 1
        rows = result[rows_key]
        prof.rows += rows if isinstance(rows, int) else len(rows)
        prof.seconds += result["seconds"]
        prof.segments_scanned += result["scanned"]
        prof.segments_skipped += result["skipped"]

    def absorb_prepruned(self, skipped: int) -> None:
        """Count coordinator-pruned segments as skipped in the actuals."""
        if self.profile is not None and skipped:
            self.profile.segments_skipped += skipped

    def label(self) -> str:
        prefix = f"ShardScan({self.table}" if self.side is None \
            else f"ShardScan({self.side}={self.table}"
        return (f"{prefix}, shards={self.live}/{self.total} "
                f"pruned={self.total - self.live})")


def _chunk_shard_units(units: list[tuple[str, Any]]) \
        -> list[list[tuple[str, Any]]]:
    """Split one shard's unit list into ~CHUNK_TARGET_ROWS-row tasks,
    preserving unit order (per-shard rid order)."""
    chunks: list[list[tuple[str, Any]]] = []
    cur: list[tuple[str, Any]] = []
    cur_rows = 0
    for kind, unit in units:
        n = unit.count if kind == "segment" else len(unit)
        if cur and cur_rows + n > CHUNK_TARGET_ROWS:
            chunks.append(cur)
            cur, cur_rows = [], 0
        if kind == "rows" and n > CHUNK_TARGET_ROWS:
            if cur:
                chunks.append(cur)
                cur, cur_rows = [], 0
            for i in range(0, n, CHUNK_TARGET_ROWS):
                chunks.append([("rows", unit[i:i + CHUNK_TARGET_ROWS])])
            continue
        cur.append((kind, unit))
        cur_rows += n
    if cur:
        chunks.append(cur)
    return chunks


def _backend_stream(backend: Any, fn, tasks: list) -> Iterator[Any]:
    """Stream task results through the backend, inline when it cannot."""
    stream = getattr(backend, "map_stream", None)
    if stream is not None:
        return stream(fn, tasks)
    return map(fn, tasks)


def _checked_shard_units(txn: Transaction, table: str,
                         spec: ShardSpec) -> list[list[tuple[str, Any]]]:
    """The transaction's per-shard units, verified against the planned spec.

    Snapshot readers take no locks, so a reshard can commit between
    snapshot acquisition and planning; executing a plan pruned under the
    new routing over units partitioned under the old one would drop rows
    silently.  Any disagreement (different key, count, or the table
    unsharded entirely) raises :class:`StaleSnapshotError`, which the
    statement executor answers with a fresh snapshot + fresh plan.
    """
    snapshots = getattr(txn, "_snapshots", None)
    if snapshots is not None:
        snap = snapshots.get(table)
        live_spec = snap.table.shard_spec if snap is not None else None
    else:
        live_spec = txn._db._table(table).shard_spec
    if live_spec != spec:
        metrics.get_registry().inc("parallel.stale_layouts")
        raise StaleSnapshotError(
            f"shard layout of {table!r} changed between snapshot and plan")
    return txn.sharded_scan_units(table)


def _should_inline(tasks: list, total_rows: int) -> bool:
    """Tiny fan-outs run inline at the coordinator.

    A single task has no parallelism to win, and for a handful of rows
    the pool's pickle + dispatch latency dominates the work itself —
    exactly the shape of a shard-pruned point query.  Inline execution
    uses a lazy ``map``, so streaming and LIMIT early-exit behave the
    same as the backend path.
    """
    return len(tasks) == 1 or total_rows * 2 <= CHUNK_TARGET_ROWS


class ParallelScan(_planner.PlanNode):
    """Fan a sharded table's scan out on the execution backend.

    Plan-time shard pruning drops shards a shard-key equality or IN
    conjunct proves empty; the rest fan out as per-shard chunk tasks,
    interleaved round-robin so every shard makes progress under the
    backend's bounded submit-ahead window.  Each shard's chunks arrive
    in rid order, and a ``heapq.merge`` over the per-shard streams
    restores global rid order — row- and byte-identical to the serial
    scan.  Streaming end to end: chunks buffer per shard (bounded by
    the backend window), so a LIMIT abandons the merge without
    materializing the table.
    """

    profiled_streaming = True

    def __init__(self, table: str, conjuncts: list[Any],
                 vector: list[Any], fallback: list[Any],
                 spec: ShardSpec, shards: list[int]) -> None:
        self.table = table
        self.conjuncts = conjuncts
        self._vector = vector
        self._fallback = fallback
        self.spec = spec
        self.shards = shards  # live (un-pruned) shards, ascending
        self.shard_scan = ShardScan(table, spec.count, len(shards))

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        return list(self.rows(txn))

    def rows(self, txn: Transaction) -> Iterator[dict[str, Any]]:
        registry = metrics.get_registry()
        pruned = self.spec.count - len(self.shards)
        registry.inc("parallel.shards.scanned", len(self.shards))
        registry.inc("parallel.shards.pruned", pruned)
        prof = self.profile
        if prof is not None:
            prof.shards_total += self.spec.count
            prof.shards_pruned += pruned
        if not self.shards:
            return iter(())
        units_by_shard = _checked_shard_units(txn, self.table, self.spec)
        shard_tasks: dict[int, list[ScanChunkTask]] = {}
        total_rows = 0
        for shard in self.shards:
            units, skipped = _preprune_units(units_by_shard[shard],
                                             self._vector, registry)
            self.shard_scan.absorb_prepruned(skipped)
            total_rows += sum(u.count if kind == "segment" else len(u)
                              for kind, u in units)
            chunks = _chunk_shard_units(units)
            if chunks:
                shard_tasks[shard] = [
                    ScanChunkTask(self.table, shard, chunk, self.conjuncts,
                                  self._vector, self._fallback)
                    for chunk in chunks
                ]
        if not shard_tasks:
            return iter(())
        # Round-robin interleave so the bounded in-flight window serves
        # every shard — the merge needs each shard's head chunk early.
        ordered = [shard_tasks[s] for s in sorted(shard_tasks)]
        flat = [t for group in zip_longest(*ordered)
                for t in group if t is not None]
        backend = getattr(txn._db, "exec_backend", None)
        if _should_inline(flat, total_rows):
            backend = None
        stream = zip(flat, _backend_stream(backend, run_scan_chunk, flat))
        return self._merged(stream, sorted(shard_tasks))

    def _merged(self, stream: Iterator[tuple[ScanChunkTask, dict]],
                live: list[int]) -> Iterator[dict[str, Any]]:
        buffers: dict[int, deque] = {s: deque() for s in live}
        started: set[int] = set()
        shard_scan = self.shard_scan

        def absorb(task: ScanChunkTask, result: dict[str, Any]) -> None:
            new = task.shard not in started
            started.add(task.shard)
            shard_scan.absorb(result, new)
            buffers[task.shard].append(result["rows"])

        def shard_rows(shard: int) -> Iterator[dict[str, Any]]:
            # Generators share the result stream: whichever the merge
            # pulls next drains it into the per-shard buffers until its
            # own chunk arrives.  Only shards WITH tasks get generators,
            # so no generator can be forced to drain the whole stream.
            with get_tracer().span("rdbms.shard_scan", table=self.table,
                                   shard=shard):
                buf = buffers[shard]
                while True:
                    if buf:
                        yield from buf.popleft()
                        continue
                    try:
                        task, result = next(stream)
                    except StopIteration:
                        return
                    absorb(task, result)

        return heapq.merge(*(shard_rows(s) for s in live),
                           key=lambda r: r["__rid__"])

    def children(self) -> list[_planner.PlanNode]:
        return [self.shard_scan]

    def label(self) -> str:
        pred = _planner.render_predicate(_planner.conjoin(self.conjuncts)) \
            if self.conjuncts else "TRUE"
        return (f"ParallelScan({self.table}, pred={pred}, "
                f"shards={len(self.shards)}/{self.spec.count})")


# ------------------------------------------------------- parallel aggregate


@dataclass
class AggShardTask:
    """One shard's partial-aggregation work."""

    stmt: SelectStatement
    table: str
    shard: int
    units: list[tuple[str, Any]]
    conjuncts: list[Any]
    vector: list[Any]
    fallback: list[Any]


def run_agg_shard(task: AggShardTask) -> dict[str, Any]:
    """Worker: fold one shard into a partial accumulator state."""
    t0 = perf_counter()
    registry = metrics.get_registry()
    surrogate = _planner.SegmentScan(task.table, task.conjuncts,
                                     task.vector, task.fallback)
    agg = _planner.VectorizedAggregate(task.stmt, surrogate)
    prof = _planner.OperatorProfile()
    agg.profile = prof
    state: dict[tuple, list[list[Any]]] = {}
    rows = 0
    for kind, unit in task.units:
        if kind == "rows":
            pred = surrogate._full
            for rid, values in unit:
                r = dict(values)
                r["__rid__"] = rid
                if pred is None or eval_predicate(pred, r):
                    agg._accumulate_row(state, r)
                    rows += 1
            continue
        rows += agg.accumulate_segment(state, unit, registry)
    return {"shard": task.shard, "state": state, "rows": rows,
            "seconds": perf_counter() - t0,
            "scanned": prof.segments_scanned,
            "skipped": prof.segments_skipped}


class ParallelAggregate:
    """Partial per-shard aggregation merged coordinator-side.

    Duck-types :class:`~repro.storage.rdbms.planner.VectorizedAggregate`
    for ``SelectPlan`` (``execute(txn)``, ``profile``, ``render_name``).
    Each live shard folds its rows into a partial accumulator state with
    the exact VectorizedAggregate kernels; the coordinator merges states
    in ascending shard order and finalizes with the shared ``_finalize``
    (same output ordering).  :func:`plan_parallel_aggregate` type-gates
    the statement so merged folds are exact — see there.
    """

    render_name = "ParallelAggregate"

    #: set per-instance by ``SelectPlan.enable_profiling``
    profile: _planner.OperatorProfile | None = None

    def __init__(self, stmt: SelectStatement, source: ParallelScan,
                 inner: "_planner.VectorizedAggregate") -> None:
        self.stmt = stmt
        self.source = source
        self.inner = inner  # accumulation/finalize kernels + item specs

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        source = self.source
        registry = metrics.get_registry()
        pruned = source.spec.count - len(source.shards)
        registry.inc("parallel.shards.scanned", len(source.shards))
        registry.inc("parallel.shards.pruned", pruned)
        if self.profile is not None:
            self.profile.shards_total += source.spec.count
            self.profile.shards_pruned += pruned
        merged: dict[tuple, list[list[Any]]] = {}
        if source.shards:
            units_by_shard = _checked_shard_units(txn, source.table,
                                                  source.spec)
            shard_scan = source.shard_scan
            tasks = []
            total_rows = 0
            for shard in source.shards:
                units, skipped = _preprune_units(units_by_shard[shard],
                                                 source._vector, registry)
                shard_scan.absorb_prepruned(skipped)
                total_rows += sum(u.count if kind == "segment" else len(u)
                                  for kind, u in units)
                if units:
                    tasks.append(AggShardTask(
                        self.stmt, source.table, shard, units,
                        source.conjuncts, source._vector,
                        source._fallback))
            backend = getattr(txn._db, "exec_backend", None)
            if _should_inline(tasks, total_rows):
                backend = None
            for result in _backend_stream(backend, run_agg_shard, tasks):
                shard_scan.absorb(result, new_shard=True, rows_key="rows")
                self._merge_states(merged, result["state"])
        return self.inner._finalize(merged)

    def _merge_states(self, merged: dict, partial: dict) -> None:
        agg_items = self.inner._agg_items
        for key, accs in partial.items():
            dst = merged.get(key)
            if dst is None:
                merged[key] = accs
                continue
            for dacc, sacc, (_, func, _) in zip(dst, accs, agg_items):
                if func == "count":
                    dacc[0] += sacc[0]
                elif func in ("sum", "avg"):
                    dacc[0] += sacc[0]
                    dacc[1] += sacc[1]
                elif sacc[0]:  # min / max, source has a value
                    if not dacc[0]:
                        dacc[0], dacc[1] = True, sacc[1]
                    elif func == "min":
                        if sacc[1] < dacc[1]:
                            dacc[1] = sacc[1]
                    elif sacc[1] > dacc[1]:
                        dacc[1] = sacc[1]


def plan_parallel_aggregate(stmt: SelectStatement, schema: Any,
                            node: ParallelScan) -> ParallelAggregate | None:
    """A :class:`ParallelAggregate` when partial→final merging is exact.

    On top of the vectorized-aggregate gating, the parallel form requires
    order-insensitive folds: FLOAT group keys are out (``-0.0``/NaN key
    objects depend on which shard inserts first), FLOAT SUM/AVG are out
    (float addition is non-associative; the serial fold order is the
    oracle), and FLOAT MIN/MAX are out (NaN comparisons make first-value
    -wins order-dependent).  COUNT takes anything; SUM/AVG over INT/BOOL
    are exact integer arithmetic; MIN/MAX over INT/BOOL/TEXT are total
    orders.  Gated statements return None — the caller keeps the
    ParallelScan as a row source and the serial aggregate replays the
    naive fold over globally rid-ordered rows.
    """
    surrogate = _planner.SegmentScan(node.table, node.conjuncts,
                                     node._vector, node._fallback)
    inner = _planner.plan_vector_aggregate(stmt, schema, surrogate)
    if inner is None:
        return None
    for g in stmt.group_by:
        if schema.column(g.name).col_type == ColumnType.FLOAT:
            return None
    for item in stmt.items:
        expr = item.expr
        if not isinstance(expr, Aggregate) or expr.column is None:
            continue
        if expr.func == "count":
            continue
        col_type = schema.column(expr.column.name).col_type
        if expr.func in ("sum", "avg"):
            if col_type not in (ColumnType.INT, ColumnType.BOOL):
                return None
        elif col_type == ColumnType.FLOAT:  # min / max
            return None
    return ParallelAggregate(stmt, node, inner)


# ------------------------------------------------------------ parallel join


@dataclass
class JoinShardTask:
    """One shard's join work.

    Exactly one of ``left_units``/``left_rows`` is set per side: units
    mean the side fans out (scan this shard's units under the side's
    raw conjuncts), rows mean the side was broadcast (already planned
    and executed coordinator-side).
    """

    left_table: str
    right_table: str
    left_col: str
    right_col: str
    shard: int
    left_units: list[tuple[str, Any]] | None
    left_rows: list[dict[str, Any]] | None
    left_conjuncts: list[Any]
    left_vector: list[Any]
    left_fallback: list[Any]
    right_units: list[tuple[str, Any]] | None
    right_rows: list[dict[str, Any]] | None
    right_conjuncts: list[Any]
    right_vector: list[Any]
    right_fallback: list[Any]


def run_join_shard(task: JoinShardTask) -> dict[str, Any]:
    """Worker: hash-join one shard, output sorted by (left rid, right rid)."""
    t0 = perf_counter()
    registry = metrics.get_registry()
    scanned = skipped = 0
    if task.left_units is not None:
        left_rows, s, k = _scan_units(task.left_units, task.left_conjuncts,
                                      task.left_vector, task.left_fallback,
                                      registry)
        scanned += s
        skipped += k
    else:
        left_rows = task.left_rows or []
    if task.right_units is not None:
        right_rows, s, k = _scan_units(task.right_units,
                                       task.right_conjuncts,
                                       task.right_vector,
                                       task.right_fallback, registry)
        scanned += s
        skipped += k
    else:
        right_rows = task.right_rows or []
    buckets: dict[Any, list[dict[str, Any]]] = {}
    for rrow in right_rows:
        key = rrow.get(task.right_col)
        if key is not None:
            buckets.setdefault(key, []).append(rrow)
    pairs: list[tuple[tuple[int, int], dict[str, Any]]] = []
    for lrow in left_rows:
        key = lrow.get(task.left_col)
        if key is None:
            continue
        for rrow in buckets.get(key, ()):
            pairs.append(
                ((lrow["__rid__"], rrow["__rid__"]),
                 _planner._combine(task.left_table, lrow,
                                   task.right_table, rrow))
            )
    pairs.sort(key=lambda p: p[0])
    return {"shard": task.shard, "pairs": pairs, "rows": len(pairs),
            "left_n": len(left_rows), "right_n": len(right_rows),
            "seconds": perf_counter() - t0,
            "scanned": scanned, "skipped": skipped}


@dataclass
class _JoinSide:
    """Plan-time description of one join input."""

    table: str
    col: str
    conjuncts: list[Any]
    vector: list[Any]
    fallback: list[Any]
    fan: bool  # fans over its shards vs broadcast to every task
    node: _planner.PlanNode | None  # planned node for the broadcast side
    spec: Any = None  # ShardSpec the plan assumed, for fan sides


class ParallelHashJoin(_planner.PlanNode):
    """Equi-join fanned out per shard on the execution backend.

    ``mode='co'``: both inputs are sharded on their join column with
    equal shard counts, so matching keys are guaranteed to live in the
    same shard index (the canonical key encoding folds ``1``/``1.0``/
    ``True`` together exactly like SQL ``=``) and each shard joins
    locally.  ``mode='broadcast'``: only the fan side is partitioned;
    the other side's planned subtree executes once coordinator-side and
    its rows ship to every shard task.  Worker output is sorted by
    (left rid, right rid) and the coordinator heap-merges the per-shard
    lists — byte-identical to :class:`HashJoin`, whose output is always
    in that order regardless of build side.
    """

    def __init__(self, left: _JoinSide, right: _JoinSide, mode: str,
                 spec_count: int, shards: list[int]) -> None:
        self.left = left
        self.right = right
        self.mode = mode  # 'co' | 'broadcast'
        self.spec_count = spec_count
        self.shards = shards
        self.shard_scans = [
            ShardScan(side.table, spec_count, len(shards), side=name)
            for name, side in (("left", left), ("right", right)) if side.fan
        ]

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        registry = metrics.get_registry()
        pruned = self.spec_count - len(self.shards)
        registry.inc("parallel.shards.scanned", len(self.shards))
        registry.inc("parallel.shards.pruned", pruned)
        prof = self.profile
        if prof is not None:
            prof.shards_total += self.spec_count
            prof.shards_pruned += pruned
        if not self.shards:
            return []
        left_units = _checked_shard_units(
            txn, self.left.table, self.left.spec) if self.left.fan else None
        right_units = _checked_shard_units(
            txn, self.right.table, self.right.spec) if self.right.fan else None
        left_rows = self.left.node.execute(txn) \
            if not self.left.fan else None
        right_rows = self.right.node.execute(txn) \
            if not self.right.fan else None
        fan_scans = iter(self.shard_scans)
        left_scan = next(fan_scans) if self.left.fan else None
        right_scan = next(fan_scans) if self.right.fan else None
        tasks = []
        for shard in self.shards:
            lu = ru = None
            if left_units is not None:
                lu, skipped = _preprune_units(left_units[shard],
                                              self.left.vector, registry)
                left_scan.absorb_prepruned(skipped)
            if right_units is not None:
                ru, skipped = _preprune_units(right_units[shard],
                                              self.right.vector, registry)
                right_scan.absorb_prepruned(skipped)
            if (lu is not None and not lu) or (ru is not None and not ru):
                continue  # an empty fanned side joins to nothing
            tasks.append(JoinShardTask(
                self.left.table, self.right.table, self.left.col,
                self.right.col, shard,
                lu, left_rows, self.left.conjuncts, self.left.vector,
                self.left.fallback,
                ru, right_rows, self.right.conjuncts, self.right.vector,
                self.right.fallback))
        backend = getattr(txn._db, "exec_backend", None)
        if len(tasks) == 1:  # one shard task: nothing to parallelize
            backend = None
        fan_keys = [key for key, side in (("left_n", self.left),
                                          ("right_n", self.right))
                    if side.fan]  # same order as self.shard_scans
        shard_lists: list[list[tuple[tuple[int, int], dict[str, Any]]]] = []
        for result in _backend_stream(backend, run_join_shard, tasks):
            for scan, key in zip(self.shard_scans, fan_keys):
                scan.absorb(result, new_shard=True, rows_key=key)
            shard_lists.append(result["pairs"])
        merged = heapq.merge(*shard_lists, key=lambda p: p[0])
        return [row for _, row in merged]

    def children(self) -> list[_planner.PlanNode]:
        out: list[_planner.PlanNode] = list(self.shard_scans)
        for side in (self.left, self.right):
            if side.node is not None and not side.fan:
                out.append(side.node)
        return out

    def label(self) -> str:
        if self.mode == "co":
            detail = "co-partitioned"
        else:
            fan = "left" if self.left.fan else "right"
            detail = f"broadcast={'right' if fan == 'left' else 'left'}"
        return (f"ParallelHashJoin({self.left.table}.{self.left.col} = "
                f"{self.right.table}.{self.right.col}, {detail}, "
                f"shards={len(self.shards)}/{self.spec_count})")


def plan_parallel_join(planner: "_planner.Planner", stmt: SelectStatement,
                       left_table: str, right_table: str,
                       left_col: str, right_col: str,
                       left_conjuncts: list[Any],
                       right_conjuncts: list[Any],
                       left_node: _planner.PlanNode,
                       right_node: _planner.PlanNode,
                       left_est: float, right_est: float,
                       hash_join: _planner.PlanNode) \
        -> ParallelHashJoin | None:
    """A :class:`ParallelHashJoin` when at least one input is sharded and
    the database carries a backend; None keeps the serial HashJoin."""
    db = planner._db
    if getattr(db, "exec_backend", None) is None:
        return None
    lspec = db._table(left_table).shard_spec
    rspec = db._table(right_table).shard_spec
    lschema = db._table(left_table).schema
    rschema = db._table(right_table).schema

    def side(table, col, conjuncts, schema, fan, node, spec):
        vector, fallback = _planner._split_vectorizable(
            conjuncts, schema, table)
        return _JoinSide(table, col, list(conjuncts), vector, fallback,
                         fan, None if fan else node,
                         spec if fan else None)

    co = (lspec is not None and rspec is not None
          and lspec.count == rspec.count and lspec.count > 1
          and lspec.key == left_col and rspec.key == right_col)
    if co:
        shards = sorted(
            set(allowed_shards(left_conjuncts, lspec, left_table))
            & set(allowed_shards(right_conjuncts, rspec, right_table)))
        node = ParallelHashJoin(
            side(left_table, left_col, left_conjuncts, lschema, True, None,
                 lspec),
            side(right_table, right_col, right_conjuncts, rschema, True,
                 None, rspec),
            "co", lspec.count, shards)
    else:
        # Broadcast: fan over a sharded side; when both are sharded but
        # not co-partitioned, broadcast the statistics-smaller side.
        left_ok = lspec is not None and lspec.count > 1
        right_ok = rspec is not None and rspec.count > 1
        if left_ok and right_ok:
            fan_left = left_est >= right_est
        elif left_ok or right_ok:
            fan_left = left_ok
        else:
            return None
        if fan_left:
            spec = lspec
            shards = allowed_shards(left_conjuncts, lspec, left_table)
        else:
            spec = rspec
            shards = allowed_shards(right_conjuncts, rspec, right_table)
        node = ParallelHashJoin(
            side(left_table, left_col, left_conjuncts, lschema,
                 fan_left, left_node, lspec),
            side(right_table, right_col, right_conjuncts, rschema,
                 not fan_left, right_node, rspec),
            "broadcast", spec.count, shards)
    node.est_rows = hash_join.est_rows
    node.cost = hash_join.cost
    for scan in node.shard_scans:
        scan.est_rows = node.est_rows
    return node
