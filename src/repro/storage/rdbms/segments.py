"""Columnar segments: the cold/immutable layout of heap tables (DESIGN.md §12).

The paper argues the *system* should pick the physical representation for
each piece of data; Impliance (PAPERS.md) extends that to an appliance-
managed storage hierarchy.  This module is that decision applied to the
relational store's own rows: committed heap rows can be *frozen* into
immutable column segments —

* INT/FLOAT/BOOL columns become typed ``array`` buffers (``'q'``/``'d'``/
  ``'b'``), falling back to a plain-list ``raw`` encoding when a value
  does not fit (e.g. an int beyond 64 bits);
* TEXT columns are dictionary-encoded (first-occurrence code order), with
  a ``raw`` fallback when the dictionary would exceed ``dict_max``;
* NULLs live in a packed per-column bitmap plus a placeholder slot, so
  the typed buffer stays rectangular;
* every column carries a **zone map** — min/max/count/null count — that
  lets scans skip whole segments and feeds the statistics module.

Segments are purely a layout change: :meth:`Segment.iter_rows` decodes
byte-identical ``(rid, values)`` pairs, and the heap table merges
segments with its row-store tail so readers never observe the split.
The vectorized executor in :mod:`repro.storage.rdbms.planner` is the
consumer that makes the layout pay off.
"""

from __future__ import annotations

import bisect
from array import array
from typing import Any, Iterator

from repro.storage.rdbms.types import ColumnType, TableSchema

#: Rows per segment produced by compaction (the vectorized executor's
#: working-set unit; also the zone-map granularity).
SEGMENT_TARGET_ROWS = 65_536

#: Dictionary entries per TEXT column before falling back to ``raw``.
DICT_MAX_ENTRIES = 4_096

#: Smallest int that still fits ``array('q')`` (and the largest + 1).
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class ColumnSegment:
    """One column of one segment: typed buffer + null bitmap + zone map.

    Attributes:
        name: column name.
        encoding: ``int`` | ``float`` | ``bool`` | ``dict`` | ``raw``.
        data: the typed buffer — an ``array`` for numeric encodings, an
            ``array`` of dictionary codes for ``dict`` (``-1`` = NULL),
            a plain list (with ``None`` entries) for ``raw``.
        dictionary: code → string list (``dict`` encoding only).
        nulls: packed null bitmap (``None`` when the column has no NULLs).
        null_count / count / min_value / max_value: the zone map.
    """

    __slots__ = ("name", "encoding", "data", "dictionary", "nulls",
                 "null_count", "count", "min_value", "max_value")

    def __init__(self, name: str, encoding: str, data: Any,
                 dictionary: list[str] | None, nulls: bytearray | None,
                 null_count: int, count: int,
                 min_value: Any, max_value: Any) -> None:
        self.name = name
        self.encoding = encoding
        self.data = data
        self.dictionary = dictionary
        self.nulls = nulls
        self.null_count = null_count
        self.count = count
        self.min_value = min_value
        self.max_value = max_value

    # ------------------------------------------------------------ encoding

    @staticmethod
    def encode(name: str, col_type: ColumnType, values: list[Any],
               dict_max: int = DICT_MAX_ENTRIES) -> "ColumnSegment":
        """Pick and apply the best encoding for ``values``.

        ``values`` must already be schema-validated (correct python types
        or ``None``); encoding never changes a value, only its layout.
        """
        count = len(values)
        nulls: bytearray | None = None
        null_count = 0
        for i, v in enumerate(values):
            if v is None:
                if nulls is None:
                    nulls = bytearray((count + 7) // 8)
                nulls[i >> 3] |= 1 << (i & 7)
                null_count += 1
        non_null = [v for v in values if v is not None]
        min_value = min(non_null) if non_null else None
        max_value = max(non_null) if non_null else None

        def raw() -> "ColumnSegment":
            return ColumnSegment(name, "raw", list(values), None, nulls,
                                 null_count, count, min_value, max_value)

        if col_type is ColumnType.INT:
            if any(not (_INT64_MIN <= v <= _INT64_MAX) for v in non_null):
                return raw()
            data = array("q", (0 if v is None else v for v in values))
            return ColumnSegment(name, "int", data, None, nulls,
                                 null_count, count, min_value, max_value)
        if col_type is ColumnType.FLOAT:
            if any(v != v for v in non_null):
                # NaN poisons min()/max(); publish no bounds rather than
                # bounds a zone-map prune could wrongly trust.
                min_value = max_value = None
            data = array("d", (0.0 if v is None else v for v in values))
            return ColumnSegment(name, "float", data, None, nulls,
                                 null_count, count, min_value, max_value)
        if col_type is ColumnType.BOOL:
            data = array("b", (0 if not v else 1 for v in values))
            return ColumnSegment(name, "bool", data, None, nulls,
                                 null_count, count, min_value, max_value)
        if col_type is ColumnType.TEXT:
            codes_by_value: dict[str, int] = {}
            codes = array("i")
            for v in values:
                if v is None:
                    codes.append(-1)
                    continue
                code = codes_by_value.get(v)
                if code is None:
                    if len(codes_by_value) >= dict_max:
                        return raw()  # dictionary overflow
                    code = len(codes_by_value)
                    codes_by_value[v] = code
                codes.append(code)
            dictionary = list(codes_by_value)
            return ColumnSegment(name, "dict", codes, dictionary, nulls,
                                 null_count, count, min_value, max_value)
        return raw()

    # ------------------------------------------------------------ decoding

    def is_null(self, i: int) -> bool:
        return self.nulls is not None and bool(self.nulls[i >> 3] & (1 << (i & 7)))

    def value_at(self, i: int) -> Any:
        """The decoded python value at position ``i``."""
        if self.is_null(i):
            return None
        if self.encoding == "dict":
            return self.dictionary[self.data[i]]
        if self.encoding == "bool":
            return bool(self.data[i])
        return self.data[i]

    def decoded(self) -> list[Any]:
        """The whole column as properly-typed python values (with Nones)."""
        if self.encoding in ("int", "float") and self.null_count == 0:
            return list(self.data)
        if self.encoding == "raw":
            return list(self.data)
        return [self.value_at(i) for i in range(self.count)]

    def null_flags(self) -> list[bool] | None:
        """Per-position null flags, or None when the column has no NULLs."""
        if self.null_count == 0:
            return None
        nulls = self.nulls
        assert nulls is not None
        return [bool(nulls[i >> 3] & (1 << (i & 7))) for i in range(self.count)]

    def zone_map(self) -> dict[str, Any]:
        """The per-segment statistics summary for this column."""
        return {
            "min": self.min_value,
            "max": self.max_value,
            "count": self.count,
            "null_count": self.null_count,
        }


class Segment:
    """An immutable, rid-sorted slice of a table in columnar layout.

    ``shard`` tags segments of sharded tables (DESIGN.md §14): a sharded
    table's segments hold rows of exactly one shard, so parallel plans can
    hand whole segments to per-shard worker tasks without re-routing rows.
    ``None`` means the table was unsharded when the segment was frozen.
    """

    __slots__ = ("schema", "rids", "columns", "count", "shard")

    def __init__(self, schema: TableSchema, rids: array,
                 columns: dict[str, ColumnSegment],
                 shard: int | None = None) -> None:
        self.schema = schema
        self.rids = rids  # array('q'), ascending
        self.columns = columns
        self.count = len(rids)
        self.shard = shard

    @staticmethod
    def from_rows(schema: TableSchema,
                  items: list[tuple[int, dict[str, Any]]],
                  dict_max: int = DICT_MAX_ENTRIES,
                  shard: int | None = None) -> "Segment":
        """Freeze ``(rid, values)`` pairs into a segment (rid-sorted)."""
        items = sorted(items, key=lambda kv: kv[0])
        rids = array("q", (rid for rid, _ in items))
        columns: dict[str, ColumnSegment] = {}
        for col in schema.columns:
            values = [values_dict.get(col.name) for _, values_dict in items]
            columns[col.name] = ColumnSegment.encode(
                col.name, col.col_type, values, dict_max=dict_max)
        return Segment(schema, rids, columns, shard=shard)

    # -------------------------------------------------------------- access

    @property
    def min_rid(self) -> int:
        return self.rids[0] if self.count else -1

    @property
    def max_rid(self) -> int:
        return self.rids[-1] if self.count else -1

    def column(self, name: str) -> ColumnSegment | None:
        return self.columns.get(name)

    def rid_position(self, rid: int) -> int | None:
        """Position of ``rid`` in this segment, or None."""
        pos = bisect.bisect_left(self.rids, rid)
        if pos < self.count and self.rids[pos] == rid:
            return pos
        return None

    def row_values(self, pos: int) -> dict[str, Any]:
        """Decode one row (schema column order, same as the heap table)."""
        return {col.name: self.columns[col.name].value_at(pos)
                for col in self.schema.columns}

    def iter_rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Decode every row in rid order — the melt/scan path."""
        decoded = [(col.name, self.columns[col.name].decoded())
                   for col in self.schema.columns]
        for pos, rid in enumerate(self.rids):
            yield rid, {name: values[pos] for name, values in decoded}

    def column_values(self, name: str) -> list[Any]:
        """All decoded values of one column (for ANALYZE sampling)."""
        col = self.columns.get(name)
        return col.decoded() if col is not None else [None] * self.count

    def zone_maps(self) -> dict[str, dict[str, Any]]:
        """Column name → zone map, validated by the reopen regression."""
        return {name: col.zone_map() for name, col in self.columns.items()}
