"""Cost-based physical planner for the SQL serving path (DESIGN.md §11).

The naive interpreter in :mod:`repro.storage.rdbms.sql` materializes the
full join of both tables before applying WHERE and only exploits an index
for one top-level equality.  This module plans a *physical* tree instead:

* access paths — :class:`IndexLookup` (any equality conjunct of the AND
  with an index), :class:`RangeScan` (``<``/``<=``/``>``/``>=`` bounds
  over a sorted index), :class:`SegmentScan` (vectorized columnar scan
  over a compacted table: zone maps skip whole segments, AND-conjuncts
  evaluate column-at-a-time as selection bitmaps), :class:`FullScan`;
* joins — :class:`HashJoin` with statistics-driven build-side selection,
  :class:`IndexNestedLoopJoin` when a join column is indexed and the
  other side is small;
* predicate pushdown — WHERE conjuncts split per join side and applied
  *before* the join, with a residual :class:`Filter` on top;
* a selectivity-based cost model fed by
  :class:`~repro.storage.rdbms.stats.StatisticsManager`.

On top of the access paths sits :class:`VectorizedAggregate` — when a
single-table aggregate query's source is a SegmentScan, COUNT/SUM/AVG/
MIN/MAX and GROUP BY run directly over the column buffers without ever
materializing row dicts (float sums carry the running accumulator across
segment boundaries so the addition chain is bit-identical to the naive
left-to-right fold).

Every operator preserves the naive interpreter's row *order* (rid order
for scans, left-rid-major for joins), so planner output is row-identical
to the naive path — the E19/E20 benches and the differential property
tests gate exactly that.
"""

from __future__ import annotations

import math
import operator
from operator import itemgetter
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.storage.rdbms.engine import Database, Transaction
from repro.storage.rdbms.index import HashIndex, SortedIndex
from repro.storage.rdbms.segments import ColumnSegment, Segment
from repro.storage.rdbms.stats import MIN_SELECTIVITY
from repro.storage.rdbms.sql import (
    Aggregate,
    BoolOp,
    ColumnRef,
    Comparison,
    InPredicate,
    LikePredicate,
    Literal,
    NullPredicate,
    SelectStatement,
    SqlError,
    _like_to_regex,
    eval_predicate,
)
from repro.storage.rdbms.types import ColumnType
from repro.telemetry import metrics

#: Fixed per-probe overhead charged to index operations, so a lookup is
#: never free and a full scan wins on tiny tables.
_PROBE_COST = 1.0

#: Per-row cost of reading a frozen row column-at-a-time, relative to a
#: heap-row read (typed buffers, no per-row dict build).
_COLUMNAR_DISCOUNT = 0.15


# --------------------------------------------------------- conjunct algebra


def split_conjuncts(node: Any) -> list[Any]:
    """Flatten a predicate's top-level AND tree into its conjuncts."""
    if node is None:
        return []
    if isinstance(node, BoolOp) and node.op == "and":
        out: list[Any] = []
        for operand in node.operands:
            out.extend(split_conjuncts(operand))
        return out
    return [node]


def conjoin(conjuncts: list[Any]) -> Any:
    """Rebuild a predicate from conjuncts (None / single / AND)."""
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return BoolOp("and", tuple(conjuncts))


def column_refs(node: Any) -> list[ColumnRef]:
    """Every column reference appearing anywhere in a predicate."""
    if isinstance(node, ColumnRef):
        return [node]
    if isinstance(node, Comparison):
        return column_refs(node.left) + column_refs(node.right)
    if isinstance(node, (LikePredicate, NullPredicate, InPredicate)):
        return [node.column]
    if isinstance(node, BoolOp):
        out: list[ColumnRef] = []
        for operand in node.operands:
            out.extend(column_refs(operand))
        return out
    return []


def _eq_conjunct(node: Any) -> tuple[ColumnRef, Any] | None:
    """``col = literal`` (either orientation) → (ref, value), else None."""
    if isinstance(node, Comparison) and node.op == "=":
        if isinstance(node.left, ColumnRef) and isinstance(node.right, Literal):
            return node.left, node.right.value
        if isinstance(node.right, ColumnRef) and isinstance(node.left, Literal):
            return node.right, node.left.value
    return None

_FLIPPED_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _range_conjunct(node: Any) -> tuple[ColumnRef, str, Any] | None:
    """``col <op> literal`` for an ordering op → (ref, op, value)."""
    if not isinstance(node, Comparison) or node.op not in _FLIPPED_OP:
        return None
    if isinstance(node.left, ColumnRef) and isinstance(node.right, Literal):
        return node.left, node.op, node.right.value
    if isinstance(node.right, ColumnRef) and isinstance(node.left, Literal):
        return node.right, _FLIPPED_OP[node.op], node.left.value
    return None


def _remove(conjuncts: list[Any], consumed: list[Any]) -> list[Any]:
    """Conjuncts minus the consumed *instances* (identity, not equality)."""
    return [c for c in conjuncts if not any(c is used for used in consumed)]


# ------------------------------------------------------ vectorized kernels

_COMPARE_FN = {
    "=": operator.eq, "!=": operator.ne, "<": operator.lt,
    "<=": operator.le, ">": operator.gt, ">=": operator.ge,
}


def _normalized_comparison(conjunct: Any) -> tuple[ColumnRef, str, Any] | None:
    """``col <op> literal`` in either orientation → (ref, op, literal)."""
    if not isinstance(conjunct, Comparison) or conjunct.op not in _COMPARE_FN:
        return None
    if isinstance(conjunct.left, ColumnRef) and isinstance(conjunct.right, Literal):
        return conjunct.left, conjunct.op, conjunct.right.value
    if isinstance(conjunct.right, ColumnRef) and isinstance(conjunct.left, Literal):
        op = _FLIPPED_OP.get(conjunct.op, conjunct.op)
        return conjunct.right, op, conjunct.left.value
    return None


def _conjunct_column(conjunct: Any) -> ColumnRef | None:
    """The single column a conjunct tests against constants, or None when
    the conjunct cannot run as a column kernel (NOT/OR, col-col, ...)."""
    cmp = _normalized_comparison(conjunct)
    if cmp is not None:
        return cmp[0]
    if isinstance(conjunct, (LikePredicate, NullPredicate, InPredicate)):
        return conjunct.column
    return None


def _split_vectorizable(conjuncts: list[Any], schema: Any,
                        table: str) -> tuple[list[Any], list[Any]]:
    """Partition conjuncts into (column kernels, row-fallback)."""
    vector: list[Any] = []
    fallback: list[Any] = []
    for conjunct in conjuncts:
        ref = _conjunct_column(conjunct)
        if ref is not None and ref.table in (None, table) \
                and schema.has_column(ref.name):
            vector.append(conjunct)
        else:
            fallback.append(conjunct)
    return vector, fallback


def _zone_map_prunes(segment: Segment, conjunct: Any) -> bool:
    """True when the zone map proves NO row of the segment satisfies the
    conjunct (conservative: unknown → False, never skip wrongly)."""
    cmp = _normalized_comparison(conjunct)
    if cmp is not None:
        ref, op, lit = cmp
        if lit is None:
            return True  # comparisons with NULL are false for every row
        col = segment.columns.get(ref.name)
        if col is None or col.count == 0:
            return False
        if col.null_count == col.count:
            return True  # only NULLs: every comparison is false
        lo, hi = col.min_value, col.max_value
        if lo is None or hi is None:
            return False  # no usable bounds (e.g. NaN-poisoned floats)
        try:
            if op == "=":
                if col.encoding == "dict" and lit not in col.dictionary:
                    return True
                return bool(lit < lo or lit > hi)
            if op == "!=":
                return bool(lo == lit and hi == lit)
            if op == "<":
                return not lo < lit
            if op == "<=":
                return not lo <= lit
            if op == ">":
                return not hi > lit
            if op == ">=":
                return not hi >= lit
        except TypeError:
            return False
    if isinstance(conjunct, NullPredicate):
        col = segment.columns.get(conjunct.column.name)
        if col is None:
            return False
        if conjunct.negated:  # IS NOT NULL
            return col.null_count == col.count
        return col.null_count == 0
    if isinstance(conjunct, InPredicate) and not conjunct.negated:
        if not conjunct.values:
            return True
        col = segment.columns.get(conjunct.column.name)
        if col is None or col.count == 0:
            return False
        if col.null_count and None in conjunct.values:
            return False  # NULL rows match ``IN (..., NULL)`` here
        lo, hi = col.min_value, col.max_value
        if lo is None or hi is None:
            return col.null_count == col.count
        try:
            return all(bool(v < lo or v > hi) for v in conjunct.values
                       if v is not None)
        except TypeError:
            return False
    return False


def _conjunct_bitmap(segment: Segment, conjunct: Any) -> list[bool]:
    """Selection bitmap of one kernel conjunct over one segment.

    Matches :func:`repro.storage.rdbms.sql.eval_predicate` exactly on
    every position.  May raise TypeError on incomparable operands — the
    caller falls back to row-at-a-time evaluation for the segment, which
    reproduces the naive error surface.
    """
    cmp = _normalized_comparison(conjunct)
    if cmp is not None:
        ref, op, lit = cmp
        col = segment.columns[ref.name]
        fn = _COMPARE_FN[op]
        if lit is None:
            return [False] * col.count
        if col.encoding == "dict":
            matches = [fn(entry, lit) for entry in col.dictionary]
            return [code >= 0 and matches[code] for code in col.data]
        if col.encoding == "raw":
            return [v is not None and fn(v, lit) for v in col.data]
        flags = col.null_flags()
        if flags is None:
            return [fn(v, lit) for v in col.data]
        data = col.data
        return [not flags[i] and fn(data[i], lit) for i in range(col.count)]
    if isinstance(conjunct, NullPredicate):
        col = segment.columns[conjunct.column.name]
        flags = col.null_flags()
        if flags is None:
            return [conjunct.negated] * col.count
        if conjunct.negated:
            return [not f for f in flags]
        return flags
    if isinstance(conjunct, LikePredicate):
        col = segment.columns[conjunct.column.name]
        negated = conjunct.negated
        if col.encoding == "dict":
            regex = _like_to_regex(conjunct.pattern)
            matches = [bool(regex.match(entry)) != negated
                       for entry in col.dictionary]
            return [matches[code] if code >= 0 else negated
                    for code in col.data]
        if col.encoding == "raw":
            regex = _like_to_regex(conjunct.pattern)
            return [(bool(regex.match(v)) != negated) if isinstance(v, str)
                    else negated for v in col.data]
        # Typed numeric/bool buffers never hold strings: LIKE on a
        # non-string value evaluates to the negation flag, NULL included.
        return [negated] * col.count
    if isinstance(conjunct, InPredicate):
        col = segment.columns[conjunct.column.name]
        values = conjunct.values
        negated = conjunct.negated
        null_result = (None in values) != negated
        if col.encoding == "dict":
            matches = [(entry in values) != negated for entry in col.dictionary]
            return [matches[code] if code >= 0 else null_result
                    for code in col.data]
        if col.encoding == "raw":
            return [(v in values) != negated for v in col.data]
        flags = col.null_flags()
        if flags is None:
            return [(v in values) != negated for v in col.data]
        data = col.data
        return [null_result if flags[i] else (data[i] in values) != negated
                for i in range(col.count)]
    raise SqlError(f"cannot vectorize conjunct {conjunct!r}")


# ------------------------------------------------------ predicate rendering


def _render_operand(operand: Any) -> str:
    if isinstance(operand, ColumnRef):
        return operand.key()
    if isinstance(operand, Literal):
        value = operand.value
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        return str(value)
    return repr(operand)


def render_predicate(node: Any) -> str:
    """SQL-ish text for a predicate AST (used by EXPLAIN output)."""
    if node is None:
        return "TRUE"
    if isinstance(node, Comparison):
        return (f"{_render_operand(node.left)} {node.op} "
                f"{_render_operand(node.right)}")
    if isinstance(node, LikePredicate):
        keyword = "NOT LIKE" if node.negated else "LIKE"
        pattern = node.pattern.replace("'", "''")
        return f"{node.column.key()} {keyword} '{pattern}'"
    if isinstance(node, NullPredicate):
        return f"{node.column.key()} IS {'NOT ' if node.negated else ''}NULL"
    if isinstance(node, InPredicate):
        keyword = "NOT IN" if node.negated else "IN"
        values = ", ".join(_render_operand(Literal(v)) for v in node.values)
        return f"{node.column.key()} {keyword} ({values})"
    if isinstance(node, BoolOp):
        if node.op == "not":
            return f"NOT ({render_predicate(node.operands[0])})"
        parts = [
            f"({render_predicate(op)})" if isinstance(op, BoolOp)
            else render_predicate(op)
            for op in node.operands
        ]
        return f" {node.op.upper()} ".join(parts)
    return repr(node)


# ------------------------------------------------------ operator profiling


class OperatorProfile:
    """Per-operator actuals collected under ``EXPLAIN ANALYZE``.

    Blocking operators (index probes, joins, aggregates) record one
    exact ``perf_counter`` pair around ``execute``; streaming operators
    (scans, filters) count every row exactly but time only every 16th
    ``next()`` and scale, so ANALYZE stays cheap on million-row flows.
    Times are inclusive of children, like the estimates they sit next to.
    """

    __slots__ = ("rows", "loops", "seconds", "sample_seconds", "sample_rows",
                 "segments_scanned", "segments_skipped", "index_probes",
                 "shards_total", "shards_pruned")

    def __init__(self) -> None:
        self.rows = 0
        self.loops = 0
        self.seconds = 0.0
        self.sample_seconds = 0.0
        self.sample_rows = 0
        self.segments_scanned = 0
        self.segments_skipped = 0
        self.index_probes = 0
        self.shards_total = 0
        self.shards_pruned = 0

    def actual_seconds(self) -> float:
        """Wall time: exact when timed whole, scaled when sampled."""
        if self.seconds:
            return self.seconds
        if self.sample_rows:
            return self.sample_seconds * (self.rows / self.sample_rows)
        return self.sample_seconds

    def describe(self) -> str:
        if self.loops == 0 and self.rows == 0 and self.seconds == 0.0:
            return "never executed"
        parts = [f"actual rows={self.rows}", f"loops={self.loops}",
                 f"time={self.actual_seconds() * 1000.0:.2f}ms"]
        if self.index_probes:
            parts.append(f"probes={self.index_probes}")
        if self.segments_scanned or self.segments_skipped:
            parts.append(f"segments={self.segments_scanned} "
                         f"pruned={self.segments_skipped}")
        if self.shards_total:
            parts.append(
                f"shards={self.shards_total - self.shards_pruned}"
                f"/{self.shards_total} pruned={self.shards_pruned}")
        return " ".join(parts)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rows": self.rows,
            "loops": self.loops,
            "seconds": self.actual_seconds(),
            "segments_scanned": self.segments_scanned,
            "segments_skipped": self.segments_skipped,
            "index_probes": self.index_probes,
            "shards_total": self.shards_total,
            "shards_pruned": self.shards_pruned,
        }


def _profiled_rows(inner: Callable[..., Iterator[dict[str, Any]]],
                   prof: OperatorProfile) -> Callable[..., Iterator[dict[str, Any]]]:
    """Wrap a streaming ``rows`` method: exact row counts, sampled timing."""

    def rows(txn: Transaction) -> Iterator[dict[str, Any]]:
        prof.loops += 1
        it = iter(inner(txn))
        timer = perf_counter
        while True:
            if prof.sample_rows * 16 <= prof.rows:
                t0 = timer()
                try:
                    row = next(it)
                except StopIteration:
                    prof.sample_seconds += timer() - t0
                    return
                prof.sample_seconds += timer() - t0
                prof.sample_rows += 1
            else:
                try:
                    row = next(it)
                except StopIteration:
                    return
            prof.rows += 1
            yield row

    return rows


def _profiled_execute(inner: Callable[..., list],
                      prof: OperatorProfile) -> Callable[..., list]:
    """Wrap a blocking ``execute`` method with one exact timer pair."""

    def execute(txn: Transaction) -> list:
        prof.loops += 1
        t0 = perf_counter()
        out = inner(txn)
        prof.seconds += perf_counter() - t0
        prof.rows += len(out)
        return out

    return execute


def attach_profiles(node: "PlanNode") -> None:
    """Instrument a plan subtree in place for EXPLAIN ANALYZE.

    Profiling wrappers are installed as *instance* attributes shadowing
    the class methods, so un-analyzed plans carry zero instrumentation —
    not even an if-check — on the hot path.  Streaming operators wrap
    ``rows`` (their ``execute`` delegates to it); blocking operators
    wrap ``execute`` (their default ``rows`` delegates back).
    """
    prof = OperatorProfile()
    node.profile = prof
    if node.profiled_manual:
        # The operator fills its own profile (e.g. ShardScan actuals are
        # summed from per-shard worker stats by the coordinator): no
        # wrapper — a fully pruned node keeps an untouched profile, which
        # describe() renders as "never executed".
        pass
    elif node.profiled_streaming:
        node.rows = _profiled_rows(node.rows, prof)  # type: ignore[method-assign]
    else:
        node.execute = _profiled_execute(node.execute, prof)  # type: ignore[method-assign]
    for child in node.children():
        attach_profiles(child)


# --------------------------------------------------------- physical plan


class PlanNode:
    """A physical operator: ``execute(txn)`` returns row dicts (each
    carrying ``__rid__``), ``rows(txn)`` the same rows as a (possibly
    lazy) iterator, ``render()`` the EXPLAIN subtree."""

    est_rows: float = 0.0
    cost: float = 0.0
    #: set per-instance by :func:`attach_profiles` under EXPLAIN ANALYZE
    profile: OperatorProfile | None = None
    #: class flags steering :func:`attach_profiles`: streaming operators
    #: wrap ``rows`` (sampled timing); manual operators fill their own
    #: profile (per-shard worker actuals); everything else wraps
    #: ``execute``.  Class attributes so operators defined in other
    #: modules (parallel.py) opt in without an isinstance list here.
    profiled_streaming: bool = False
    profiled_manual: bool = False

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        raise NotImplementedError

    def rows(self, txn: Transaction) -> Iterator[dict[str, Any]]:
        """Iterator over the operator's rows.  Scans and filters stream
        (nothing materialized until consumed); blocking operators fall
        back to iterating their materialized output."""
        return iter(self.execute(txn))

    def children(self) -> list["PlanNode"]:
        return []

    def label(self) -> str:
        raise NotImplementedError

    def render(self, indent: int = 0) -> list[str]:
        text = (f"{self.label()}  [rows~{max(round(self.est_rows), 0)} "
                f"cost~{max(round(self.cost), 0)}]")
        if self.profile is not None:
            text += f"  ({self.profile.describe()})"
        lines = ["  " * indent + text]
        for child in self.children():
            lines.extend(child.render(indent + 1))
        return lines


def _row_dict(row) -> dict[str, Any]:
    values = dict(row.values)
    values["__rid__"] = row.rid
    return values


class FullScan(PlanNode):
    """Read every row of a heap table (rid order), streaming."""

    profiled_streaming = True

    def __init__(self, table: str) -> None:
        self.table = table

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        return list(self.rows(txn))

    def rows(self, txn: Transaction) -> Iterator[dict[str, Any]]:
        return (_row_dict(r) for r in txn.scan_iter(self.table))

    def label(self) -> str:
        return f"FullScan({self.table})"


class IndexLookup(PlanNode):
    """Equality probe of a secondary index (rows come back in rid order)."""

    def __init__(self, table: str, column: str, value: Any,
                 kind: str) -> None:
        self.table = table
        self.column = column
        self.value = value
        self.kind = kind

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        return [_row_dict(r)
                for r in txn.lookup(self.table, self.column, self.value)]

    def label(self) -> str:
        rendered = _render_operand(Literal(self.value))
        return (f"IndexLookup({self.table}.{self.column} = {rendered} "
                f"via {self.kind} index)")


class RangeScan(PlanNode):
    """Bounded scan of a sorted index; rows re-sorted to rid order so the
    output order matches a filtered full scan exactly."""

    def __init__(self, table: str, column: str, low: Any, high: Any,
                 include_low: bool, include_high: bool) -> None:
        self.table = table
        self.column = column
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        try:
            rows = txn.range_lookup(self.table, self.column, self.low,
                                    self.high, self.include_low,
                                    self.include_high)
        except TypeError as exc:
            # Same surface as the naive evaluator comparing incomparable
            # operands row by row.
            raise SqlError(
                f"type error in range scan on {self.table}.{self.column}"
            ) from exc
        return [_row_dict(r) for r in rows]

    def label(self) -> str:
        lo = "(-inf" if self.low is None else \
            ("[" if self.include_low else "(") + _render_operand(Literal(self.low))
        hi = "+inf)" if self.high is None else \
            _render_operand(Literal(self.high)) + ("]" if self.include_high else ")")
        return (f"RangeScan({self.table}.{self.column} in {lo}, {hi} "
                f"via sorted index)")


class SegmentScan(PlanNode):
    """Columnar scan of a compacted table: the full WHERE is evaluated by
    this node (no residual filter), rows stream out in rid order.

    Per segment: zone maps first (a conjunct the whole segment provably
    fails skips it without touching data), then every kernel conjunct
    becomes a selection bitmap evaluated column-at-a-time (dictionary
    predicates evaluate once per distinct string), bitmaps AND together,
    and only surviving positions decode to row dicts.  Non-kernel
    conjuncts (NOT/OR, column-to-column) run row-at-a-time on survivors;
    tail rows run through the ordinary row evaluator.
    """

    profiled_streaming = True

    def __init__(self, table: str, conjuncts: list[Any],
                 vector_conjuncts: list[Any],
                 fallback_conjuncts: list[Any]) -> None:
        self.table = table
        self.conjuncts = conjuncts
        self._vector = vector_conjuncts
        self._fallback = conjoin(fallback_conjuncts)
        self._full = conjoin(conjuncts)

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        return list(self.rows(txn))

    def rows(self, txn: Transaction) -> Iterator[dict[str, Any]]:
        registry = metrics.get_registry()
        for kind, unit in txn.scan_units(self.table):
            if kind == "rows":
                for row in unit:
                    r = _row_dict(row)
                    if self._full is None or eval_predicate(self._full, r):
                        yield r
                continue
            yield from self._segment_rows(unit, registry)

    def _segment_rows(self, segment: Segment,
                      registry) -> Iterator[dict[str, Any]]:
        if segment.count == 0:
            return
        prof = self.profile
        if any(_zone_map_prunes(segment, c) for c in self._vector):
            registry.inc("segments.skipped")
            if prof is not None:
                prof.segments_skipped += 1
            return
        registry.inc("segments.scanned")
        if prof is not None:
            prof.segments_scanned += 1
        selected = _segment_selection(segment, self._vector)
        if selected is None:  # incomparable operands: naive error surface
            for rid, values in segment.iter_rows():
                values["__rid__"] = rid
                if self._full is None or eval_predicate(self._full, values):
                    yield values
            return
        if self._fallback is not None:
            for pos in selected:
                values = segment.row_values(pos)
                values["__rid__"] = segment.rids[pos]
                if eval_predicate(self._fallback, values):
                    yield values
            return
        if len(selected) * 4 >= segment.count:
            # Dense survivors: decode whole columns once, not per row.
            decoded = [(col.name, segment.columns[col.name].decoded())
                       for col in segment.schema.columns]
            rids = segment.rids
            for pos in selected:
                values = {name: column[pos] for name, column in decoded}
                values["__rid__"] = rids[pos]
                yield values
        else:
            for pos in selected:
                values = segment.row_values(pos)
                values["__rid__"] = segment.rids[pos]
                yield values

    def label(self) -> str:
        pred = render_predicate(conjoin(self.conjuncts)) \
            if self.conjuncts else "TRUE"
        return f"SegmentScan({self.table}, pred={pred})"


def _segment_selection(segment: Segment,
                       vector_conjuncts: list[Any]) -> list[int] | None:
    """Positions surviving every kernel conjunct's bitmap, or None when a
    kernel hit incomparable operands (caller reverts to row evaluation)."""
    try:
        bitmap: list[bool] | None = None
        for conjunct in vector_conjuncts:
            bits = _conjunct_bitmap(segment, conjunct)
            bitmap = bits if bitmap is None \
                else [a and b for a, b in zip(bitmap, bits)]
    except TypeError:
        return None
    if bitmap is None:
        return list(range(segment.count))
    return [i for i, keep in enumerate(bitmap) if keep]


class Filter(PlanNode):
    """Apply a (residual or pushed) predicate to the child's rows."""

    profiled_streaming = True

    def __init__(self, predicate: Any, child: PlanNode,
                 role: str = "filter") -> None:
        self.predicate = predicate
        self.child = child
        self.role = role  # 'filter' (residual) | 'pushed'

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        return [r for r in self.rows(txn)]

    def rows(self, txn: Transaction) -> Iterator[dict[str, Any]]:
        return (r for r in self.child.rows(txn)
                if eval_predicate(self.predicate, r))

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        name = "Filter" if self.role == "filter" else "PushedFilter"
        return f"{name}({render_predicate(self.predicate)})"


def _combine(left_table: str, lrow: dict[str, Any],
             right_table: str, rrow: dict[str, Any]) -> dict[str, Any]:
    """Joined row shaped exactly like the naive interpreter's: qualified
    keys plus unqualified (left wins on collision), ``__rid__`` = left."""
    row: dict[str, Any] = {}
    for k, v in lrow.items():
        if k == "__rid__":
            continue
        row[f"{left_table}.{k}"] = v
        row.setdefault(k, v)
    for k, v in rrow.items():
        if k == "__rid__":
            continue
        row[f"{right_table}.{k}"] = v
        row.setdefault(k, v)
    row["__rid__"] = lrow["__rid__"]
    return row


class HashJoin(PlanNode):
    """Equi-join building a hash table on the cheaper side.

    Output is always in (left rid, right rid) order — when the build
    side is the left input the probe-order output is re-sorted, so the
    build-side choice is invisible in results.
    """

    def __init__(self, left: PlanNode, right: PlanNode, left_table: str,
                 right_table: str, left_col: str, right_col: str,
                 build: str) -> None:
        self.left = left
        self.right = right
        self.left_table = left_table
        self.right_table = right_table
        self.left_col = left_col
        self.right_col = right_col
        self.build = build  # 'left' | 'right'

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        left_rows = self.left.execute(txn)
        right_rows = self.right.execute(txn)
        buckets: dict[Any, list[dict[str, Any]]] = {}
        if self.build == "right":
            for rrow in right_rows:
                buckets.setdefault(rrow.get(self.right_col), []).append(rrow)
            out: list[dict[str, Any]] = []
            for lrow in left_rows:
                key = lrow.get(self.left_col)
                if key is None:
                    continue
                for rrow in buckets.get(key, ()):
                    out.append(_combine(self.left_table, lrow,
                                        self.right_table, rrow))
            return out
        for lrow in left_rows:
            buckets.setdefault(lrow.get(self.left_col), []).append(lrow)
        pairs: list[tuple[tuple[int, int], dict[str, Any]]] = []
        for rrow in right_rows:
            key = rrow.get(self.right_col)
            if key is None:
                continue
            for lrow in buckets.get(key, ()):
                pairs.append(
                    ((lrow["__rid__"], rrow["__rid__"]),
                     _combine(self.left_table, lrow, self.right_table, rrow))
                )
        pairs.sort(key=lambda p: p[0])
        return [row for _, row in pairs]

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return (f"HashJoin({self.left_table}.{self.left_col} = "
                f"{self.right_table}.{self.right_col}, build={self.build})")


class IndexNestedLoopJoin(PlanNode):
    """Probe the inner table's index once per outer row.

    The inner side has no access-path subtree — the probe *is* its
    access path; any conjuncts pushed to the inner side are applied to
    each fetched row (``inner_filter``).  Output is re-sorted into
    (left rid, right rid) order when the outer side is the right input.
    """

    def __init__(self, outer: PlanNode, outer_col: str, inner_table: str,
                 inner_col: str, inner_filter: Any, outer_side: str,
                 left_table: str, right_table: str, kind: str) -> None:
        self.outer = outer
        self.outer_col = outer_col
        self.inner_table = inner_table
        self.inner_col = inner_col
        self.inner_filter = inner_filter
        self.outer_side = outer_side  # 'left' | 'right'
        self.left_table = left_table
        self.right_table = right_table
        self.kind = kind

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        pairs: list[tuple[tuple[int, int], dict[str, Any]]] = []
        out: list[dict[str, Any]] = []
        prof = self.profile
        for orow in self.outer.execute(txn):
            key = orow.get(self.outer_col)
            if key is None:
                continue
            if prof is not None:
                prof.index_probes += 1
            for inner in txn.lookup(self.inner_table, self.inner_col, key):
                irow = _row_dict(inner)
                if self.inner_filter is not None \
                        and not eval_predicate(self.inner_filter, irow):
                    continue
                if self.outer_side == "left":
                    out.append(_combine(self.left_table, orow,
                                        self.right_table, irow))
                else:
                    combined = _combine(self.left_table, irow,
                                        self.right_table, orow)
                    pairs.append(((irow["__rid__"], orow["__rid__"]), combined))
        if self.outer_side == "left":
            return out
        pairs.sort(key=lambda p: p[0])
        return [row for _, row in pairs]

    def children(self) -> list[PlanNode]:
        return [self.outer]

    def label(self) -> str:
        outer_table = self.left_table if self.outer_side == "left" \
            else self.right_table
        label = (f"IndexNestedLoopJoin({outer_table}.{self.outer_col} = "
                 f"{self.inner_table}.{self.inner_col}, "
                 f"inner={self.inner_table} via {self.kind} index")
        if self.inner_filter is not None:
            label += f", inner filter: {render_predicate(self.inner_filter)}"
        return label + ")"


class VectorizedAggregate:
    """COUNT/SUM/AVG/MIN/MAX + GROUP BY evaluated straight off a
    :class:`SegmentScan`'s column buffers — no row dicts, no
    ``_resolve`` per value.

    Output is element-identical to the naive ``_aggregate``:

    * float SUM/AVG carry the running accumulator across units (``sum``
      with a ``start``), so the addition chain is the same left-to-right
      fold over rid order the naive path performs;
    * MIN/MAX keep the first extremum under the ``v < cur`` / ``v > cur``
      rules the builtins use (FLOAT columns run element-wise because
      zone-map bounds are not trustworthy under NaN);
    * group keys and output rows are ordered exactly like the naive
      ``sorted(groups.items(), ...)`` (dict insertion order breaks ties).
    """

    #: set per-instance by ``SelectPlan.enable_profiling``
    profile: OperatorProfile | None = None

    def __init__(self, stmt: SelectStatement, source: SegmentScan) -> None:
        self.stmt = stmt
        self.source = source
        self._group_names = [g.name for g in stmt.group_by]
        self._agg_items = [
            (item.key(), item.expr.func,
             item.expr.column.name if item.expr.column is not None else None)
            for item in stmt.items if isinstance(item.expr, Aggregate)
        ]

    # ------------------------------------------------------------- execute

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        state: dict[tuple, list[list[Any]]] = {}
        source = self.source
        registry = metrics.get_registry()
        for kind, unit in txn.scan_units(source.table):
            if kind == "rows":
                pred = source._full
                for row in unit:
                    r = _row_dict(row)
                    if pred is None or eval_predicate(pred, r):
                        self._accumulate_row(state, r)
                continue
            self.accumulate_segment(state, unit, registry)
        return self._finalize(state)

    def accumulate_segment(self, state: dict, segment: Segment,
                           registry) -> int:
        """Fold one segment into ``state`` (prune → bitmaps → accumulate);
        returns the number of rows accumulated.  Shared with the per-shard
        parallel aggregation workers in
        :mod:`repro.storage.rdbms.parallel`."""
        source = self.source
        prof = self.profile
        if segment.count == 0:
            return 0
        if any(_zone_map_prunes(segment, c) for c in source._vector):
            registry.inc("segments.skipped")
            if prof is not None:
                prof.segments_skipped += 1
            return 0
        registry.inc("segments.scanned")
        if prof is not None:
            prof.segments_scanned += 1
        selected = _segment_selection(segment, source._vector)
        if selected is None:
            n = 0
            for rid, values in segment.iter_rows():
                values["__rid__"] = rid
                if source._full is None \
                        or eval_predicate(source._full, values):
                    self._accumulate_row(state, values)
                    n += 1
            return n
        if source._fallback is not None:
            n = 0
            for pos in selected:
                values = segment.row_values(pos)
                values["__rid__"] = segment.rids[pos]
                if eval_predicate(source._fallback, values):
                    self._accumulate_row(state, values)
                    n += 1
            return n
        if self._group_names:
            self._accumulate_grouped(state, segment, selected)
        else:
            self._accumulate_global(state, segment, selected)
        return len(selected)

    # ----------------------------------------------------- accumulation

    @staticmethod
    def _new_acc(func: str) -> list[Any]:
        if func == "count":
            return [0]
        if func in ("sum", "avg"):
            return [0, 0]  # running sum (starts at int 0, like sum()), n
        return [False, None]  # have-value flag, extremum

    def _accs_for(self, state: dict, key: tuple) -> list[list[Any]]:
        accs = state.get(key)
        if accs is None:
            accs = state[key] = [self._new_acc(func)
                                 for _, func, _ in self._agg_items]
        return accs

    def _accumulate_row(self, state: dict, row: dict[str, Any]) -> None:
        key = tuple(row.get(name) for name in self._group_names)
        accs = self._accs_for(state, key)
        for acc, (_, func, colname) in zip(accs, self._agg_items):
            if func == "count":
                if colname is None or row.get(colname) is not None:
                    acc[0] += 1
                continue
            v = row.get(colname)
            if v is None:
                continue
            if func == "min":
                if not acc[0]:
                    acc[0], acc[1] = True, v
                elif v < acc[1]:
                    acc[1] = v
            elif func == "max":
                if not acc[0]:
                    acc[0], acc[1] = True, v
                elif v > acc[1]:
                    acc[1] = v
            else:  # sum / avg
                acc[0] += v
                acc[1] += 1

    def _accumulate_global(self, state: dict, segment: Segment,
                           selected: list[int]) -> None:
        accs = self._accs_for(state, ())
        full = len(selected) == segment.count
        decoded: dict[str, list[Any]] = {}

        def column_values(name: str) -> list[Any]:
            values = decoded.get(name)
            if values is None:
                values = decoded[name] = segment.columns[name].decoded()
            return values

        for acc, (_, func, colname) in zip(accs, self._agg_items):
            if func == "count":
                if colname is None:
                    acc[0] += len(selected)
                    continue
                col = segment.columns[colname]
                if full:
                    acc[0] += col.count - col.null_count
                    continue
                flags = col.null_flags()
                if flags is None:
                    acc[0] += len(selected)
                else:
                    acc[0] += sum(1 for i in selected if not flags[i])
                continue
            col = segment.columns[colname]
            if func in ("sum", "avg"):
                if full:
                    if col.encoding in ("int", "bool"):
                        # NULL placeholder slots are 0: they never change
                        # an integer sum, so the typed buffer sums whole.
                        acc[0] = sum(col.data, acc[0])
                    elif col.encoding == "float" and col.null_count == 0:
                        acc[0] = sum(col.data, acc[0])
                    elif col.encoding == "float":
                        flags = col.null_flags()
                        data = col.data
                        acc[0] = sum((data[i] for i in range(col.count)
                                      if not flags[i]), acc[0])
                    else:  # raw (e.g. beyond-int64 values)
                        acc[0] = sum((v for v in col.data if v is not None),
                                     acc[0])
                    acc[1] += col.count - col.null_count
                else:
                    values = column_values(colname)
                    for i in selected:
                        v = values[i]
                        if v is not None:
                            acc[0] += v
                            acc[1] += 1
                continue
            # min / max
            if full and col.encoding != "float":
                bound = col.min_value if func == "min" else col.max_value
                if bound is not None:
                    if not acc[0]:
                        acc[0], acc[1] = True, bound
                    elif func == "min" and bound < acc[1]:
                        acc[1] = bound
                    elif func == "max" and bound > acc[1]:
                        acc[1] = bound
                continue
            values = column_values(colname)
            if func == "min":
                for i in selected:
                    v = values[i]
                    if v is None:
                        continue
                    if not acc[0]:
                        acc[0], acc[1] = True, v
                    elif v < acc[1]:
                        acc[1] = v
            else:
                for i in selected:
                    v = values[i]
                    if v is None:
                        continue
                    if not acc[0]:
                        acc[0], acc[1] = True, v
                    elif v > acc[1]:
                        acc[1] = v

    def _accumulate_grouped(self, state: dict, segment: Segment,
                            selected: list[int]) -> None:
        group_cols = [segment.column_values(name)
                      for name in self._group_names]
        full = len(selected) == segment.count
        single = len(group_cols) == 1

        # Partition positions by group key.  The per-row cost is one
        # C-built key (list element or zip tuple) plus one dict probe;
        # buckets keep first-occurrence order, matching the insertion
        # order the naive per-row fold would produce.
        buckets: dict[Any, list[int]] = {}
        if single:
            keys: Any = group_cols[0] if full \
                else [group_cols[0][i] for i in selected]
        elif full:
            keys = zip(*group_cols)
        else:
            keys = zip(*([col[i] for i in selected] for col in group_cols))
        positions = range(segment.count) if full else selected
        for pos, key in zip(positions, keys):
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [pos]
            else:
                bucket.append(pos)

        decoded: dict[str, list[Any]] = {}

        def column_values(name: str) -> list[Any]:
            values = decoded.get(name)
            if values is None:
                values = decoded[name] = segment.columns[name].decoded()
            return values

        # Fold each bucket off the decoded buffers: itemgetter gathers at
        # C speed, and sum(vals, start)/min(vals)/max(vals) replay the
        # exact left-to-right, strict-inequality fold of the row path.
        for key, bucket in buckets.items():
            accs = self._accs_for(state, (key,) if single else key)
            extracted: dict[str, Sequence[Any]] = {}
            for acc, (_, func, colname) in zip(accs, self._agg_items):
                if colname is None:  # count(*)
                    acc[0] += len(bucket)
                    continue
                vals = extracted.get(colname)
                if vals is None:
                    values = column_values(colname)
                    if len(bucket) == 1:
                        vals = (values[bucket[0]],)
                    else:
                        vals = itemgetter(*bucket)(values)
                    if segment.columns[colname].null_count:
                        vals = [v for v in vals if v is not None]
                    extracted[colname] = vals
                if func == "count":
                    acc[0] += len(vals)
                elif func in ("sum", "avg"):
                    acc[0] = sum(vals, acc[0])
                    acc[1] += len(vals)
                elif vals:
                    cand = min(vals) if func == "min" else max(vals)
                    if not acc[0]:
                        acc[0], acc[1] = True, cand
                    elif func == "min":
                        if cand < acc[1]:
                            acc[1] = cand
                    elif cand > acc[1]:
                        acc[1] = cand

    # --------------------------------------------------------- finalize

    def _finalize(self, state: dict) -> list[dict[str, Any]]:
        if not self._group_names and not state:
            # Same shape the naive path produces on an empty input:
            # one global group with COUNT 0 and NULL everything else.
            self._accs_for(state, ())
        out: list[dict[str, Any]] = []
        for key, accs in sorted(
            state.items(), key=lambda kv: tuple((v is None, v) for v in kv[0])
        ):
            result: dict[str, Any] = {}
            for g, value in zip(self.stmt.group_by, key):
                result[g.key()] = value
            for (out_key, func, _), acc in zip(self._agg_items, accs):
                if func == "count":
                    result[out_key] = acc[0]
                elif func == "sum":
                    result[out_key] = acc[0] if acc[1] else None
                elif func == "avg":
                    result[out_key] = acc[0] / acc[1] if acc[1] else None
                else:
                    result[out_key] = acc[1] if acc[0] else None
            out.append(result)
        return out


def plan_vector_aggregate(stmt: SelectStatement, schema: Any,
                          source: SegmentScan) -> VectorizedAggregate | None:
    """A :class:`VectorizedAggregate` when the statement's aggregate stage
    can run over columns, else None (the row path keeps naive semantics,
    including its error surface — e.g. SUM over TEXT raising TypeError)."""
    for g in stmt.group_by:
        if g.table not in (None, stmt.table) or not schema.has_column(g.name):
            return None
    for item in stmt.items:
        expr = item.expr
        if isinstance(expr, Aggregate):
            if expr.column is None:
                continue  # COUNT(*)
            ref = expr.column
            if ref.table not in (None, stmt.table) \
                    or not schema.has_column(ref.name):
                return None
            if expr.func in ("sum", "avg"):
                col_type = schema.column(ref.name).col_type
                if col_type not in (ColumnType.INT, ColumnType.FLOAT,
                                    ColumnType.BOOL):
                    return None
        elif isinstance(expr, ColumnRef):
            # Naive emits these only as group keys (or raises).
            if not (stmt.group_by
                    and any(g.name == expr.name for g in stmt.group_by)):
                return None
        else:
            return None
    return VectorizedAggregate(stmt, source)


class SelectPlan:
    """A planned SELECT: the executable ``source`` (scan/join + filters,
    WHERE fully applied) plus the metadata ``sql._select`` needs for the
    aggregate/projection/order stages and EXPLAIN for rendering.  When
    ``vector`` is set, the aggregate stage runs columnar: ``sql._select``
    calls ``vector.execute`` instead of materializing source rows."""

    def __init__(self, source: PlanNode, stmt: SelectStatement,
                 use_topk: bool, vector: VectorizedAggregate | None = None) -> None:
        self.source = source
        self.stmt = stmt
        self.use_topk = use_topk
        self.vector = vector
        #: non-None only under EXPLAIN ANALYZE: profiles of the pseudo
        #: stages (``"output"`` = projection/order/limit, ``"Aggregate"``)
        self.stage_profiles: dict[str, OperatorProfile] | None = None

    def enable_profiling(self) -> "SelectPlan":
        """Instrument the whole plan for EXPLAIN ANALYZE (in place)."""
        self.stage_profiles = {}
        attach_profiles(self.source)
        if self.vector is not None:
            prof = OperatorProfile()
            self.vector.profile = prof
            self.vector.execute = _profiled_execute(  # type: ignore[method-assign]
                self.vector.execute, prof)
        return self

    def stage_profile(self, name: str) -> OperatorProfile | None:
        """The profile ``sql._select`` fills for a pseudo stage, if any."""
        if self.stage_profiles is None:
            return None
        return self.stage_profiles.setdefault(name, OperatorProfile())

    def execute(self, txn: Transaction) -> list[dict[str, Any]]:
        return self.source.execute(txn)

    def rows(self, txn: Transaction) -> Iterator[dict[str, Any]]:
        return self.source.rows(txn)

    def render(self) -> list[str]:
        stmt = self.stmt
        lines: list[str] = []
        depth = 0
        profs = self.stage_profiles or {}
        # The "output" stage times projection + order/limit together; its
        # actuals annotate the topmost pseudo stage only.
        out_prof: OperatorProfile | None = profs.get("output")

        def push(text: str, prof: OperatorProfile | None = None) -> None:
            nonlocal depth
            if prof is not None:
                text += f"  ({prof.describe()})"
            lines.append("  " * depth + text)
            depth += 1

        def take_output() -> OperatorProfile | None:
            nonlocal out_prof
            prof, out_prof = out_prof, None
            return prof

        if self.use_topk:
            direction = "desc" if stmt.order_desc else "asc"
            push(f"TopK(key={stmt.order_by.key()}, {direction}, "
                 f"k={stmt.limit})", take_output())
        else:
            if stmt.limit is not None:
                push(f"Limit({stmt.limit})", take_output())
            if stmt.order_by is not None:
                direction = "desc" if stmt.order_desc else "asc"
                push(f"Sort(key={stmt.order_by.key()}, {direction})",
                     take_output())
        has_aggregates = any(isinstance(i.expr, Aggregate) for i in stmt.items)
        if stmt.group_by or has_aggregates:
            keys = ", ".join(g.key() for g in stmt.group_by) or "()"
            items = ", ".join(i.key() for i in stmt.items) or "*"
            if self.vector is not None:
                label = getattr(self.vector, "render_name",
                                "VectorizedAggregate")
                push(f"{label}(group_by=[{keys}], "
                     f"items=[{items}])", self.vector.profile)
            else:
                push(f"Aggregate(group_by=[{keys}], items=[{items}])",
                     profs.get("Aggregate"))
        else:
            items = "*" if stmt.star else ", ".join(i.key() for i in stmt.items)
            push(f"Project({items})", take_output())
        lines.extend(self.source.render(depth))
        return lines


# --------------------------------------------------------------- planner


class _AccessChoice:
    """One candidate access path while costing a table."""

    __slots__ = ("node", "consumed", "est_rows", "cost", "rank")

    def __init__(self, node: PlanNode, consumed: list[Any], est_rows: float,
                 cost: float, rank: int) -> None:
        self.node = node
        self.consumed = consumed
        self.est_rows = est_rows
        self.cost = cost
        self.rank = rank  # tie-break: lower rank preferred


class Planner:
    """Builds physical plans for SELECT sourcing and DML row matching."""

    def __init__(self, db: Database) -> None:
        self._db = db
        self._stats = db.statistics()

    # -------------------------------------------------------- selectivity

    def _conjunct_selectivity(self, table: str, conjunct: Any) -> float:
        """Rough selectivity of one conjunct against ``table``."""
        eq = _eq_conjunct(conjunct)
        if eq is not None and eq[1] is not None:
            return self._stats.eq_selectivity(table, eq[0].name, eq[1])
        rng = _range_conjunct(conjunct)
        if rng is not None and rng[2] is not None:
            ref, op, value = rng
            if op in ("<", "<="):
                return self._stats.range_selectivity(
                    table, ref.name, None, value, True, op == "<=")
            return self._stats.range_selectivity(
                table, ref.name, value, None, op == ">=", True)
        if isinstance(conjunct, InPredicate) and not conjunct.negated:
            total = sum(
                self._stats.eq_selectivity(table, conjunct.column.name, v)
                for v in conjunct.values
            )
            return min(max(total, MIN_SELECTIVITY), 1.0)
        return 0.5

    def _filtered_estimate(self, table: str, base_rows: float,
                           conjuncts: Iterable[Any]) -> float:
        est = base_rows
        for conjunct in conjuncts:
            est *= self._conjunct_selectivity(table, conjunct)
        return max(est, 0.0)

    # -------------------------------------------------------- access paths

    def plan_access(self, table: str, conjuncts: list[Any],
                    prefer_columnar: bool = False) -> tuple[PlanNode, list[Any]]:
        """Cheapest access path for ``table`` under the given conjuncts.

        Returns ``(node, residual_conjuncts)`` — the node produces a
        superset of the matching rows in rid order, the residual still
        needs a filter.  ``prefer_columnar`` sweetens the SegmentScan
        cost for aggregate-stage queries, where the columnar payoff
        (vectorized accumulation, no row dicts) is largest.

        Raises:
            KeyError: unknown table.
        """
        n = float(self._db.table_size(table))
        registry = metrics.get_registry()
        choices: list[_AccessChoice] = [
            _AccessChoice(FullScan(table), [], n, n, rank=2)
        ]
        heap = self._db._table(table)
        seg_rows = len(heap) - heap.tail_size
        if seg_rows:
            schema = heap.schema
            vector, fallback = _split_vectorizable(conjuncts, schema, table)
            discount = _COLUMNAR_DISCOUNT if not fallback else 1.0
            if prefer_columnar and not fallback:
                discount *= 0.5
            cost = heap.tail_size + seg_rows * discount + _PROBE_COST
            choices.append(_AccessChoice(
                SegmentScan(table, list(conjuncts), vector, fallback),
                list(conjuncts),
                self._filtered_estimate(table, n, conjuncts), cost, rank=1,
            ))
        for conjunct in conjuncts:
            eq = _eq_conjunct(conjunct)
            if eq is None or eq[1] is None:
                continue
            column = eq[0].name
            index = self._db._find_index(table, column)
            if index is None:
                continue
            kind = "sorted" if isinstance(index, SortedIndex) else "hash"
            selectivity = self._stats.eq_selectivity(table, column, eq[1])
            est = max(n * selectivity, 0.0)
            choices.append(_AccessChoice(
                IndexLookup(table, column, eq[1], kind), [conjunct],
                est, est + _PROBE_COST, rank=0,
            ))
        for column, bounds in self._range_bounds(conjuncts).items():
            index = self._db.sorted_index(table, column)
            if index is None:
                continue
            low, high, include_low, include_high, consumed = bounds
            selectivity = self._stats.range_selectivity(
                table, column, low, high, include_low, include_high)
            est = max(n * selectivity, 0.0)
            choices.append(_AccessChoice(
                RangeScan(table, column, low, high, include_low, include_high),
                consumed, est, est + _PROBE_COST + math.log2(n + 2), rank=1,
            ))
        best = min(choices, key=lambda c: (c.cost, c.rank))
        best.node.est_rows = best.est_rows
        best.node.cost = best.cost
        parallel = self._maybe_parallel_access(table, conjuncts, best.node)
        if parallel is not None:
            registry.inc("planner.plans.parallel_scan")
            return parallel, []
        if isinstance(best.node, FullScan):
            registry.inc("planner.plans.full_scan")
        elif isinstance(best.node, IndexLookup):
            registry.inc("planner.plans.index_lookup")
        elif isinstance(best.node, SegmentScan):
            registry.inc("planner.plans.segment_scan")
        else:
            registry.inc("planner.plans.range_scan")
        return best.node, _remove(conjuncts, best.consumed)

    def _maybe_parallel_access(self, table: str, conjuncts: list[Any],
                               chosen: PlanNode) -> PlanNode | None:
        """Replace a chosen scan with a :class:`~repro.storage.rdbms
        .parallel.ParallelScan` when the table is sharded and the
        database carries an execution backend.  Index point lookups are
        kept — the PR 5 fast path beats fan-out for tiny row counts.
        The parallel node consumes ALL conjuncts (workers apply the full
        predicate), so callers get an empty residual."""
        backend = getattr(self._db, "exec_backend", None)
        if backend is None:
            return None
        heap = self._db._table(table)
        spec = heap.shard_spec
        if spec is None or spec.count <= 1:
            return None
        if isinstance(chosen, IndexLookup):
            return None
        from repro.storage.rdbms.parallel import ParallelScan, allowed_shards

        schema = heap.schema
        vector, fallback = _split_vectorizable(conjuncts, schema, table)
        shards = allowed_shards(conjuncts, spec, table)
        node = ParallelScan(table, list(conjuncts), vector, fallback,
                            spec, shards)
        node.est_rows = chosen.est_rows if not isinstance(chosen, FullScan) \
            else self._filtered_estimate(table, chosen.est_rows, conjuncts)
        # Fan-out splits the chosen scan's work across shards; pruning
        # drops the pinned-away fraction entirely.
        node.cost = chosen.cost * (len(shards) / spec.count) \
            / min(getattr(backend, "max_workers", 1) or 1, spec.count or 1) \
            + _PROBE_COST
        node.shard_scan.est_rows = node.est_rows
        node.shard_scan.cost = node.cost
        return node

    @staticmethod
    def _range_bounds(
        conjuncts: list[Any],
    ) -> dict[str, tuple[Any, Any, bool, bool, list[Any]]]:
        """Combined (low, high, incl_low, incl_high, consumed) per column
        with at least one range conjunct; columns whose bounds cannot be
        combined (mixed incomparable literal types) are dropped."""
        grouped: dict[str, list[tuple[str, Any, Any]]] = {}
        for conjunct in conjuncts:
            rng = _range_conjunct(conjunct)
            if rng is None or rng[2] is None:
                continue
            grouped.setdefault(rng[0].name, []).append(
                (rng[1], rng[2], conjunct))
        out: dict[str, tuple[Any, Any, bool, bool, list[Any]]] = {}
        for column, entries in grouped.items():
            low: Any = None
            high: Any = None
            include_low = include_high = True
            consumed: list[Any] = []
            try:
                for op, value, conjunct in entries:
                    if op in (">", ">="):
                        inclusive = op == ">="
                        if low is None or value > low or (
                                value == low and include_low and not inclusive):
                            low, include_low = value, inclusive
                    else:
                        inclusive = op == "<="
                        if high is None or value < high or (
                                value == high and include_high and not inclusive):
                            high, include_high = value, inclusive
                    consumed.append(conjunct)
            except TypeError:
                continue  # incomparable bounds: leave it all to the filter
            out[column] = (low, high, include_low, include_high, consumed)
        return out

    # --------------------------------------------------------------- joins

    def _side_of(self, conjunct: Any, stmt: SelectStatement) -> str | None:
        """'left' / 'right' when every column reference in the conjunct
        resolves to that one join input (matching the naive resolver's
        left-wins rule for ambiguous unqualified names), else None."""
        refs = column_refs(conjunct)
        if not refs:
            return None
        left_schema = self._db.schema(stmt.table)
        right_schema = self._db.schema(stmt.join_table)
        sides: set[str] = set()
        for ref in refs:
            if ref.table == stmt.table:
                side = "left"
            elif ref.table == stmt.join_table:
                side = "right"
            elif ref.table is not None:
                return None
            elif left_schema.has_column(ref.name):
                side = "left"
            elif right_schema.has_column(ref.name):
                side = "right"
            else:
                return None
            sides.add(side)
        return sides.pop() if len(sides) == 1 else None

    @staticmethod
    def join_columns(stmt: SelectStatement) -> tuple[str, str]:
        """(left column, right column) of the ON clause, normalizing the
        user writing the sides in either order (same rule as naive)."""
        left, right = stmt.join_left, stmt.join_right
        if left.table == stmt.join_table or right.table == stmt.table:
            left, right = right, left
        return left.name, right.name

    def _plan_join(self, stmt: SelectStatement,
                   conjuncts: list[Any]) -> tuple[PlanNode, list[Any]]:
        registry = metrics.get_registry()
        left_table, right_table = stmt.table, stmt.join_table
        left_col, right_col = self.join_columns(stmt)

        left_conjuncts: list[Any] = []
        right_conjuncts: list[Any] = []
        residual: list[Any] = []
        for conjunct in conjuncts:
            side = self._side_of(conjunct, stmt)
            if side == "left":
                left_conjuncts.append(conjunct)
            elif side == "right":
                right_conjuncts.append(conjunct)
            else:
                residual.append(conjunct)
        registry.inc("planner.conjuncts.pushed",
                     len(left_conjuncts) + len(right_conjuncts))

        def side_node(table: str, side_conjuncts: list[Any]) \
                -> tuple[PlanNode, float]:
            node, side_residual = self.plan_access(table, side_conjuncts)
            est = self._filtered_estimate(table, node.est_rows, side_residual)
            if side_residual:
                node = Filter(conjoin(side_residual), node, role="pushed")
                node.est_rows, node.cost = est, node.child.cost
            return node, max(est, 0.0)

        left_node, left_est = side_node(left_table, left_conjuncts)
        right_node, right_est = side_node(right_table, right_conjuncts)

        build = "right" if right_est <= left_est else "left"
        hash_cost = left_node.cost + right_node.cost + left_est + right_est
        hash_join = HashJoin(left_node, right_node, left_table, right_table,
                             left_col, right_col, build)
        out_est = self._join_cardinality(left_table, left_col, left_est,
                                         right_table, right_col, right_est)
        hash_join.est_rows, hash_join.cost = out_est, hash_cost

        best: PlanNode = hash_join
        inlj_right = self._inlj_candidate(
            stmt, outer=left_node, outer_est=left_est, outer_col=left_col,
            outer_side="left", inner_table=right_table, inner_col=right_col,
            inner_conjuncts=right_conjuncts, out_est=out_est)
        inlj_left = self._inlj_candidate(
            stmt, outer=right_node, outer_est=right_est, outer_col=right_col,
            outer_side="right", inner_table=left_table, inner_col=left_col,
            inner_conjuncts=left_conjuncts, out_est=out_est)
        for candidate in (inlj_right, inlj_left):
            if candidate is not None and candidate.cost < best.cost:
                best = candidate
        if isinstance(best, HashJoin):
            from repro.storage.rdbms.parallel import plan_parallel_join
            parallel = plan_parallel_join(
                self, stmt, left_table, right_table, left_col, right_col,
                left_conjuncts, right_conjuncts, left_node, right_node,
                left_est, right_est, best)
            if parallel is not None:
                registry.inc("planner.plans.parallel_join")
                return parallel, residual
            registry.inc("planner.plans.hash_join")
        else:
            registry.inc("planner.plans.index_nested_loop_join")
        return best, residual

    def _join_cardinality(self, left_table: str, left_col: str,
                          left_est: float, right_table: str, right_col: str,
                          right_est: float) -> float:
        """Standard equi-join estimate: |L| * |R| / max(ndv(l), ndv(r))."""
        ndv = max(
            self._ndv(left_table, left_col),
            self._ndv(right_table, right_col),
            1,
        )
        return left_est * right_est / ndv

    def _ndv(self, table: str, column: str) -> int:
        column_stats = self._stats.stats(table).column(column)
        return column_stats.distinct if column_stats is not None else 0

    def _inlj_candidate(self, stmt: SelectStatement, outer: PlanNode,
                        outer_est: float, outer_col: str, outer_side: str,
                        inner_table: str, inner_col: str,
                        inner_conjuncts: list[Any],
                        out_est: float) -> IndexNestedLoopJoin | None:
        index = self._db._find_index(inner_table, inner_col)
        if index is None:
            return None
        kind = "sorted" if isinstance(index, SortedIndex) else "hash"
        inner_rows = float(self._db.table_size(inner_table))
        bucket = inner_rows / max(self._ndv(inner_table, inner_col), 1)
        node = IndexNestedLoopJoin(
            outer, outer_col, inner_table, inner_col,
            conjoin(inner_conjuncts), outer_side,
            left_table=stmt.table, right_table=stmt.join_table, kind=kind)
        node.est_rows = out_est
        node.cost = outer.cost + outer_est * (_PROBE_COST + bucket)
        return node

    # -------------------------------------------------------------- SELECT

    def plan_select(self, stmt: SelectStatement) -> SelectPlan:
        """Physical plan for a SELECT's row-sourcing (and EXPLAIN tree)."""
        registry = metrics.get_registry()
        conjuncts = split_conjuncts(stmt.where)
        has_aggregates = any(isinstance(i.expr, Aggregate) for i in stmt.items)
        aggregate_stage = bool(stmt.group_by) or has_aggregates
        if stmt.join_table is None:
            node, residual = self.plan_access(
                stmt.table, conjuncts, prefer_columnar=aggregate_stage)
        else:
            node, residual = self._plan_join(stmt, conjuncts)
        if residual:
            est = node.est_rows
            if stmt.join_table is None:
                est = self._filtered_estimate(stmt.table, est, residual)
            node = Filter(conjoin(residual), node)
            node.est_rows, node.cost = est, node.child.cost
        vector = None
        if aggregate_stage and isinstance(node, SegmentScan):
            vector = plan_vector_aggregate(
                stmt, self._db._table(stmt.table).schema, node)
            if vector is not None:
                registry.inc("planner.plans.vectorized_agg")
        elif aggregate_stage and stmt.join_table is None:
            from repro.storage.rdbms.parallel import (
                ParallelScan,
                plan_parallel_aggregate,
            )
            if isinstance(node, ParallelScan):
                vector = plan_parallel_aggregate(
                    stmt, self._db._table(stmt.table).schema, node)
                if vector is not None:
                    registry.inc("planner.plans.parallel_agg")
        use_topk = (
            stmt.order_by is not None and stmt.limit is not None
            and not stmt.group_by and not has_aggregates
        )
        if use_topk:
            registry.inc("planner.plans.topk")
        return SelectPlan(node, stmt, use_topk, vector)

    def explain(self, stmt: SelectStatement) -> list[str]:
        """EXPLAIN text lines for a SELECT (plans, does not execute)."""
        return self.plan_select(stmt).render()
