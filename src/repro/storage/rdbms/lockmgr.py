"""Hierarchical strict two-phase locking with deadlock detection.

Lock granularity is (table, rid) for rows and (table, None) for the table
itself.  Four modes with the classic multi-granularity compatibility matrix:

* ``IS`` (intention shared)  — about to S-lock some rows,
* ``IX`` (intention exclusive) — about to X-lock some rows,
* ``S``  (shared)            — reading the whole object,
* ``X``  (exclusive)         — writing the whole object.

Writers take IX on the table plus X on each touched row; point readers take
IS on the table plus S on the row; full scans take S on the table.  All
locks are held to transaction end (strict 2PL): the engine releases via
:meth:`LockManager.release_all` only at commit/abort.

Deadlocks are detected by cycle search in the waits-for graph whenever a
request would block; the requesting transaction is the victim.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import ReproError
from repro.telemetry import metrics


class DeadlockError(ReproError):
    """Raised to the victim transaction when a deadlock is detected."""


class LockTimeoutError(ReproError, TimeoutError):
    """A lock wait exceeded the manager's timeout.

    Subclasses builtin :class:`TimeoutError` for backward compatibility
    (callers that caught ``TimeoutError`` keep working) while joining the
    typed :class:`~repro.errors.ReproError` hierarchy so the retry policy
    and the serving layer can target it precisely.
    """


class LockMode(enum.Enum):
    INTENTION_SHARED = "IS"
    INTENTION_EXCLUSIVE = "IX"
    SHARED = "S"
    EXCLUSIVE = "X"


_COMPATIBLE: dict[tuple[LockMode, LockMode], bool] = {}


def _fill_matrix() -> None:
    is_, ix, s, x = (
        LockMode.INTENTION_SHARED,
        LockMode.INTENTION_EXCLUSIVE,
        LockMode.SHARED,
        LockMode.EXCLUSIVE,
    )
    rows = {
        is_: {is_: True, ix: True, s: True, x: False},
        ix: {is_: True, ix: True, s: False, x: False},
        s: {is_: True, ix: False, s: True, x: False},
        x: {is_: False, ix: False, s: False, x: False},
    }
    for a, row in rows.items():
        for b, ok in row.items():
            _COMPATIBLE[(a, b)] = ok


_fill_matrix()

LockKey = tuple[str, Hashable]  # (table, rid) or (table, None)


@dataclass
class _LockState:
    """Holders and waiter count for one lockable object."""

    holders: dict[int, set[LockMode]] = field(default_factory=dict)
    waiting: int = 0


class LockManager:
    """Thread-safe multi-granularity lock table for strict 2PL."""

    def __init__(self, timeout: float = 10.0) -> None:
        self._cond = threading.Condition()
        self._locks: dict[LockKey, _LockState] = {}
        self._held_by_txn: dict[int, set[LockKey]] = {}
        self._waits_for: dict[int, set[int]] = {}
        self._timeout = timeout

    # ------------------------------------------------------------------ API

    def acquire(self, txn_id: int, key: LockKey, mode: LockMode) -> None:
        """Acquire ``mode`` on ``key`` for ``txn_id``; blocks until granted.

        A transaction may hold several modes on one key (e.g. IX then S on a
        table); compatibility is only checked against *other* transactions.

        Raises:
            DeadlockError: this transaction was chosen as deadlock victim.
            LockTimeoutError: the wait exceeded the configured timeout.
        """
        with self._cond:
            state = self._locks.setdefault(key, _LockState())
            if self._already_holds(state, txn_id, mode):
                return
            # Wait metrics are recorded only when the request actually
            # blocks, so the granted-immediately fast path (every row
            # lock of a bulk insert) stays metric-free.
            wait_started: float | None = None
            while not self._grantable(state, txn_id, mode):
                if wait_started is None:
                    wait_started = time.perf_counter()
                blockers = self._blockers(state, txn_id, mode)
                self._waits_for[txn_id] = blockers
                if self._creates_cycle(txn_id):
                    del self._waits_for[txn_id]
                    metrics.get_registry().inc("rdbms.lock.deadlocks")
                    raise DeadlockError(
                        f"txn {txn_id} deadlocked requesting {mode.value} on {key}"
                    )
                state.waiting += 1
                granted = self._cond.wait(timeout=self._timeout)
                state.waiting -= 1
                self._waits_for.pop(txn_id, None)
                if not granted:
                    metrics.get_registry().inc("rdbms.lock.timeouts")
                    raise LockTimeoutError(
                        f"txn {txn_id} timed out waiting for {mode.value} on {key}"
                    )
            if wait_started is not None:
                waited = time.perf_counter() - wait_started
                registry = metrics.get_registry()
                registry.inc("rdbms.lock.waits")
                registry.inc("rdbms.lock.wait_seconds", waited)
                registry.observe("rdbms.lock.wait_seconds.hist", waited)
            state.holders.setdefault(txn_id, set()).add(mode)
            self._held_by_txn.setdefault(txn_id, set()).add(key)

    def release_all(self, txn_id: int) -> None:
        """Release every lock the transaction holds (commit/abort time)."""
        with self._cond:
            for key in self._held_by_txn.pop(txn_id, set()):
                state = self._locks.get(key)
                if state is None:
                    continue
                state.holders.pop(txn_id, None)
                if not state.holders and state.waiting == 0:
                    del self._locks[key]
            self._waits_for.pop(txn_id, None)
            self._cond.notify_all()

    def held(self, txn_id: int) -> set[LockKey]:
        """Keys currently locked by the transaction (test introspection)."""
        with self._cond:
            return set(self._held_by_txn.get(txn_id, set()))

    def lock_count(self) -> int:
        with self._cond:
            return len(self._locks)

    # ------------------------------------------------------------ internals

    @staticmethod
    def _already_holds(state: _LockState, txn_id: int, mode: LockMode) -> bool:
        modes = state.holders.get(txn_id, set())
        if mode in modes or LockMode.EXCLUSIVE in modes:
            return True
        if mode is LockMode.INTENTION_SHARED and modes & {
            LockMode.INTENTION_EXCLUSIVE, LockMode.SHARED
        }:
            return True
        return False

    @staticmethod
    def _grantable(state: _LockState, txn_id: int, mode: LockMode) -> bool:
        for other, modes in state.holders.items():
            if other == txn_id:
                continue
            if any(not _COMPATIBLE[(held, mode)] for held in modes):
                return False
        return True

    @staticmethod
    def _blockers(state: _LockState, txn_id: int, mode: LockMode) -> set[int]:
        blockers: set[int] = set()
        for other, modes in state.holders.items():
            if other == txn_id:
                continue
            if any(not _COMPATIBLE[(held, mode)] for held in modes):
                blockers.add(other)
        return blockers

    def _creates_cycle(self, start: int) -> bool:
        """DFS through the waits-for graph looking for a cycle back to start."""
        stack = list(self._waits_for.get(start, ()))
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._waits_for.get(node, ()))
        return False
