"""Table statistics for the cost-based planner (DESIGN.md §11).

The planner's cost model needs three things per table: how many rows it
has, how selective an equality predicate on a column is (≈ 1 / distinct
values), and how selective a range predicate is (read off a small
equal-depth histogram).  :class:`StatisticsManager` owns those numbers
for one :class:`~repro.storage.rdbms.engine.Database`:

* a **version counter** per table, bumped by a commit listener on every
  data-writing commit and schema change — this is what invalidates both
  stale statistics and the query-result cache;
* **incremental maintenance**: when a table has drifted only a little
  since the last full pass, the (always exact) live row count is folded
  in and the distributions are kept — no scan;
* a **full ANALYZE fallback**: once the drift exceeds
  ``staleness_fraction`` of the analyzed row count (or the table was
  never analyzed), one full scan rebuilds distinct counts, min/max, and
  the histograms.

Statistics are advisory: plans stay *correct* on arbitrarily stale
numbers (residual filters re-check every predicate), only their cost
ranking degrades.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.telemetry import metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> stats)
    from repro.storage.rdbms.engine import Database

#: Equal-depth histogram resolution (quantile points per column).
HISTOGRAM_BUCKETS = 16

#: Fallback selectivities when a column has no usable statistics.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.3

#: Floor so no estimate ever reaches exactly zero rows (a zero-cost plan
#: would win every comparison regardless of reality).
MIN_SELECTIVITY = 1e-4


@dataclass
class ColumnStats:
    """Distribution summary for one column.

    ``histogram`` holds ``HISTOGRAM_BUCKETS + 1`` quantile points of the
    sorted non-null values (an equal-depth sketch): the fraction of
    values ``<= x`` is approximated by where ``x`` lands among the
    points.
    """

    distinct: int = 0
    null_count: int = 0
    total: int = 0
    min_value: Any = None
    max_value: Any = None
    histogram: tuple = ()

    @property
    def non_null_fraction(self) -> float:
        if self.total <= 0:
            return 1.0
        return (self.total - self.null_count) / self.total

    def eq_selectivity(self) -> float:
        """Estimated fraction of rows matching ``col = literal``."""
        if self.distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        return max(self.non_null_fraction / self.distinct, MIN_SELECTIVITY)

    def le_fraction(self, value: Any, inclusive: bool) -> float:
        """Estimated fraction of non-null values ``<= value`` (or ``<``)."""
        if not self.histogram:
            return DEFAULT_RANGE_SELECTIVITY
        points = self.histogram
        try:
            if inclusive:
                pos = bisect.bisect_right(points, value)
            else:
                pos = bisect.bisect_left(points, value)
        except TypeError:
            return DEFAULT_RANGE_SELECTIVITY
        return pos / len(points)

    def range_selectivity(self, low: Any, high: Any,
                          include_low: bool, include_high: bool) -> float:
        """Estimated fraction of rows in the given (half-open) bounds."""
        if not self.histogram:
            return DEFAULT_RANGE_SELECTIVITY
        hi_frac = 1.0 if high is None else self.le_fraction(high, include_high)
        lo_frac = 0.0 if low is None else self.le_fraction(low, not include_low)
        frac = (hi_frac - lo_frac) * self.non_null_fraction
        return min(max(frac, MIN_SELECTIVITY), 1.0)


@dataclass
class TableStats:
    """Statistics for one table at one analyzed point in time."""

    table: str
    row_count: int = 0
    analyzed_rows: int = 0
    version: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)


def _build_column_stats(values: list[Any]) -> ColumnStats:
    """Summarize one column's values (including ``None`` entries)."""
    total = len(values)
    non_null = [v for v in values if v is not None]
    stats = ColumnStats(total=total, null_count=total - len(non_null))
    if not non_null:
        return stats
    stats.distinct = len(set(non_null))
    try:
        ordered = sorted(non_null)
    except TypeError:
        # Mixed incomparable types: keep the distinct count, skip the
        # order statistics (range estimates fall back to the default).
        return stats
    stats.min_value = ordered[0]
    stats.max_value = ordered[-1]
    n = len(ordered)
    points = tuple(
        ordered[min(round(i * (n - 1) / HISTOGRAM_BUCKETS), n - 1)]
        for i in range(HISTOGRAM_BUCKETS + 1)
    )
    stats.histogram = points
    return stats


class StatisticsManager:
    """Per-table statistics, versioned by the commit-listener stream.

    Obtained via :meth:`Database.statistics`; one instance per database.
    Thread-safe: the version map and the stats cache are guarded by one
    lock, and ANALYZE scans copy rows under the engine's mutate lock.
    """

    def __init__(self, db: "Database",
                 staleness_fraction: float = 0.25) -> None:
        self._db = db
        self._staleness = staleness_fraction
        self._lock = threading.Lock()
        self._versions: dict[str, int] = {}
        self._stats: dict[str, TableStats] = {}
        db.add_commit_listener(self._on_commit)

    # ------------------------------------------------------------ versions

    def _on_commit(self, tables: frozenset[str]) -> None:
        with self._lock:
            for table in tables:
                self._versions[table] = self._versions.get(table, 0) + 1

    def version(self, table: str) -> int:
        """Monotone counter: bumps on every commit/schema change of
        ``table``.  The result cache keys on this."""
        with self._lock:
            return self._versions.get(table, 0)

    # --------------------------------------------------------------- stats

    def analyze(self, table: str) -> TableStats:
        """Full statistics pass: one scan building every column summary.

        Raises:
            KeyError: unknown table.
        """
        db = self._db
        with self._lock:
            version = self._versions.get(table, 0)
        with db._mutate_lock:
            schema = db.schema(table)
            columns: dict[str, list[Any]] = {c: [] for c in schema.column_names}
            count = 0
            for row in db._table(table).scan():
                count += 1
                for name in columns:
                    columns[name].append(row.values.get(name))
        stats = TableStats(
            table=table, row_count=count, analyzed_rows=count, version=version,
            columns={name: _build_column_stats(vals)
                     for name, vals in columns.items()},
        )
        with self._lock:
            self._stats[table] = stats
        metrics.get_registry().inc("planner.analyze.full")
        return stats

    def stats(self, table: str) -> TableStats:
        """Current statistics, refreshed as cheaply as staleness allows.

        Unchanged version → cached as-is.  Small drift → exact live row
        count folded in, distributions reused (incremental path).  Large
        drift or never analyzed → full :meth:`analyze`.

        Raises:
            KeyError: unknown table.
        """
        with self._lock:
            version = self._versions.get(table, 0)
            cached = self._stats.get(table)
        if cached is not None and cached.version == version:
            return cached
        live_rows = self._db.table_size(table)
        if cached is not None and cached.analyzed_rows > 0:
            drift = abs(live_rows - cached.analyzed_rows)
            if drift <= self._staleness * cached.analyzed_rows:
                with self._lock:
                    cached.row_count = live_rows
                    cached.version = version
                metrics.get_registry().inc("planner.analyze.incremental")
                return cached
        return self.analyze(table)

    # --------------------------------------------------------- estimation

    def row_count(self, table: str) -> int:
        """Exact live row count (always current, never estimated)."""
        return self._db.table_size(table)

    def eq_selectivity(self, table: str, column: str) -> float:
        column_stats = self.stats(table).column(column)
        if column_stats is None or column_stats.total == 0:
            return DEFAULT_EQ_SELECTIVITY
        return column_stats.eq_selectivity()

    def range_selectivity(self, table: str, column: str, low: Any, high: Any,
                          include_low: bool, include_high: bool) -> float:
        column_stats = self.stats(table).column(column)
        if column_stats is None or column_stats.total == 0:
            return DEFAULT_RANGE_SELECTIVITY
        return column_stats.range_selectivity(low, high,
                                              include_low, include_high)
