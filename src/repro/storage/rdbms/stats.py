"""Table statistics for the cost-based planner (DESIGN.md §11).

The planner's cost model needs three things per table: how many rows it
has, how selective an equality predicate on a column is (≈ 1 / distinct
values), and how selective a range predicate is (read off a small
equal-depth histogram).  :class:`StatisticsManager` owns those numbers
for one :class:`~repro.storage.rdbms.engine.Database`:

* a **version counter** per table, bumped by a commit listener on every
  data-writing commit and schema change — this is what invalidates both
  stale statistics and the query-result cache;
* **incremental maintenance**: when a table has drifted only a little
  since the last full pass, the (always exact) live row count is folded
  in and the distributions are kept — no scan;
* a **full ANALYZE fallback**: once the drift exceeds
  ``staleness_fraction`` of the analyzed row count (or the table was
  never analyzed), one full scan rebuilds distinct counts, min/max, and
  the histograms;
* a **sampled ANALYZE** for big tables: above ``sample_threshold`` rows
  the pass reads a fixed-size uniform sample (deterministically seeded
  on table name + row count, so repeated runs agree) for histograms and
  distinct counts, while null counts and min/max stay *exact* — they
  come from columnar-segment zone maps plus a walk of the (small)
  row-store tail.

* **cardinality feedback**: the SQL layer reports estimated-vs-actual
  row counts after planned executions (exact per-operator actuals under
  ``EXPLAIN ANALYZE``, cheap result-derived counts otherwise) through
  :meth:`StatisticsManager.record_predicate_feedback`; a misestimate
  beyond the feedback ratio marks the offending columns pending, and the
  next ``stats()`` call runs a *targeted* re-ANALYZE of just those
  columns — the optimizer heals itself from its own telemetry without
  waiting for drift.

Statistics are advisory: plans stay *correct* on arbitrarily stale
numbers (residual filters re-check every predicate), only their cost
ranking degrades.
"""

from __future__ import annotations

import bisect
import random
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.telemetry import metrics
from repro.telemetry.feedback import CardinalityFeedback

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> stats)
    from repro.storage.rdbms.engine import Database

#: Equal-depth histogram resolution (quantile points per column).
HISTOGRAM_BUCKETS = 16

#: Most-common-value entries kept per column.  Only values that are more
#: frequent than a uniform distribution would predict are stored, so a
#: uniform column keeps an empty MCV list and the 1/distinct estimate.
MCV_ENTRIES = 8

#: Fallback selectivities when a column has no usable statistics.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.3

#: Floor so no estimate ever reaches exactly zero rows (a zero-cost plan
#: would win every comparison regardless of reality).
MIN_SELECTIVITY = 1e-4


@dataclass
class ColumnStats:
    """Distribution summary for one column.

    ``histogram`` holds ``HISTOGRAM_BUCKETS + 1`` quantile points of the
    sorted non-null values (an equal-depth sketch): the fraction of
    values ``<= x`` is approximated by where ``x`` lands among the
    points.
    """

    distinct: int = 0
    null_count: int = 0
    total: int = 0
    min_value: Any = None
    max_value: Any = None
    histogram: tuple = ()
    #: ((value, fraction-of-total), ...) for over-represented values —
    #: what lets an equality estimate see skew the 1/distinct model
    #: cannot (the cardinality-feedback loop relies on this: a targeted
    #: re-ANALYZE rebuilds the MCV list and the next plan's estimate for
    #: the hot literal corrects).
    mcv: tuple = ()

    @property
    def non_null_fraction(self) -> float:
        if self.total <= 0:
            return 1.0
        return (self.total - self.null_count) / self.total

    def eq_selectivity(self, value: Any = None) -> float:
        """Estimated fraction of rows matching ``col = literal``.

        With a known ``value``, the MCV list answers exactly for hot
        values, and the remaining mass spread over the remaining
        distinct values answers for everything else.  Without one
        (``None`` never appears as an equality literal), the uniform
        ``1/distinct`` estimate applies.
        """
        if self.distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        if value is not None and self.mcv:
            for mcv_value, fraction in self.mcv:
                if mcv_value == value:
                    return max(fraction, MIN_SELECTIVITY)
            rest = self.non_null_fraction - sum(f for _, f in self.mcv)
            rest_distinct = self.distinct - len(self.mcv)
            if rest_distinct > 0:
                return max(rest / rest_distinct, MIN_SELECTIVITY)
        return max(self.non_null_fraction / self.distinct, MIN_SELECTIVITY)

    def le_fraction(self, value: Any, inclusive: bool) -> float:
        """Estimated fraction of non-null values ``<= value`` (or ``<``)."""
        if not self.histogram:
            return DEFAULT_RANGE_SELECTIVITY
        points = self.histogram
        try:
            if inclusive:
                pos = bisect.bisect_right(points, value)
            else:
                pos = bisect.bisect_left(points, value)
        except TypeError:
            return DEFAULT_RANGE_SELECTIVITY
        return pos / len(points)

    def range_selectivity(self, low: Any, high: Any,
                          include_low: bool, include_high: bool) -> float:
        """Estimated fraction of rows in the given (half-open) bounds."""
        if not self.histogram:
            return DEFAULT_RANGE_SELECTIVITY
        hi_frac = 1.0 if high is None else self.le_fraction(high, include_high)
        lo_frac = 0.0 if low is None else self.le_fraction(low, not include_low)
        frac = (hi_frac - lo_frac) * self.non_null_fraction
        return min(max(frac, MIN_SELECTIVITY), 1.0)


@dataclass
class TableStats:
    """Statistics for one table at one analyzed point in time."""

    table: str
    row_count: int = 0
    analyzed_rows: int = 0
    version: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)


def _build_column_stats(values: list[Any]) -> ColumnStats:
    """Summarize one column's values (including ``None`` entries)."""
    total = len(values)
    non_null = [v for v in values if v is not None]
    stats = ColumnStats(total=total, null_count=total - len(non_null))
    if not non_null:
        return stats
    try:
        counts = Counter(non_null)
    except TypeError:
        stats.distinct = len({repr(v) for v in non_null})
        return stats
    stats.distinct = len(counts)
    # Keep only values over-represented vs uniform: count * distinct >
    # non-null total means the value is more frequent than 1/distinct.
    n_non_null = len(non_null)
    stats.mcv = tuple(
        (value, count / total)
        for value, count in counts.most_common(MCV_ENTRIES)
        if count * stats.distinct > n_non_null
    )
    try:
        ordered = sorted(non_null)
    except TypeError:
        # Mixed incomparable types: keep the distinct count, skip the
        # order statistics (range estimates fall back to the default).
        return stats
    stats.min_value = ordered[0]
    stats.max_value = ordered[-1]
    n = len(ordered)
    points = tuple(
        ordered[min(round(i * (n - 1) / HISTOGRAM_BUCKETS), n - 1)]
        for i in range(HISTOGRAM_BUCKETS + 1)
    )
    stats.histogram = points
    return stats


class StatisticsManager:
    """Per-table statistics, versioned by the commit-listener stream.

    Obtained via :meth:`Database.statistics`; one instance per database.
    Thread-safe: the version map and the stats cache are guarded by one
    lock, and ANALYZE scans copy rows under the engine's mutate lock.
    """

    def __init__(self, db: "Database",
                 staleness_fraction: float = 0.25,
                 sample_threshold: int = 100_000,
                 sample_size: int = 20_000,
                 feedback_ratio: float = 4.0) -> None:
        self._db = db
        self._staleness = staleness_fraction
        self._sample_threshold = sample_threshold
        self._sample_size = sample_size
        self.feedback = CardinalityFeedback(ratio_threshold=feedback_ratio)
        self._lock = threading.Lock()
        self._versions: dict[str, int] = {}
        self._stats: dict[str, TableStats] = {}
        db.add_commit_listener(self._on_commit)

    # ------------------------------------------------------------ versions

    def _on_commit(self, tables: frozenset[str]) -> None:
        with self._lock:
            for table in tables:
                self._versions[table] = self._versions.get(table, 0) + 1

    def version(self, table: str) -> int:
        """Monotone counter: bumps on every commit/schema change of
        ``table``.  The result cache keys on this."""
        with self._lock:
            return self._versions.get(table, 0)

    # --------------------------------------------------------------- stats

    def analyze(self, table: str) -> TableStats:
        """Statistics pass: full scan, or sampled above the threshold.

        Raises:
            KeyError: unknown table.
        """
        db = self._db
        with self._lock:
            version = self._versions.get(table, 0)
        with db._mutate_lock:
            schema = db.schema(table)
            heap = db._table(table)
            count = len(heap)
            if count > self._sample_threshold:
                stats = self._analyze_sampled(table, heap, schema, count,
                                              version)
                with self._lock:
                    self._stats[table] = stats
                metrics.get_registry().inc("planner.analyze.sampled")
                return stats
            columns: dict[str, list[Any]] = {c: [] for c in schema.column_names}
            for row in heap.scan():
                for name in columns:
                    columns[name].append(row.values.get(name))
        stats = TableStats(
            table=table, row_count=count, analyzed_rows=count, version=version,
            columns={name: _build_column_stats(vals)
                     for name, vals in columns.items()},
        )
        with self._lock:
            self._stats[table] = stats
        metrics.get_registry().inc("planner.analyze.full")
        return stats

    def _analyze_sampled(self, table: str, heap: Any, schema: Any,
                         count: int, version: int) -> TableStats:
        """One sampled pass (caller holds the engine mutate lock).

        Histograms and distinct counts come from ``sample_size`` uniformly
        sampled positions; null counts and min/max are exact (zone maps
        per segment, value walk over the tail).  The RNG seed is derived
        from the table name and row count, so the same table state always
        yields the same sample.
        """
        rng = random.Random(f"analyze:{table}:{count}")
        k = min(self._sample_size, count)
        positions = sorted(rng.sample(range(count), k))
        names = list(schema.column_names)
        samples: dict[str, list[Any]] = {name: [] for name in names}
        null_counts = {name: 0 for name in names}
        bounds: dict[str, list[Any]] = {name: [None, None] for name in names}

        def fold(mm: list[Any], lo: Any, hi: Any) -> None:
            try:
                if lo is not None and (mm[0] is None or lo < mm[0]):
                    mm[0] = lo
                if hi is not None and (mm[1] is None or hi > mm[1]):
                    mm[1] = hi
            except TypeError:
                pass  # mixed incomparable types: bounds stay partial

        pos_index = 0
        base = 0
        # Enumerate segments + tail directly rather than via scan_units():
        # sampling needs a deterministic enumeration of every row, not
        # global rid order, and scan_units() collapses sharded tables
        # (whose per-shard rid ranges interleave) into one merged
        # decoded-rows unit — losing the zone-map fast path entirely.
        units: list[tuple[str, Any]] = [
            ("segment", s) for s in heap._segments if s.count]
        if heap._rows:
            units.append(("rows", heap._tail_rows()))
        for kind, unit in units:
            if kind == "segment":
                for name in names:
                    col = unit.columns[name]
                    null_counts[name] += col.null_count
                    fold(bounds[name], col.min_value, col.max_value)
                end = base + unit.count
                while pos_index < k and positions[pos_index] < end:
                    p = positions[pos_index] - base
                    for name in names:
                        samples[name].append(unit.columns[name].value_at(p))
                    pos_index += 1
                base = end
                continue
            for row in unit:
                values = row.values
                for name in names:
                    v = values.get(name)
                    if v is None:
                        null_counts[name] += 1
                    else:
                        fold(bounds[name], v, v)
                if pos_index < k and positions[pos_index] == base:
                    for name in names:
                        samples[name].append(values.get(name))
                    pos_index += 1
                base += 1
        columns: dict[str, ColumnStats] = {}
        for name in names:
            cs = _build_column_stats(samples[name])
            sample_non_null = sum(1 for v in samples[name] if v is not None)
            cs.total = count
            cs.null_count = null_counts[name]
            non_null_total = count - null_counts[name]
            if bounds[name][0] is not None:
                cs.min_value = bounds[name][0]
            if bounds[name][1] is not None:
                cs.max_value = bounds[name][1]
            if cs.distinct and sample_non_null:
                if cs.distinct >= sample_non_null / 10:
                    # High-cardinality sample: scale the distinct count up
                    # by the sampling fraction (capped at the non-null
                    # total).  Low-cardinality samples are kept as-is —
                    # a uniform sample of 20k rows almost surely saw
                    # every value of a small domain.
                    frac = sample_non_null / max(non_null_total, 1)
                    cs.distinct = min(
                        non_null_total,
                        max(cs.distinct, round(cs.distinct / frac)))
            columns[name] = cs
        return TableStats(table=table, row_count=count, analyzed_rows=count,
                          version=version, columns=columns)

    def stats(self, table: str) -> TableStats:
        """Current statistics, refreshed as cheaply as staleness allows.

        Unchanged version → cached as-is.  Small drift → exact live row
        count folded in, distributions reused (incremental path).  Large
        drift or never analyzed → full :meth:`analyze`.

        Raises:
            KeyError: unknown table.
        """
        pending = self.feedback.pending(table)
        if pending:
            refreshed = self._feedback_reanalyze(table, pending)
            if refreshed is not None:
                return refreshed
        with self._lock:
            version = self._versions.get(table, 0)
            cached = self._stats.get(table)
        if cached is not None and cached.version == version:
            return cached
        live_rows = self._db.table_size(table)
        if cached is not None and cached.analyzed_rows > 0:
            drift = abs(live_rows - cached.analyzed_rows)
            if drift <= self._staleness * cached.analyzed_rows:
                with self._lock:
                    cached.row_count = live_rows
                    cached.version = version
                metrics.get_registry().inc("planner.analyze.incremental")
                return cached
        return self.analyze(table)

    # ------------------------------------------------------------ feedback

    def record_predicate_feedback(self, table: str,
                                  keys: list[tuple[str, str]],
                                  est_rows: float, actual_rows: int) -> None:
        """Report one planned execution's estimated-vs-actual source
        cardinality, attributed to the (column, shape) pairs of the
        predicate.  Crossing the feedback ratio marks the columns
        pending; the next ``stats()`` call re-analyzes just them."""
        with self._lock:
            version = self._versions.get(table, 0)
        registry = metrics.get_registry()
        for column, shape in keys:
            if self.feedback.record(table, column, shape,
                                    est_rows, actual_rows, version):
                registry.inc("planner.feedback.misestimates")
        registry.inc("planner.feedback.observations")

    def _feedback_reanalyze(self, table: str,
                            pending: tuple[str, ...]) -> TableStats | None:
        """Targeted re-ANALYZE of the pending columns of ``table``.

        One scan collects only the offending columns and splices their
        rebuilt :class:`ColumnStats` into the cached table statistics
        (other columns keep their distributions).  Returns None when a
        full ANALYZE is the right tool instead — never-analyzed table,
        unknown table, or no pending column actually in the schema —
        after clearing the pending marks so ``stats()`` proceeds.
        """
        db = self._db
        with self._lock:
            version = self._versions.get(table, 0)
            cached = self._stats.get(table)
        try:
            schema = db.schema(table)
        except KeyError:
            self.feedback.resolve(table, pending, version)
            return None
        targets = [c for c in pending if schema.has_column(c)]
        if cached is None or not targets:
            self.feedback.resolve(table, pending, version)
            return None
        with db._mutate_lock:
            heap = db._table(table)
            count = len(heap)
            collected: dict[str, list[Any]] = {c: [] for c in targets}
            for row in heap.scan():
                values = row.values
                for name in targets:
                    collected[name].append(values.get(name))
        rebuilt = {name: _build_column_stats(vals)
                   for name, vals in collected.items()}
        with self._lock:
            cached = self._stats.get(table)
            if cached is None:
                stats = None
            else:
                columns = dict(cached.columns)
                columns.update(rebuilt)
                stats = TableStats(table=table, row_count=count,
                                   analyzed_rows=count, version=version,
                                   columns=columns)
                self._stats[table] = stats
        self.feedback.resolve(table, pending, version)
        metrics.get_registry().inc("planner.analyze.feedback")
        return stats

    # --------------------------------------------------------- estimation

    def row_count(self, table: str) -> int:
        """Exact live row count (always current, never estimated)."""
        return self._db.table_size(table)

    def eq_selectivity(self, table: str, column: str,
                       value: Any = None) -> float:
        column_stats = self.stats(table).column(column)
        if column_stats is None or column_stats.total == 0:
            return DEFAULT_EQ_SELECTIVITY
        return column_stats.eq_selectivity(value)

    def range_selectivity(self, table: str, column: str, low: Any, high: Any,
                          include_low: bool, include_high: bool) -> float:
        column_stats = self.stats(table).column(column)
        if column_stats is None or column_stats.total == 0:
            return DEFAULT_RANGE_SELECTIVITY
        return column_stats.range_selectivity(low, high,
                                              include_low, include_high)
