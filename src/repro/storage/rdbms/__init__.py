"""Mini relational engine.

The paper's storage-layer discussion puts the *final*, concurrently-edited
structure in an RDBMS "to ensure fast and correct concurrency control".
This subpackage is that device: a small but real relational engine with

* typed schemas and heap tables (:mod:`repro.storage.rdbms.table`),
* hash and sorted secondary indexes (:mod:`repro.storage.rdbms.index`),
* a write-ahead log with checkpoints and ARIES-style redo/undo recovery
  (:mod:`repro.storage.rdbms.wal`),
* strict two-phase locking with waits-for deadlock detection
  (:mod:`repro.storage.rdbms.lockmgr`),
* the engine facade (:mod:`repro.storage.rdbms.engine`),
* a SQL subset used by the user layer (:mod:`repro.storage.rdbms.sql`),
* per-table statistics (:mod:`repro.storage.rdbms.stats`) feeding the
  cost-based planner (:mod:`repro.storage.rdbms.planner`), and
* a commit-invalidated query-result cache
  (:mod:`repro.storage.rdbms.qcache`).
"""

from repro.storage.rdbms.types import Column, ColumnType, TableSchema, SchemaError
from repro.storage.rdbms.table import HeapTable, Row
from repro.storage.rdbms.index import HashIndex, SortedIndex
from repro.storage.rdbms.engine import Database, Transaction, TransactionAborted
from repro.storage.rdbms.lockmgr import DeadlockError, LockManager, LockMode
from repro.storage.rdbms.sql import SqlError, execute_sql, normalize_sql
from repro.storage.rdbms.stats import StatisticsManager
from repro.storage.rdbms.qcache import QueryResultCache

__all__ = [
    "Column",
    "ColumnType",
    "TableSchema",
    "SchemaError",
    "HeapTable",
    "Row",
    "HashIndex",
    "SortedIndex",
    "Database",
    "Transaction",
    "TransactionAborted",
    "LockManager",
    "LockMode",
    "DeadlockError",
    "SqlError",
    "execute_sql",
    "normalize_sql",
    "StatisticsManager",
    "QueryResultCache",
]
