"""Column types and table schemas for the mini relational engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class SchemaError(Exception):
    """Raised on schema violations (bad column, type mismatch, ...)."""


class ColumnType(enum.Enum):
    """Supported column types."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    def validate(self, value: Any) -> Any:
        """Coerce/validate a Python value for this column type.

        ``None`` is always allowed (SQL NULL).  Ints are accepted for FLOAT
        columns (widening); bools are NOT accepted for INT (Python quirk).

        Raises:
            SchemaError: if the value does not fit the type.
        """
        if value is None:
            return None
        if self is ColumnType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected int, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected float, got {value!r}")
            return float(value)
        if self is ColumnType.TEXT:
            if not isinstance(value, str):
                raise SchemaError(f"expected str, got {value!r}")
            return value
        if self is ColumnType.BOOL:
            if not isinstance(value, bool):
                raise SchemaError(f"expected bool, got {value!r}")
            return value
        raise SchemaError(f"unknown column type {self!r}")


@dataclass(frozen=True)
class Column:
    """One column definition.

    Attributes:
        name: column name (case-sensitive, lowercase by convention).
        col_type: the :class:`ColumnType`.
        nullable: whether NULL is permitted.
    """

    name: str
    col_type: ColumnType
    nullable: bool = True

    def validate(self, value: Any) -> Any:
        if value is None and not self.nullable:
            raise SchemaError(f"column {self.name!r} is NOT NULL")
        return self.col_type.validate(value)


@dataclass(frozen=True)
class TableSchema:
    """An ordered set of columns plus an optional primary-key column.

    Attributes:
        name: table name.
        columns: ordered column definitions.
        primary_key: name of the PK column, or None; PK values must be
            unique and non-null.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: str | None = None

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if self.primary_key is not None and self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column by name.

        Raises:
            SchemaError: if absent.
        """
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def validate_row(self, values: dict[str, Any]) -> dict[str, Any]:
        """Validate and normalize a full row dict.

        Unknown keys raise; missing nullable columns become None.

        Raises:
            SchemaError: on unknown columns, type errors, or NOT NULL
                violations.
        """
        known = set(self.column_names)
        unknown = set(values) - known
        if unknown:
            raise SchemaError(
                f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
            )
        row: dict[str, Any] = {}
        for col in self.columns:
            row[col.name] = col.validate(values.get(col.name))
        return row

    def with_column(self, column: Column) -> "TableSchema":
        """A copy of this schema with one more column (schema evolution)."""
        if self.has_column(column.name):
            raise SchemaError(f"column {column.name!r} already exists")
        return TableSchema(self.name, self.columns + (column,), self.primary_key)

    def without_column(self, name: str) -> "TableSchema":
        """A copy without the named column.

        Raises:
            SchemaError: if the column is absent or is the primary key.
        """
        if not self.has_column(name):
            raise SchemaError(f"no column {name!r}")
        if name == self.primary_key:
            raise SchemaError("cannot drop the primary key column")
        return TableSchema(
            self.name,
            tuple(c for c in self.columns if c.name != name),
            self.primary_key,
        )

    def renamed_column(self, old: str, new: str) -> "TableSchema":
        """A copy with one column renamed."""
        if not self.has_column(old):
            raise SchemaError(f"no column {old!r}")
        if self.has_column(new):
            raise SchemaError(f"column {new!r} already exists")
        cols = tuple(
            Column(new, c.col_type, c.nullable) if c.name == old else c
            for c in self.columns
        )
        pk = new if self.primary_key == old else self.primary_key
        return TableSchema(self.name, cols, pk)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (used by WAL checkpoints and schema versioning)."""
        return {
            "name": self.name,
            "columns": [
                {"name": c.name, "type": c.col_type.value, "nullable": c.nullable}
                for c in self.columns
            ],
            "primary_key": self.primary_key,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "TableSchema":
        return TableSchema(
            name=data["name"],
            columns=tuple(
                Column(c["name"], ColumnType(c["type"]), c["nullable"])
                for c in data["columns"]
            ),
            primary_key=data["primary_key"],
        )
