"""Write-ahead logging and checkpointing.

The log is a JSONL file of records, each with a log sequence number (LSN),
a transaction id, and a type:

* ``begin`` / ``commit`` / ``abort`` — transaction lifecycle,
* ``insert`` / ``delete`` / ``update`` — logical row operations carrying
  before/after images,
* ``insert_many`` — one record for a whole batch of inserted rows (the
  bulk-load fast path: rids + values for every row in the batch),
* ``create_table`` / ``alter_schema`` — DDL,
* ``compact`` — a columnar freeze of a table's committed tail rows
  (txn 0, DDL-style: replay re-runs the deterministic freeze at the same
  log position, reproducing the segment layout),
* ``reshard`` — a shard-layout change (txn 0, DDL-style like ``compact``:
  routing is seed-stable, so replaying the spec at the same log position
  reproduces the identical shard membership),
* ``checkpoint`` — marker written after a consistent snapshot of all tables
  has been dumped to the checkpoint file.

Recovery (see :meth:`repro.storage.rdbms.engine.Database.recover`) loads the
latest checkpoint, then replays logical operations of *committed*
transactions in LSN order; operations of transactions without a commit
record are discarded (redo-only recovery over a rebuilt state, which is
correct because recovery always reconstructs from the checkpoint rather
than trusting the crashed in-memory image).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.telemetry import metrics

LOG_FILE = "wal.jsonl"
CHECKPOINT_FILE = "checkpoint.json"


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry."""

    lsn: int
    txn_id: int
    rec_type: str
    payload: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {"lsn": self.lsn, "txn": self.txn_id, "type": self.rec_type, **self.payload}
        )

    @staticmethod
    def from_json(line: str) -> "LogRecord":
        data = json.loads(line)
        lsn = data.pop("lsn")
        txn = data.pop("txn")
        rec_type = data.pop("type")
        return LogRecord(lsn=lsn, txn_id=txn, rec_type=rec_type, payload=data)


class WriteAheadLog:
    """Append-only JSONL write-ahead log with checkpoint support."""

    def __init__(self, directory: str, sync: bool = False) -> None:
        """Create or reopen a WAL in ``directory``.

        Args:
            directory: where ``wal.jsonl`` and ``checkpoint.json`` live.
            sync: fsync after every append (slow but durable); benchmarks
                toggle this to show the durability/throughput trade-off.
        """
        self._dir = directory
        self._sync = sync
        os.makedirs(directory, exist_ok=True)
        self._path = os.path.join(directory, LOG_FILE)
        self._next_lsn = self._recover_next_lsn()
        self._file = open(self._path, "a", encoding="utf-8")

    # ------------------------------------------------------------------ API

    def append(self, txn_id: int, rec_type: str, **payload: Any) -> LogRecord:
        """Append one record and return it (LSN assigned here)."""
        record = LogRecord(self._next_lsn, txn_id, rec_type, payload)
        self._next_lsn += 1
        line = record.to_json()
        self._file.write(line + "\n")
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())
        registry = metrics.get_registry()
        registry.inc("rdbms.wal.records")
        registry.inc(f"rdbms.wal.records.{rec_type}")
        registry.inc("rdbms.wal.bytes", len(line) + 1)
        return record

    def records(self) -> Iterator[LogRecord]:
        """Replay all records currently on disk, in LSN order.

        A corrupt *suffix* — one or more unparseable trailing records, as
        a crash mid-append or a partially synced page leaves behind — is
        tolerated: the bad tail is dropped (it cannot contain a committed
        transaction's commit record followed by valid data) and counted
        in the ``recovery.truncated_records`` telemetry counter.  (Reopen
        already truncates such a tail from the file — see
        :meth:`_recover_next_lsn` — so this path is a second line of
        defense for logs read without reopening.)  Corruption *followed
        by* valid records indicates real damage and raises.

        Raises:
            ValueError: corrupted record in the middle of the log.
        """
        if not os.path.exists(self._path):
            return
        with open(self._path, "r", encoding="utf-8") as f:
            lines = [l.strip() for l in f]
        non_empty = [l for l in lines if l]
        parsed: list[LogRecord] = []
        bad_from: int | None = None  # start of the (candidate) corrupt suffix
        for index, line in enumerate(non_empty):
            try:
                record = LogRecord.from_json(line)
            except (json.JSONDecodeError, KeyError) as exc:
                if bad_from is None:
                    bad_from = index
                last_error = exc
            else:
                if bad_from is not None:
                    raise ValueError(
                        f"corrupted WAL record at position {bad_from}"
                    ) from last_error
                parsed.append(record)
        if bad_from is not None:
            truncated = len(non_empty) - bad_from
            metrics.get_registry().inc("recovery.truncated_records",
                                       truncated)
        yield from parsed

    def write_checkpoint(self, state: dict[str, Any]) -> None:
        """Dump a consistent snapshot and truncate the log.

        The snapshot is written atomically (tmp + rename) *before* the log
        is truncated, so a crash between the two steps leaves a recoverable
        state (old log + new checkpoint replays to the same result because
        replay is idempotent over the snapshot).
        """
        tmp = os.path.join(self._dir, CHECKPOINT_FILE + ".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(state, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, os.path.join(self._dir, CHECKPOINT_FILE))
        self._file.close()
        self._file = open(self._path, "w", encoding="utf-8")
        self.append(0, "checkpoint")

    def read_checkpoint(self) -> dict[str, Any] | None:
        """Latest checkpoint snapshot, or None."""
        path = os.path.join(self._dir, CHECKPOINT_FILE)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def size_bytes(self) -> int:
        """Current on-disk log size."""
        return os.path.getsize(self._path) if os.path.exists(self._path) else 0

    # ------------------------------------------------------------ internals

    def _recover_next_lsn(self) -> int:
        """Next LSN — and truncate a torn/corrupt *suffix* on reopen.

        A crash mid-append leaves unparseable trailing lines.  They must
        be physically removed before this handle appends again: leaving
        them in place would strand the new (valid) records *behind*
        corruption, which the next recovery correctly treats as mid-log
        damage and refuses to replay.  A bad line with valid records
        after it really is mid-log damage, so the file is left untouched
        for :meth:`records` to report.
        """
        last = -1
        if not os.path.exists(self._path):
            return 0
        with open(self._path, "rb") as f:
            data = f.read()
        good_end = 0  # byte offset just past the last parseable record
        offset = 0
        bad = 0
        midlog = False
        for raw in data.splitlines(keepends=True):
            offset += len(raw)
            line = raw.decode("utf-8", "replace").strip()
            if not line:
                if not bad:
                    good_end = offset
                continue
            try:
                lsn = json.loads(line)["lsn"]
            except (json.JSONDecodeError, KeyError, TypeError):
                bad += 1
                continue
            if bad:
                midlog = True  # valid data after corruption: real damage
                break
            last = lsn
            good_end = offset
        if bad and not midlog and good_end < len(data):
            with open(self._path, "r+b") as f:
                f.truncate(good_end)
            metrics.get_registry().inc("recovery.truncated_records", bad)
        return last + 1
