"""Heap tables: in-memory row storage with stable row IDs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.storage.rdbms.types import SchemaError, TableSchema


@dataclass(frozen=True)
class Row:
    """A stored row: stable ``rid`` plus column values."""

    rid: int
    values: dict[str, Any]

    def __getitem__(self, column: str) -> Any:
        return self.values[column]


class HeapTable:
    """An unordered collection of rows addressed by row ID.

    The engine layers locking, logging, and indexing on top; the heap table
    itself only enforces the schema and primary-key uniqueness.
    """

    def __init__(self, schema: TableSchema) -> None:
        self._schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_rid = 0
        self._pk_index: dict[Any, int] = {}

    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------- mutation

    def insert(self, values: dict[str, Any], rid: int | None = None) -> Row:
        """Insert a row; returns the stored :class:`Row`.

        ``rid`` may be forced (used by recovery replay); otherwise assigned.

        Raises:
            SchemaError: on schema or primary-key violations.
        """
        row_values = self._schema.validate_row(values)
        pk = self._schema.primary_key
        if pk is not None:
            key = row_values[pk]
            if key is None:
                raise SchemaError(f"primary key {pk!r} may not be NULL")
            if key in self._pk_index:
                raise SchemaError(f"duplicate primary key {key!r}")
        if rid is None:
            rid = self._next_rid
        if rid in self._rows:
            raise SchemaError(f"row id {rid} already in use")
        self._next_rid = max(self._next_rid, rid + 1)
        self._rows[rid] = row_values
        if pk is not None:
            self._pk_index[row_values[pk]] = rid
        return Row(rid=rid, values=dict(row_values))

    def insert_many(self, values_list: list[dict[str, Any]]) -> list[Row]:
        """Insert a batch of rows atomically; returns the stored rows.

        All rows are validated (schema + primary-key uniqueness, including
        duplicates *within* the batch) before any row is stored, so a
        failure leaves the table untouched.

        Raises:
            SchemaError: on schema or primary-key violations.
        """
        validated = [self._schema.validate_row(v) for v in values_list]
        pk = self._schema.primary_key
        if pk is not None:
            batch_keys: set[Any] = set()
            for row_values in validated:
                key = row_values[pk]
                if key is None:
                    raise SchemaError(f"primary key {pk!r} may not be NULL")
                if key in self._pk_index or key in batch_keys:
                    raise SchemaError(f"duplicate primary key {key!r}")
                batch_keys.add(key)
        rows: list[Row] = []
        for row_values in validated:
            rid = self._next_rid
            self._next_rid += 1
            self._rows[rid] = row_values
            if pk is not None:
                self._pk_index[row_values[pk]] = rid
            rows.append(Row(rid=rid, values=dict(row_values)))
        return rows

    def update(self, rid: int, changes: dict[str, Any]) -> tuple[Row, Row]:
        """Apply column changes to one row; returns (old_row, new_row).

        Raises:
            KeyError: unknown rid.
            SchemaError: schema or primary-key violations.
        """
        if rid not in self._rows:
            raise KeyError(rid)
        old_values = dict(self._rows[rid])
        merged = dict(old_values)
        merged.update(changes)
        new_values = self._schema.validate_row(merged)
        pk = self._schema.primary_key
        if pk is not None and new_values[pk] != old_values[pk]:
            if new_values[pk] is None:
                raise SchemaError(f"primary key {pk!r} may not be NULL")
            if new_values[pk] in self._pk_index:
                raise SchemaError(f"duplicate primary key {new_values[pk]!r}")
            del self._pk_index[old_values[pk]]
            self._pk_index[new_values[pk]] = rid
        self._rows[rid] = new_values
        return Row(rid, old_values), Row(rid, dict(new_values))

    def delete(self, rid: int) -> Row:
        """Delete one row; returns the removed row.

        Raises:
            KeyError: unknown rid.
        """
        if rid not in self._rows:
            raise KeyError(rid)
        values = self._rows.pop(rid)
        pk = self._schema.primary_key
        if pk is not None:
            self._pk_index.pop(values[pk], None)
        return Row(rid, values)

    def replace_schema(self, schema: TableSchema,
                       migrate: Callable[[dict[str, Any]], dict[str, Any]]) -> None:
        """Swap in a new schema, rewriting every row through ``migrate``.

        Used by the schema-evolution subsystem (Figure 1 Part IV).
        """
        new_rows: dict[int, dict[str, Any]] = {}
        new_pk: dict[Any, int] = {}
        pk = schema.primary_key
        for rid, values in self._rows.items():
            migrated = schema.validate_row(migrate(dict(values)))
            if pk is not None:
                key = migrated[pk]
                if key is None or key in new_pk:
                    raise SchemaError(f"migration breaks primary key at rid {rid}")
                new_pk[key] = rid
            new_rows[rid] = migrated
        self._schema = schema
        self._rows = new_rows
        self._pk_index = new_pk

    # ---------------------------------------------------------------- reads

    def get(self, rid: int) -> Row:
        """Fetch by row ID.

        Raises:
            KeyError: unknown rid.
        """
        return Row(rid, dict(self._rows[rid]))

    def get_by_pk(self, key: Any) -> Row | None:
        """Fetch by primary-key value, or None."""
        rid = self._pk_index.get(key)
        if rid is None:
            return None
        return self.get(rid)

    def scan(self) -> Iterator[Row]:
        """Yield all rows in rid order."""
        for rid in sorted(self._rows):
            yield Row(rid, dict(self._rows[rid]))

    def scan_where(self, predicate: Callable[[dict[str, Any]], bool]) -> Iterator[Row]:
        """Filtered scan."""
        for row in self.scan():
            if predicate(row.values):
                yield row

    def rids(self) -> list[int]:
        return sorted(self._rows)
