"""Heap tables: in-memory row storage with stable row IDs.

Since PR 6 a heap table has two regions (DESIGN.md §12):

* the **row-store tail** — the mutable ``rid -> values`` dict every write
  lands in, exactly as before;
* zero or more immutable **columnar segments** — cold rows frozen by
  :meth:`HeapTable.compact` into the typed layout of
  :mod:`repro.storage.rdbms.segments`.

Readers never observe the split: :meth:`scan` merges segments and tail in
rid order, :meth:`get` consults both, and any update/delete of a frozen
row *melts* its segment back into the tail first (copy-on-write at
segment granularity).  The vectorized executor reads the regions
separately via :meth:`scan_units`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.storage.rdbms.segments import SEGMENT_TARGET_ROWS, Segment
from repro.storage.rdbms.types import SchemaError, TableSchema
from repro.telemetry import metrics


@dataclass(frozen=True)
class Row:
    """A stored row: stable ``rid`` plus column values."""

    rid: int
    values: dict[str, Any]

    def __getitem__(self, column: str) -> Any:
        return self.values[column]


class HeapTable:
    """An unordered collection of rows addressed by row ID.

    The engine layers locking, logging, and indexing on top; the heap table
    itself only enforces the schema and primary-key uniqueness.
    """

    def __init__(self, schema: TableSchema) -> None:
        self._schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_rid = 0
        self._pk_index: dict[Any, int] = {}
        self._segments: list[Segment] = []

    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    def __len__(self) -> int:
        return len(self._rows) + sum(s.count for s in self._segments)

    @property
    def tail_size(self) -> int:
        """Rows still in the mutable row-store tail."""
        return len(self._rows)

    @property
    def segments(self) -> list[Segment]:
        return list(self._segments)

    def segment_count(self) -> int:
        return len(self._segments)

    # ------------------------------------------------------------- mutation

    def insert(self, values: dict[str, Any], rid: int | None = None) -> Row:
        """Insert a row; returns the stored :class:`Row`.

        ``rid`` may be forced (used by recovery replay); otherwise assigned.

        Raises:
            SchemaError: on schema or primary-key violations.
        """
        row_values = self._schema.validate_row(values)
        pk = self._schema.primary_key
        if pk is not None:
            key = row_values[pk]
            if key is None:
                raise SchemaError(f"primary key {pk!r} may not be NULL")
            if key in self._pk_index:
                raise SchemaError(f"duplicate primary key {key!r}")
        if rid is None:
            rid = self._next_rid
        if rid in self._rows or self._segment_of(rid) is not None:
            raise SchemaError(f"row id {rid} already in use")
        self._next_rid = max(self._next_rid, rid + 1)
        self._rows[rid] = row_values
        if pk is not None:
            self._pk_index[row_values[pk]] = rid
        return Row(rid=rid, values=dict(row_values))

    def insert_many(self, values_list: list[dict[str, Any]]) -> list[Row]:
        """Insert a batch of rows atomically; returns the stored rows.

        All rows are validated (schema + primary-key uniqueness, including
        duplicates *within* the batch) before any row is stored, so a
        failure leaves the table untouched.

        Raises:
            SchemaError: on schema or primary-key violations.
        """
        validated = [self._schema.validate_row(v) for v in values_list]
        pk = self._schema.primary_key
        if pk is not None:
            batch_keys: set[Any] = set()
            for row_values in validated:
                key = row_values[pk]
                if key is None:
                    raise SchemaError(f"primary key {pk!r} may not be NULL")
                if key in self._pk_index or key in batch_keys:
                    raise SchemaError(f"duplicate primary key {key!r}")
                batch_keys.add(key)
        rows: list[Row] = []
        for row_values in validated:
            rid = self._next_rid
            self._next_rid += 1
            self._rows[rid] = row_values
            if pk is not None:
                self._pk_index[row_values[pk]] = rid
            rows.append(Row(rid=rid, values=dict(row_values)))
        return rows

    def update(self, rid: int, changes: dict[str, Any]) -> tuple[Row, Row]:
        """Apply column changes to one row; returns (old_row, new_row).

        A frozen row's segment is melted back into the tail first.

        Raises:
            KeyError: unknown rid.
            SchemaError: schema or primary-key violations.
        """
        if rid not in self._rows:
            self._melt_containing(rid)
        if rid not in self._rows:
            raise KeyError(rid)
        old_values = dict(self._rows[rid])
        merged = dict(old_values)
        merged.update(changes)
        new_values = self._schema.validate_row(merged)
        pk = self._schema.primary_key
        if pk is not None and new_values[pk] != old_values[pk]:
            if new_values[pk] is None:
                raise SchemaError(f"primary key {pk!r} may not be NULL")
            if new_values[pk] in self._pk_index:
                raise SchemaError(f"duplicate primary key {new_values[pk]!r}")
            del self._pk_index[old_values[pk]]
            self._pk_index[new_values[pk]] = rid
        self._rows[rid] = new_values
        return Row(rid, old_values), Row(rid, dict(new_values))

    def delete(self, rid: int) -> Row:
        """Delete one row (melting its segment if frozen); returns it.

        Raises:
            KeyError: unknown rid.
        """
        if rid not in self._rows:
            self._melt_containing(rid)
        if rid not in self._rows:
            raise KeyError(rid)
        values = self._rows.pop(rid)
        pk = self._schema.primary_key
        if pk is not None:
            self._pk_index.pop(values[pk], None)
        return Row(rid, values)

    def replace_schema(self, schema: TableSchema,
                       migrate: Callable[[dict[str, Any]], dict[str, Any]]) -> None:
        """Swap in a new schema, rewriting every row through ``migrate``.

        Used by the schema-evolution subsystem (Figure 1 Part IV).
        Segments are melted first: they are typed against the old schema.
        """
        self.melt_all()
        new_rows: dict[int, dict[str, Any]] = {}
        new_pk: dict[Any, int] = {}
        pk = schema.primary_key
        for rid, values in self._rows.items():
            migrated = schema.validate_row(migrate(dict(values)))
            if pk is not None:
                key = migrated[pk]
                if key is None or key in new_pk:
                    raise SchemaError(f"migration breaks primary key at rid {rid}")
                new_pk[key] = rid
            new_rows[rid] = migrated
        self._schema = schema
        self._rows = new_rows
        self._pk_index = new_pk

    # ------------------------------------------------------------ segments

    def compact(self, max_rid: int | None = None,
                target_rows: int = SEGMENT_TARGET_ROWS) -> tuple[int, int, int]:
        """Freeze tail rows with ``rid <= max_rid`` into columnar segments.

        Chunking is deterministic (sorted rids, ``target_rows`` per
        segment) so WAL replay of a ``compact`` record reproduces the
        exact same layout.  Returns ``(segments_created, rows_frozen,
        max_rid_used)``.
        """
        if target_rows < 1:
            raise ValueError("target_rows must be >= 1")
        if max_rid is None:
            max_rid = self._next_rid - 1
        eligible = sorted(r for r in self._rows if r <= max_rid)
        created = 0
        for start in range(0, len(eligible), target_rows):
            chunk = eligible[start:start + target_rows]
            segment = Segment.from_rows(
                self._schema, [(rid, self._rows[rid]) for rid in chunk])
            self._segments.append(segment)
            for rid in chunk:
                del self._rows[rid]
            created += 1
        if eligible:
            registry = metrics.get_registry()
            registry.inc("segments.created", created)
            registry.inc("segments.rows_frozen", len(eligible))
        return created, len(eligible), max_rid

    def melt_all(self) -> None:
        """Decode every segment back into the row-store tail."""
        for segment in list(self._segments):
            self._melt_segment(segment)

    def _melt_segment(self, segment: Segment) -> None:
        self._segments.remove(segment)
        for rid, values in segment.iter_rows():
            self._rows[rid] = values
        registry = metrics.get_registry()
        registry.inc("segments.melted")
        registry.inc("segments.rows_melted", segment.count)

    def _melt_containing(self, rid: int) -> bool:
        segment = self._segment_of(rid)
        if segment is None:
            return False
        self._melt_segment(segment)
        return True

    def _segment_of(self, rid: int) -> Segment | None:
        for segment in self._segments:
            if segment.count and segment.min_rid <= rid <= segment.max_rid \
                    and segment.rid_position(rid) is not None:
                return segment
        return None

    def segment_layout(self) -> list[list[int]]:
        """``[[min_rid, max_rid, count], ...]`` — checkpointed so reopen
        can re-freeze the same layout (and detect drift)."""
        return [[s.min_rid, s.max_rid, s.count] for s in self._segments]

    def restore_segments(self, layout: list[list[int]]) -> bool:
        """Re-freeze a checkpointed layout after the rows were reloaded.

        Re-encoding from the recovered rows rebuilds every zone map from
        scratch, so reopen can never serve stale min/max bounds (the
        drift class PR 5's facts-index bug belonged to).  If any entry no
        longer matches the live rows — the snapshot drifted — the restore
        stops and remaining rows stay in the (always correct) tail;
        returns False in that case so callers can count the invalidation.
        """
        for entry in layout:
            min_rid, max_rid, count = entry
            chunk = sorted(r for r in self._rows if min_rid <= r <= max_rid)
            if len(chunk) != count:
                return False
            segment = Segment.from_rows(
                self._schema, [(rid, self._rows[rid]) for rid in chunk])
            self._segments.append(segment)
            for rid in chunk:
                del self._rows[rid]
        return True

    # ---------------------------------------------------------------- reads

    def get(self, rid: int) -> Row:
        """Fetch by row ID (tail or segment).

        Raises:
            KeyError: unknown rid.
        """
        values = self._rows.get(rid)
        if values is not None:
            return Row(rid, dict(values))
        segment = self._segment_of(rid)
        if segment is None:
            raise KeyError(rid)
        pos = segment.rid_position(rid)
        assert pos is not None
        return Row(rid, segment.row_values(pos))

    def get_by_pk(self, key: Any) -> Row | None:
        """Fetch by primary-key value, or None."""
        rid = self._pk_index.get(key)
        if rid is None:
            return None
        return self.get(rid)

    def scan(self) -> Iterator[Row]:
        """Yield all rows in rid order (segments merged with the tail)."""
        for rid, values in self._iter_items():
            yield Row(rid, values)

    def _iter_items(self) -> Iterator[tuple[int, dict[str, Any]]]:
        if not self._segments:
            for rid in sorted(self._rows):
                yield rid, dict(self._rows[rid])
            return
        ordered = self._ordered_units()
        if ordered is not None:
            for kind, segment in ordered:
                if kind == "segment":
                    yield from segment.iter_rows()
                else:
                    for rid in sorted(self._rows):
                        yield rid, dict(self._rows[rid])
            return
        # Rid ranges interleave (e.g. an undo re-inserted a low rid after
        # compaction): k-way merge keeps global rid order.
        iters = [s.iter_rows() for s in self._segments if s.count]
        iters.append((rid, dict(self._rows[rid])) for rid in sorted(self._rows))
        yield from heapq.merge(*iters, key=lambda kv: kv[0])

    def _ordered_units(self) -> list[tuple[str, Any]] | None:
        """Units (segments + tail) whose concatenation is global rid order,
        or None when the rid ranges interleave."""
        units: list[tuple[str, Any]] = [
            ("segment", s) for s in self._segments if s.count]
        ranges = [(s.min_rid, s.max_rid) for _, s in units]
        if self._rows:
            units.append(("rows", None))
            ranges.append((min(self._rows), max(self._rows)))
        order = sorted(range(len(units)), key=lambda i: ranges[i][0])
        prev_max: int | None = None
        for i in order:
            lo, hi = ranges[i]
            if prev_max is not None and lo <= prev_max:
                return None
            prev_max = hi
        return [units[i] for i in order]

    def scan_units(self) -> list[tuple[str, Any]]:
        """The scan split into vectorizable units, in global rid order.

        Returns ``("segment", Segment)`` and ``("rows", Iterator[Row])``
        entries whose concatenation enumerates the table in rid order.
        When rid ranges interleave this collapses to one rows unit (the
        merged scan) — the executor then falls back to row-at-a-time,
        which keeps e.g. float SUM accumulation order identical to the
        naive interpreter.
        """
        if self._segments:
            ordered = self._ordered_units()
            if ordered is not None:
                return [
                    (kind, segment) if kind == "segment"
                    else ("rows", self._tail_rows())
                    for kind, segment in ordered
                ]
            return [("rows", self.scan())]
        return [("rows", self._tail_rows())] if self._rows else []

    def _tail_rows(self) -> Iterator[Row]:
        for rid in sorted(self._rows):
            yield Row(rid, dict(self._rows[rid]))

    def scan_where(self, predicate: Callable[[dict[str, Any]], bool]) -> Iterator[Row]:
        """Filtered scan."""
        for row in self.scan():
            if predicate(row.values):
                yield row

    def rids(self) -> list[int]:
        all_rids = list(self._rows)
        for segment in self._segments:
            all_rids.extend(segment.rids)
        return sorted(all_rids)
