"""Heap tables: in-memory row storage with stable row IDs.

Since PR 6 a heap table has two regions (DESIGN.md §12):

* the **row-store tail** — the mutable ``rid -> values`` dict every write
  lands in, exactly as before;
* zero or more immutable **columnar segments** — cold rows frozen by
  :meth:`HeapTable.compact` into the typed layout of
  :mod:`repro.storage.rdbms.segments`.

Readers never observe the split: :meth:`scan` merges segments and tail in
rid order, :meth:`get` consults both, and any update/delete of a frozen
row *melts* its segment back into the tail first (copy-on-write at
segment granularity).  The vectorized executor reads the regions
separately via :meth:`scan_units`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.storage.rdbms.segments import SEGMENT_TARGET_ROWS, Segment
from repro.storage.rdbms.sharding import ShardSpec
from repro.storage.rdbms.types import SchemaError, TableSchema
from repro.telemetry import metrics


@dataclass(frozen=True)
class Row:
    """A stored row: stable ``rid`` plus column values."""

    rid: int
    values: dict[str, Any]

    def __getitem__(self, column: str) -> Any:
        return self.values[column]


class HeapTable:
    """An unordered collection of rows addressed by row ID.

    The engine layers locking, logging, and indexing on top; the heap table
    itself only enforces the schema and primary-key uniqueness.
    """

    def __init__(self, schema: TableSchema,
                 shard_spec: ShardSpec | None = None) -> None:
        self._schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_rid = 0
        self._pk_index: dict[Any, int] = {}
        self._segments: list[Segment] = []
        # Shard membership covers *all* rids (tail + frozen); compaction
        # and melting move rows between regions without changing shards.
        self._shard_spec: ShardSpec | None = None
        self._shard_rids: list[set[int]] = []
        if shard_spec is not None:
            self.set_shard_spec(shard_spec)

    @property
    def schema(self) -> TableSchema:
        return self._schema

    # ------------------------------------------------------------- sharding

    @property
    def shard_spec(self) -> ShardSpec | None:
        return self._shard_spec

    def set_shard_spec(self, spec: ShardSpec | None) -> None:
        """Adopt (or drop) a sharding layout, re-routing every row.

        Existing segments are melted first: a sharded table's segments
        always hold rows of exactly one shard, and the old layout may
        straddle the new shard boundaries.  Callers wanting frozen
        per-shard segments re-compact afterwards.
        """
        if spec is not None and not self._schema.has_column(spec.key):
            raise SchemaError(
                f"shard key {spec.key!r} is not a column of {self.name!r}")
        self.melt_all()
        self._shard_spec = spec
        if spec is None:
            self._shard_rids = []
            return
        sets: list[set[int]] = [set() for _ in range(spec.count)]
        for rid, values in self._rows.items():
            sets[spec.shard_of(values.get(spec.key))].add(rid)
        self._shard_rids = sets

    def _shard_of_values(self, values: dict[str, Any]) -> int:
        spec = self._shard_spec
        assert spec is not None
        return spec.shard_of(values.get(spec.key))

    @property
    def name(self) -> str:
        return self._schema.name

    def __len__(self) -> int:
        return len(self._rows) + sum(s.count for s in self._segments)

    @property
    def tail_size(self) -> int:
        """Rows still in the mutable row-store tail."""
        return len(self._rows)

    @property
    def segments(self) -> list[Segment]:
        return list(self._segments)

    def segment_count(self) -> int:
        return len(self._segments)

    # ------------------------------------------------------------- mutation

    def insert(self, values: dict[str, Any], rid: int | None = None) -> Row:
        """Insert a row; returns the stored :class:`Row`.

        ``rid`` may be forced (used by recovery replay); otherwise assigned.

        Raises:
            SchemaError: on schema or primary-key violations.
        """
        row_values = self._schema.validate_row(values)
        pk = self._schema.primary_key
        if pk is not None:
            key = row_values[pk]
            if key is None:
                raise SchemaError(f"primary key {pk!r} may not be NULL")
            if key in self._pk_index:
                raise SchemaError(f"duplicate primary key {key!r}")
        if rid is None:
            rid = self._next_rid
        if rid in self._rows or self._segment_of(rid) is not None:
            raise SchemaError(f"row id {rid} already in use")
        self._next_rid = max(self._next_rid, rid + 1)
        self._rows[rid] = row_values
        if pk is not None:
            self._pk_index[row_values[pk]] = rid
        if self._shard_spec is not None:
            self._shard_rids[self._shard_of_values(row_values)].add(rid)
        return Row(rid=rid, values=dict(row_values))

    def insert_many(self, values_list: list[dict[str, Any]]) -> list[Row]:
        """Insert a batch of rows atomically; returns the stored rows.

        All rows are validated (schema + primary-key uniqueness, including
        duplicates *within* the batch) before any row is stored, so a
        failure leaves the table untouched.

        Raises:
            SchemaError: on schema or primary-key violations.
        """
        validated = [self._schema.validate_row(v) for v in values_list]
        pk = self._schema.primary_key
        if pk is not None:
            batch_keys: set[Any] = set()
            for row_values in validated:
                key = row_values[pk]
                if key is None:
                    raise SchemaError(f"primary key {pk!r} may not be NULL")
                if key in self._pk_index or key in batch_keys:
                    raise SchemaError(f"duplicate primary key {key!r}")
                batch_keys.add(key)
        rows: list[Row] = []
        for row_values in validated:
            rid = self._next_rid
            self._next_rid += 1
            self._rows[rid] = row_values
            if pk is not None:
                self._pk_index[row_values[pk]] = rid
            if self._shard_spec is not None:
                self._shard_rids[self._shard_of_values(row_values)].add(rid)
            rows.append(Row(rid=rid, values=dict(row_values)))
        return rows

    def update(self, rid: int, changes: dict[str, Any]) -> tuple[Row, Row]:
        """Apply column changes to one row; returns (old_row, new_row).

        A frozen row's segment is melted back into the tail first.

        Raises:
            KeyError: unknown rid.
            SchemaError: schema or primary-key violations.
        """
        if rid not in self._rows:
            self._melt_containing(rid)
        if rid not in self._rows:
            raise KeyError(rid)
        old_values = dict(self._rows[rid])
        merged = dict(old_values)
        merged.update(changes)
        new_values = self._schema.validate_row(merged)
        pk = self._schema.primary_key
        if pk is not None and new_values[pk] != old_values[pk]:
            if new_values[pk] is None:
                raise SchemaError(f"primary key {pk!r} may not be NULL")
            if new_values[pk] in self._pk_index:
                raise SchemaError(f"duplicate primary key {new_values[pk]!r}")
            del self._pk_index[old_values[pk]]
            self._pk_index[new_values[pk]] = rid
        self._rows[rid] = new_values
        if self._shard_spec is not None:
            old_shard = self._shard_of_values(old_values)
            new_shard = self._shard_of_values(new_values)
            if old_shard != new_shard:
                self._shard_rids[old_shard].discard(rid)
                self._shard_rids[new_shard].add(rid)
        return Row(rid, old_values), Row(rid, dict(new_values))

    def delete(self, rid: int) -> Row:
        """Delete one row (melting its segment if frozen); returns it.

        Raises:
            KeyError: unknown rid.
        """
        if rid not in self._rows:
            self._melt_containing(rid)
        if rid not in self._rows:
            raise KeyError(rid)
        values = self._rows.pop(rid)
        pk = self._schema.primary_key
        if pk is not None:
            self._pk_index.pop(values[pk], None)
        if self._shard_spec is not None:
            self._shard_rids[self._shard_of_values(values)].discard(rid)
        return Row(rid, values)

    def replace_schema(self, schema: TableSchema,
                       migrate: Callable[[dict[str, Any]], dict[str, Any]]) -> None:
        """Swap in a new schema, rewriting every row through ``migrate``.

        Used by the schema-evolution subsystem (Figure 1 Part IV).
        Segments are melted first: they are typed against the old schema.
        """
        self.melt_all()
        new_rows: dict[int, dict[str, Any]] = {}
        new_pk: dict[Any, int] = {}
        pk = schema.primary_key
        for rid, values in self._rows.items():
            migrated = schema.validate_row(migrate(dict(values)))
            if pk is not None:
                key = migrated[pk]
                if key is None or key in new_pk:
                    raise SchemaError(f"migration breaks primary key at rid {rid}")
                new_pk[key] = rid
            new_rows[rid] = migrated
        self._schema = schema
        self._rows = new_rows
        self._pk_index = new_pk
        spec = self._shard_spec
        if spec is not None:
            # Values may have been rewritten (or the key column dropped):
            # re-route every row; dropping the key unshards the table.
            self._shard_spec = None
            self.set_shard_spec(spec if schema.has_column(spec.key) else None)

    # ------------------------------------------------------------ segments

    def compact(self, max_rid: int | None = None,
                target_rows: int = SEGMENT_TARGET_ROWS) -> tuple[int, int, int]:
        """Freeze tail rows with ``rid <= max_rid`` into columnar segments.

        Chunking is deterministic (sorted rids, ``target_rows`` per
        segment) so WAL replay of a ``compact`` record reproduces the
        exact same layout.  Returns ``(segments_created, rows_frozen,
        max_rid_used)``.
        """
        if target_rows < 1:
            raise ValueError("target_rows must be >= 1")
        if max_rid is None:
            max_rid = self._next_rid - 1
        eligible = sorted(r for r in self._rows if r <= max_rid)
        created = 0
        if self._shard_spec is not None:
            # Deterministic per-shard chunking: a sharded table's segments
            # hold rows of exactly one shard, so parallel plans can hand
            # whole segments to worker tasks.  Routing is seed-stable
            # (sharding.py), so WAL replay reproduces the same layout.
            groups: list[list[int]] = [[] for _ in range(self._shard_spec.count)]
            for rid in eligible:
                groups[self._shard_of_values(self._rows[rid])].append(rid)
            for shard, shard_rids in enumerate(groups):
                for start in range(0, len(shard_rids), target_rows):
                    chunk = shard_rids[start:start + target_rows]
                    segment = Segment.from_rows(
                        self._schema,
                        [(rid, self._rows[rid]) for rid in chunk],
                        shard=shard)
                    self._segments.append(segment)
                    for rid in chunk:
                        del self._rows[rid]
                    created += 1
        else:
            for start in range(0, len(eligible), target_rows):
                chunk = eligible[start:start + target_rows]
                segment = Segment.from_rows(
                    self._schema, [(rid, self._rows[rid]) for rid in chunk])
                self._segments.append(segment)
                for rid in chunk:
                    del self._rows[rid]
                created += 1
        if eligible:
            registry = metrics.get_registry()
            registry.inc("segments.created", created)
            registry.inc("segments.rows_frozen", len(eligible))
        return created, len(eligible), max_rid

    def melt_all(self) -> None:
        """Decode every segment back into the row-store tail."""
        for segment in list(self._segments):
            self._melt_segment(segment)

    def _melt_segment(self, segment: Segment) -> None:
        self._segments.remove(segment)
        for rid, values in segment.iter_rows():
            self._rows[rid] = values
        registry = metrics.get_registry()
        registry.inc("segments.melted")
        registry.inc("segments.rows_melted", segment.count)

    def _melt_containing(self, rid: int) -> bool:
        segment = self._segment_of(rid)
        if segment is None:
            return False
        self._melt_segment(segment)
        return True

    def _segment_of(self, rid: int) -> Segment | None:
        for segment in self._segments:
            if segment.count and segment.min_rid <= rid <= segment.max_rid \
                    and segment.rid_position(rid) is not None:
                return segment
        return None

    def segment_layout(self) -> list[list[int]]:
        """``[[min_rid, max_rid, count], ...]`` — checkpointed so reopen
        can re-freeze the same layout (and detect drift).

        Segments of sharded tables emit a fourth ``shard`` element:
        per-shard rid ranges interleave, so restore must know which shard
        each frozen range belonged to (a bare range would scoop up other
        shards' rows).  Unsharded segments keep the 3-entry form so old
        checkpoints stay readable.
        """
        return [
            [s.min_rid, s.max_rid, s.count] if s.shard is None
            else [s.min_rid, s.max_rid, s.count, s.shard]
            for s in self._segments
        ]

    def restore_segments(self, layout: list[list[int]]) -> bool:
        """Re-freeze a checkpointed layout after the rows were reloaded.

        Re-encoding from the recovered rows rebuilds every zone map from
        scratch, so reopen can never serve stale min/max bounds (the
        drift class PR 5's facts-index bug belonged to).  If any entry no
        longer matches the live rows — the snapshot drifted — the restore
        stops and remaining rows stay in the (always correct) tail;
        returns False in that case so callers can count the invalidation.

        The shard spec must already be applied (recovery order): 4-entry
        layouts select rows by rid range *and* shard membership.
        """
        for entry in layout:
            if len(entry) == 4:
                min_rid, max_rid, count, shard = entry
                if (self._shard_spec is None
                        or shard >= self._shard_spec.count):
                    return False
                members = self._shard_rids[shard]
                chunk = sorted(r for r in self._rows
                               if min_rid <= r <= max_rid and r in members)
            else:
                min_rid, max_rid, count = entry
                shard = None
                chunk = sorted(r for r in self._rows
                               if min_rid <= r <= max_rid)
            if len(chunk) != count:
                return False
            segment = Segment.from_rows(
                self._schema, [(rid, self._rows[rid]) for rid in chunk],
                shard=shard)
            self._segments.append(segment)
            for rid in chunk:
                del self._rows[rid]
        return True

    # ---------------------------------------------------------------- reads

    def get(self, rid: int) -> Row:
        """Fetch by row ID (tail or segment).

        Raises:
            KeyError: unknown rid.
        """
        values = self._rows.get(rid)
        if values is not None:
            return Row(rid, dict(values))
        segment = self._segment_of(rid)
        if segment is None:
            raise KeyError(rid)
        pos = segment.rid_position(rid)
        assert pos is not None
        return Row(rid, segment.row_values(pos))

    def get_by_pk(self, key: Any) -> Row | None:
        """Fetch by primary-key value, or None."""
        rid = self._pk_index.get(key)
        if rid is None:
            return None
        return self.get(rid)

    def scan(self) -> Iterator[Row]:
        """Yield all rows in rid order (segments merged with the tail)."""
        for rid, values in self._iter_items():
            yield Row(rid, values)

    def _iter_items(self) -> Iterator[tuple[int, dict[str, Any]]]:
        if not self._segments:
            for rid in sorted(self._rows):
                yield rid, dict(self._rows[rid])
            return
        ordered = self._ordered_units()
        if ordered is not None:
            for kind, segment in ordered:
                if kind == "segment":
                    yield from segment.iter_rows()
                else:
                    for rid in sorted(self._rows):
                        yield rid, dict(self._rows[rid])
            return
        # Rid ranges interleave (e.g. an undo re-inserted a low rid after
        # compaction): k-way merge keeps global rid order.
        iters = [s.iter_rows() for s in self._segments if s.count]
        iters.append((rid, dict(self._rows[rid])) for rid in sorted(self._rows))
        yield from heapq.merge(*iters, key=lambda kv: kv[0])

    def _ordered_units(self) -> list[tuple[str, Any]] | None:
        """Units (segments + tail) whose concatenation is global rid order,
        or None when the rid ranges interleave."""
        units: list[tuple[str, Any]] = [
            ("segment", s) for s in self._segments if s.count]
        ranges = [(s.min_rid, s.max_rid) for _, s in units]
        if self._rows:
            units.append(("rows", None))
            ranges.append((min(self._rows), max(self._rows)))
        order = sorted(range(len(units)), key=lambda i: ranges[i][0])
        prev_max: int | None = None
        for i in order:
            lo, hi = ranges[i]
            if prev_max is not None and lo <= prev_max:
                return None
            prev_max = hi
        return [units[i] for i in order]

    def scan_units(self) -> list[tuple[str, Any]]:
        """The scan split into vectorizable units, in global rid order.

        Returns ``("segment", Segment)`` and ``("rows", Iterator[Row])``
        entries whose concatenation enumerates the table in rid order.
        When rid ranges interleave this collapses to one rows unit (the
        merged scan) — the executor then falls back to row-at-a-time,
        which keeps e.g. float SUM accumulation order identical to the
        naive interpreter.
        """
        if self._segments:
            ordered = self._ordered_units()
            if ordered is not None:
                return [
                    (kind, segment) if kind == "segment"
                    else ("rows", self._tail_rows())
                    for kind, segment in ordered
                ]
            return [("rows", self.scan())]
        return [("rows", self._tail_rows())] if self._rows else []

    def _tail_rows(self) -> Iterator[Row]:
        for rid in sorted(self._rows):
            yield Row(rid, dict(self._rows[rid]))

    def sharded_scan_units(self) -> list[list[tuple[str, Any]]]:
        """Per-shard vectorizable units for parallel plans (DESIGN.md §14).

        Returns one unit list per shard; each list enumerates that
        shard's rows in rid order as ``("segment", Segment)`` and
        ``("rows", [(rid, values), ...])`` entries.  Rows units are
        materialized value-dict copies so the whole structure is
        picklable for process-pool workers.  Concatenating matching rows
        of all shards through a rid merge reproduces :meth:`scan` order
        exactly — the byte-identity invariant parallel plans rely on.
        """
        spec = self._shard_spec
        if spec is None:
            raise SchemaError(f"table {self.name!r} is not sharded")
        out: list[list[tuple[str, Any]]] = []
        # One pass over the (usually small) tail instead of filtering
        # every shard's full rid set: point queries hit this per
        # execution, so it must not scale with frozen-row count.
        tails: list[list[int]] = [[] for _ in range(spec.count)]
        for rid in sorted(self._rows):
            shard = spec.shard_of(self._rows[rid].get(spec.key))
            if rid in self._shard_rids[shard]:
                tails[shard].append(rid)
        segs_by_shard: list[list[Segment]] = [[] for _ in range(spec.count)]
        for s in self._segments:
            if s.count and s.shard is not None:
                segs_by_shard[s.shard].append(s)
        for shard in range(spec.count):
            segs = sorted(segs_by_shard[shard], key=lambda s: s.min_rid)
            tail = tails[shard]
            units: list[tuple[str, Any]] = []
            ranges: list[tuple[int, int]] = []
            for s in segs:
                units.append(("segment", s))
                ranges.append((s.min_rid, s.max_rid))
            if tail:
                units.append(
                    ("rows", [(r, dict(self._rows[r])) for r in tail]))
                ranges.append((tail[0], tail[-1]))
            order = sorted(range(len(units)), key=lambda i: ranges[i][0])
            prev_max: int | None = None
            interleaved = False
            for i in order:
                lo, hi = ranges[i]
                if prev_max is not None and lo <= prev_max:
                    interleaved = True
                    break
                prev_max = hi
            if interleaved:
                # Rare (undo re-inserted a low rid after compaction):
                # collapse the shard to one merged, decoded rows unit.
                merged = heapq.merge(
                    *(s.iter_rows() for s in segs),
                    iter((r, dict(self._rows[r])) for r in tail),
                    key=lambda kv: kv[0])
                out.append([("rows", list(merged))])
            else:
                out.append([units[i] for i in order])
        return out

    def scan_where(self, predicate: Callable[[dict[str, Any]], bool]) -> Iterator[Row]:
        """Filtered scan."""
        for row in self.scan():
            if predicate(row.values):
                yield row

    def rids(self) -> list[int]:
        all_rids = list(self._rows)
        for segment in self._segments:
            all_rids.extend(segment.rids)
        return sorted(all_rids)
