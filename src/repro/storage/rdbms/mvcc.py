"""Snapshot-isolation reads: copy-on-write committed snapshots (DESIGN.md §15).

Writers keep strict 2PL; readers stop locking entirely.  A
:class:`SnapshotTransaction` serves every read from a set of
:class:`TableSnapshot` objects — per-table frozen clones capturing the
*committed* state at one commit point:

* the row-store tail is a shallow dict copy (safe to share: the live
  table replaces value dicts on update, never mutates them in place)
  with every **active uncommitted** transaction's undo entries applied
  in reverse, which rolls the copy back to pure committed data;
* columnar segments are referenced directly — they are immutable;
* shard routing is recomputed over the snapshot's tail (frozen rows
  already live in per-shard segments).

Snapshots are built under the database's mutate lock — the same lock
every write-path structural mutation holds — so the copy can never
observe a half-applied write.  Cross-table consistency comes from
resolving *all* tables at ``begin_snapshot()`` time under one lock hold.

A per-table snapshot is cached keyed by the table's committed version
(bumped atomically at every commit/DDL that touches it), so only the
first reader after a commit pays the O(tail) copy; subsequent readers
share the same frozen clone.  Secondary-index lookups build per-snapshot
lazy indexes (the live indexes reflect *uncommitted* writer state and
cannot serve a consistent snapshot), reusing the exact
:class:`~repro.storage.rdbms.index.HashIndex` /
:class:`~repro.storage.rdbms.index.SortedIndex` semantics so results are
row-identical to the locked path.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from repro.errors import CancellationToken, ReadOnlyTransactionError
from repro.storage.rdbms.index import HashIndex, Index, SortedIndex
from repro.storage.rdbms.table import HeapTable, Row
from repro.telemetry import metrics

#: Streaming reads poll the cancellation token once per this many rows.
GUARD_STRIDE = 256


def build_table_snapshot(heap: HeapTable, undo_entries: list[tuple],
                         version: int) -> "TableSnapshot":
    """Freeze one table's committed state into a snapshot clone.

    Must be called under the database mutate lock.  ``undo_entries`` are
    the concatenated undo logs of every active uncommitted transaction,
    in append order; applying them in reverse rolls the tail copy back
    to committed data (row-level entries of different transactions never
    overlap — X locks guarantee one uncommitted writer per rid).
    """
    rows = dict(heap._rows)
    for entry in reversed(undo_entries):
        kind = entry[0]
        if entry[1] != heap.name:
            continue
        if kind == "insert":
            rows.pop(entry[2], None)
        elif kind == "update":
            rows[entry[2]] = entry[3]
        elif kind == "delete":
            rows[entry[2]] = entry[3]
    clone = HeapTable.__new__(HeapTable)
    clone._schema = heap._schema
    clone._rows = rows
    clone._next_rid = heap._next_rid
    # The pk map covers frozen rows too (O(total) to copy), so the
    # snapshot builds its own lazily instead; nothing reads the clone's.
    clone._pk_index = {}
    clone._segments = list(heap._segments)
    clone._shard_spec = heap._shard_spec
    if heap._shard_spec is not None:
        spec = heap._shard_spec
        sets: list[set[int]] = [set() for _ in range(spec.count)]
        for rid, values in rows.items():
            sets[spec.shard_of(values.get(spec.key))].add(rid)
        clone._shard_rids = sets
    else:
        clone._shard_rids = []
    metrics.get_registry().inc("rdbms.mvcc.snapshot_builds")
    return TableSnapshot(clone, version)


class TableSnapshot:
    """One table's frozen committed state plus lazy per-snapshot indexes.

    The wrapped clone is a :class:`HeapTable` that is never mutated, so
    every read method (scan / scan_units / sharded_scan_units / get)
    works unchanged.  Shared across all readers at the same committed
    version; index builds are locked so concurrent first-lookups build
    once.
    """

    __slots__ = ("table", "version", "_lock", "_pk_map",
                 "_hash_indexes", "_sorted_indexes")

    def __init__(self, table: HeapTable, version: int) -> None:
        self.table = table
        self.version = version
        self._lock = threading.Lock()
        self._pk_map: dict[Any, int] | None = None
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}

    def pk_lookup(self, key: Any) -> Row | None:
        pk = self.table.schema.primary_key
        if pk is None:
            return None
        if self._pk_map is None:
            with self._lock:
                if self._pk_map is None:
                    self._pk_map = {
                        row.values[pk]: row.rid for row in self.table.scan()
                    }
        rid = self._pk_map.get(key)
        return self.table.get(rid) if rid is not None else None

    def hash_index(self, column: str) -> HashIndex:
        index = self._hash_indexes.get(column)
        if index is None:
            with self._lock:
                index = self._hash_indexes.get(column)
                if index is None:
                    index = HashIndex(self.table.name, column)
                    index.bulk_load((row.values.get(column), row.rid)
                                    for row in self.table.scan())
                    self._hash_indexes[column] = index
        return index

    def sorted_index(self, column: str) -> SortedIndex:
        index = self._sorted_indexes.get(column)
        if index is None:
            with self._lock:
                index = self._sorted_indexes.get(column)
                if index is None:
                    index = SortedIndex(self.table.name, column)
                    index.bulk_load((row.values.get(column), row.rid)
                                    for row in self.table.scan())
                    self._sorted_indexes[column] = index
        return index


class SnapshotTransaction:
    """A lock-free read-only transaction over a commit-point snapshot.

    Mirrors :class:`~repro.storage.rdbms.engine.Transaction`'s read API
    exactly (the planner's physical operators consume either
    interchangeably) but never touches the lock manager: it cannot
    block, cannot deadlock, and never enters the waits-for graph.
    Writes raise :class:`~repro.errors.ReadOnlyTransactionError`.

    Obtained from :meth:`Database.begin_snapshot`; usable as a context
    manager.  An optional :class:`~repro.errors.CancellationToken` is
    polled at every read call and every :data:`GUARD_STRIDE` rows of a
    streaming scan (cooperative deadlines / shutdown cancellation).
    """

    read_only = True

    def __init__(self, db: Any, snapshots: dict[str, TableSnapshot],
                 guard: CancellationToken | None = None) -> None:
        self._db = db  # parallel operators reach the exec backend via _db
        self._snapshots = snapshots
        self.guard = guard
        self.txn_id = -1
        self.finished = False

    # ----------------------------------------------------------- lifecycle

    def __enter__(self) -> "SnapshotTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finished = True

    def commit(self) -> None:
        self.finished = True

    def abort(self) -> None:
        self.finished = True

    def version_of(self, table: str) -> int:
        """The committed version this snapshot holds for ``table`` (0 when
        the table did not exist at snapshot time)."""
        snap = self._snapshots.get(table)
        return snap.version if snap is not None else 0

    # ------------------------------------------------------------- writes

    def _read_only(self, *_args: Any, **_kwargs: Any) -> Any:
        raise ReadOnlyTransactionError(
            "snapshot transactions are read-only; use Database.run for writes")

    insert = insert_many = update = delete = _read_only

    # -------------------------------------------------------------- reads

    def get(self, table: str, rid: int) -> Row:
        """Point read by rid against the snapshot (no locks)."""
        self._check()
        return self._snap(table).table.get(rid)

    def get_by_pk(self, table: str, key: Any) -> Row | None:
        """Point read by primary key against the snapshot, or None."""
        self._check()
        return self._snap(table).pk_lookup(key)

    def scan(self, table: str) -> list[Row]:
        return list(self.scan_iter(table))

    def scan_iter(self, table: str) -> Iterator[Row]:
        """Streaming full scan of the snapshot (no locks)."""
        self._check()
        return self._guarded(self._snap(table).table.scan())

    def scan_units(self, table: str) -> list[tuple[str, Any]]:
        """The snapshot's vectorizable scan units (segments + frozen tail)."""
        self._check()
        return self._snap(table).table.scan_units()

    def sharded_scan_units(self, table: str) -> list[list[tuple[str, Any]]]:
        """Per-shard units of the snapshot, for parallel plans."""
        self._check()
        return self._snap(table).table.sharded_scan_units()

    def scan_where(self, table: str,
                   predicate: Callable[[dict[str, Any]], bool]) -> list[Row]:
        return [r for r in self.scan_iter(table) if predicate(r.values)]

    def lookup(self, table: str, column: str, value: Any) -> list[Row]:
        """Equality lookup via a per-snapshot lazy index.

        The *live* index cannot be consulted: it reflects uncommitted
        writer state (an in-flight UPDATE moves a rid between buckets
        before committing), so a snapshot read through it could miss
        rows it must see.  The fallback mirror's the locked path: no
        index on the column in the catalog means a scan.
        """
        self._check()
        registry = metrics.get_registry()
        if self._db._find_index(table, column) is None:
            registry.inc("rdbms.index.scan_fallbacks")
            return self.scan_where(table, lambda v: v.get(column) == value)
        snap = self._snap(table)
        rows = [snap.table.get(rid)
                for rid in snap.hash_index(column).lookup(value)]
        registry.inc("rdbms.index.lookups")
        registry.inc("rdbms.index.rows_fetched", len(rows))
        return rows

    def range_lookup(self, table: str, column: str, low: Any = None,
                     high: Any = None, include_low: bool = True,
                     include_high: bool = True) -> list[Row]:
        """Sorted-index range lookup against the snapshot (rid order)."""
        self._check()
        registry = metrics.get_registry()
        if self._db.sorted_index(table, column) is None:
            registry.inc("rdbms.index.scan_fallbacks")

            def in_range(values: dict[str, Any]) -> bool:
                value = values.get(column)
                if value is None:
                    return False
                if low is not None and (
                        value < low if include_low else value <= low):
                    return False
                if high is not None and (
                        value > high if include_high else value >= high):
                    return False
                return True

            return self.scan_where(table, in_range)
        snap = self._snap(table)
        index = snap.sorted_index(column)
        rids = sorted(index.range(low, high, include_low, include_high))
        rows = [snap.table.get(rid) for rid in rids]
        registry.inc("rdbms.index.range_scans")
        registry.inc("rdbms.index.rows_fetched", len(rows))
        return rows

    # ---------------------------------------------------------- internals

    def _snap(self, table: str) -> TableSnapshot:
        snap = self._snapshots.get(table)
        if snap is None:
            raise KeyError(f"no table {table!r}")
        return snap

    def _check(self) -> None:
        if self.guard is not None:
            self.guard.check()

    def _guarded(self, it: Iterator[Row]) -> Iterator[Row]:
        guard = self.guard
        if guard is None:
            return it

        def gen() -> Iterator[Row]:
            for i, row in enumerate(it):
                if i % GUARD_STRIDE == 0:
                    guard.check()
                yield row

        return gen()
