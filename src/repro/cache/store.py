"""Extraction cache implementations: in-memory LRU and on-disk JSONL.

Both map ``(document key, extractor fingerprint)`` to the list
of extraction tuples (the executor's row dicts) that extractor produced
on that document — including the empty list, so unchanged documents that
yield nothing are not re-scanned either.

Telemetry: every lookup records ``cache.hits`` / ``cache.misses``, every
admission records ``cache.bytes`` (approximate payload bytes) and LRU
evictions record ``cache.evictions``, all into the ambient
:class:`~repro.telemetry.metrics.MetricsRegistry` — so a cached
executor run reports hit rates next to its other counters.

Concurrency: lookups and write-backs happen on the coordinating side
only (the executor partitions documents *before* fanning misses out on a
thread/process backend and writes results back *after* the wave
returns), so the disk format needs no cross-process locking; a process
pool never touches the cache files.  Mutation is nevertheless
lock-guarded so a cache instance can be shared across executor runs.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from repro.storage.filestore import RecordFileStore
from repro.telemetry import metrics

if TYPE_CHECKING:  # hint only; the helper never touches Document internals
    from repro.docmodel.document import Document

Rows = list[dict[str, Any]]


def document_key(doc: "Document") -> str:
    """The cache key half identifying one document *state*.

    ``<content hash>:<doc id>`` — content-addressed (any text edit changes
    the hash, forcing a miss), but qualified by document identity because
    extraction rows embed ``doc_id`` (spans carry it, and extractors fall
    back to it for the entity name), so two identical texts under
    different IDs must not share an entry.  The hash is fixed-width hex,
    making the concatenation unambiguous for any ``doc_id``.
    """
    return f"{doc.content_hash()}:{doc.doc_id}"

# Values an extraction row may carry and survive a JSON round-trip
# unchanged (the on-disk cache refuses rows with anything richer, see
# DiskExtractionCache.put).
_JSON_SCALARS = (str, int, float, bool, type(None))


def _approx_bytes(rows: Rows) -> int:
    """Cheap payload-size proxy (for the ``cache.bytes`` counter)."""
    return sum(
        sum(len(k) + len(str(v)) for k, v in row.items()) for row in rows
    ) + 2 * len(rows)


class ExtractionCache(ABC):
    """Content-addressed store of per-document extraction results."""

    @abstractmethod
    def get(self, doc_key: str, extractor_fp: str) -> Rows | None:
        """Cached rows for (document key, extractor), or None on a miss."""

    @abstractmethod
    def put(self, doc_key: str, extractor_fp: str, rows: Rows) -> None:
        """Record the rows this extractor produced on this document."""

    @abstractmethod
    def stats(self) -> dict[str, Any]:
        """Current occupancy (entries, bytes, ...)."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every cached entry."""

    def close(self) -> None:
        """Release any resources (idempotent; default no-op)."""

    # ------------------------------------------------------------ telemetry

    @staticmethod
    def _record_lookup(hit: bool) -> None:
        metrics.get_registry().inc("cache.hits" if hit else "cache.misses")

    @staticmethod
    def _record_put(rows: Rows) -> None:
        metrics.get_registry().inc("cache.bytes", _approx_bytes(rows))


class LRUExtractionCache(ExtractionCache):
    """In-memory cache with least-recently-used eviction.

    Sized in *entries* (one entry = one (document, extractor) result
    list); evictions bump the ``cache.evictions`` counter.  Returned rows
    are shallow copies, so callers mutating result tuples downstream
    cannot corrupt cached state.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._data: OrderedDict[tuple[str, str], Rows] = OrderedDict()

    def get(self, doc_key: str, extractor_fp: str) -> Rows | None:
        key = (doc_key, extractor_fp)
        with self._lock:
            rows = self._data.get(key)
            if rows is not None:
                self._data.move_to_end(key)
        self._record_lookup(rows is not None)
        return None if rows is None else [dict(r) for r in rows]

    def put(self, doc_key: str, extractor_fp: str, rows: Rows) -> None:
        key = (doc_key, extractor_fp)
        evicted = 0
        with self._lock:
            self._data[key] = [dict(r) for r in rows]
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                evicted += 1
        self._record_put(rows)
        if evicted:
            metrics.get_registry().inc("cache.evictions", evicted)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            entries = len(self._data)
            approx = sum(_approx_bytes(rows) for rows in self._data.values())
        return {"kind": "memory", "entries": entries,
                "max_entries": self.max_entries, "approx_bytes": approx}

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class DiskExtractionCache(ExtractionCache):
    """Persistent cache: JSONL segments under a directory.

    Built on the storage layer's append-only
    :class:`~repro.storage.filestore.RecordFileStore` (segment rotation
    included): each record is ``{"doc": <hash>, "ext": <fingerprint>,
    "rows": [...]}``; on open, all segments are scanned once into an
    in-memory index (last write per key wins), so steady-state lookups
    never touch the disk.  Rows must be JSON scalars — anything richer
    (an extractor emitting, say, tuples) is *skipped*, not stored, so a
    JSON round-trip can never change result bytes.

    The open-time scan is crash-safe: corrupt lines (torn final append,
    flipped bytes) and well-formed lines with the wrong shape are skipped
    — a damaged entry simply becomes a future miss and gets regenerated —
    counted in the ``cache.corrupt_entries`` telemetry counter and
    reported by :meth:`stats`.
    """

    def __init__(self, root: str, segment_max_records: int = 5_000) -> None:
        self._lock = threading.Lock()
        self._store = RecordFileStore(root,
                                      segment_max_records=segment_max_records,
                                      tolerant=True)
        self._index: dict[tuple[str, str], Rows] = {}
        malformed = 0
        for record in self._store.scan():
            payload = record.payload
            doc, ext, rows = payload.get("doc"), payload.get("ext"), \
                payload.get("rows")
            if not isinstance(doc, str) or not isinstance(ext, str) \
                    or not isinstance(rows, list):
                malformed += 1
                continue
            self._index[(doc, ext)] = rows
        self.corrupt_entries = self._store.corrupt_lines + malformed
        if self.corrupt_entries:
            metrics.get_registry().inc("cache.corrupt_entries",
                                       self.corrupt_entries)

    @property
    def root(self) -> str:
        return self._store._root

    def get(self, doc_key: str, extractor_fp: str) -> Rows | None:
        with self._lock:
            rows = self._index.get((doc_key, extractor_fp))
        self._record_lookup(rows is not None)
        return None if rows is None else [dict(r) for r in rows]

    def put(self, doc_key: str, extractor_fp: str, rows: Rows) -> None:
        if not all(
            isinstance(v, _JSON_SCALARS) for row in rows for v in row.values()
        ):
            return  # not JSON-faithful; caching it would break determinism
        with self._lock:
            self._store.append(
                {"doc": doc_key, "ext": extractor_fp, "rows": rows}
            )
            self._index[(doc_key, extractor_fp)] = [dict(r) for r in rows]
        self._record_put(rows)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "kind": "disk",
                "root": self._store._root,
                "entries": len(self._index),
                "segments": self._store.segment_count(),
                "disk_bytes": self._store.total_bytes(),
                "corrupt_entries": self.corrupt_entries,
            }

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._index.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)


def make_cache(spec: "ExtractionCache | str | None") -> ExtractionCache | None:
    """Resolve a cache spec.

    Args:
        spec: ``None`` (no caching), an :class:`ExtractionCache` instance
            (returned as-is), the string ``"memory"`` (a default-sized
            :class:`LRUExtractionCache`), or any other string — taken as
            a directory path for a :class:`DiskExtractionCache`.
    """
    if spec is None:
        return None
    if isinstance(spec, ExtractionCache):
        return spec
    if isinstance(spec, str):
        if spec == "memory":
            return LRUExtractionCache()
        return DiskExtractionCache(spec)
    raise TypeError(f"cannot build an extraction cache from {spec!r}")
