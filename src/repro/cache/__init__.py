"""Content-addressed extraction cache (the perf ladder's third rung).

The DGE model is incremental and best-effort: corpora churn while most
documents stay unchanged, so re-running every extractor over every
document on each ``generate()`` wastes almost all of its work.  This
package caches extraction output keyed by a *content fingerprint* —
``(document text hash, extractor fingerprint)`` — so a warm re-run after
a 1% corpus update only extracts the 1% of documents that changed.

* :mod:`repro.cache.fingerprint` — stable fingerprints of extractor
  *behaviour* (class, config, patterns, normalizers, cost params, and an
  explicit ``version`` developers bump to force invalidation).
* :mod:`repro.cache.store` — the :class:`ExtractionCache` interface with
  an in-memory LRU implementation and a persistent on-disk implementation
  (JSONL segments, reusing the storage layer's record file store).

The executor consults the cache per extract operator: documents partition
into hits and misses, only the misses fan out on the execution backend,
and fresh results are written back.  Output is byte-identical cached vs
uncached and across all execution backends (the determinism contract).
"""

from repro.cache.fingerprint import extractor_fingerprint
from repro.cache.store import (
    DiskExtractionCache,
    ExtractionCache,
    LRUExtractionCache,
    document_key,
    make_cache,
)

__all__ = [
    "DiskExtractionCache",
    "ExtractionCache",
    "LRUExtractionCache",
    "document_key",
    "extractor_fingerprint",
    "make_cache",
]
