"""Stable fingerprints of extractor behaviour.

A cached extraction result is only valid while the extractor that
produced it would still produce the same output.  The fingerprint
therefore covers everything behaviour-affecting: the extractor's class,
its declared ``version`` (the explicit invalidation knob), and its whole
configuration — patterns, field lists, normalizer functions, nested
extractors, cost parameters.  Two extractor instances with equal
fingerprints are interchangeable for cache purposes; any config change
produces a different fingerprint and therefore a cache miss.

Values are folded into a SHA-256 over a canonical token stream:

* dataclass extractors contribute their declared fields (sorted by name;
  private/derived state like compiled patterns is excluded by
  construction);
* non-dataclass extractors contribute their public instance attributes
  plus the base-class knobs (``name``, ``cost_per_char``, ``version``);
* compiled regexes contribute pattern + flags; functions contribute
  module/qualname *and* a hash of their code object, so editing a
  normalizer lambda in place invalidates cached results;
* nested extractors (e.g. inside a
  :class:`~repro.extraction.base.CompositeExtractor`) recurse.

Fingerprints are deterministic across processes and sessions — the
on-disk cache relies on this to survive a close/reopen.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import re
from typing import Any, Iterator

from repro.extraction.base import Extractor

# Memory addresses in default reprs (``<object at 0x7f...>``) would make
# fallback tokens session-specific; strip them.
_ADDRESS_RE = re.compile(r"0x[0-9a-fA-F]+")


def extractor_fingerprint(extractor: Extractor) -> str:
    """Hex digest identifying this extractor's observable behaviour."""
    digest = hashlib.sha256()
    for token in _tokens(extractor):
        digest.update(token.encode("utf-8", "backslashreplace"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def _tokens(extractor: Extractor) -> Iterator[str]:
    cls = type(extractor)
    yield f"class={cls.__module__}.{cls.__qualname__}"
    for knob in ("name", "cost_per_char", "version"):
        yield f"{knob}={_stable(getattr(extractor, knob, None))}"
    for field_name, value in _state_items(extractor):
        yield f"{field_name}={_stable(value)}"


def _state_items(obj: Any) -> list[tuple[str, Any]]:
    """Behaviour-relevant (attribute, value) pairs, deterministically ordered.

    Dataclasses expose exactly their declared fields — derived state
    (compiled patterns, tries, tokenizers) lives in underscored attributes
    outside the field list.  Plain classes expose public instance
    attributes.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        items = [(f.name, getattr(obj, f.name))
                 for f in dataclasses.fields(obj)]
    else:
        items = [(k, v) for k, v in vars(obj).items()
                 if not k.startswith("_")]
    return sorted(items, key=lambda kv: kv[0])


def _stable(value: Any) -> str:
    """Canonical string for one config value (recursive)."""
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, re.Pattern):
        return f"re({value.pattern!r},{value.flags})"
    if isinstance(value, Extractor):
        return f"extractor({extractor_fingerprint(value)})"
    if isinstance(value, dict):
        inner = ",".join(
            f"{_stable(k)}:{_stable(v)}"
            for k, v in sorted(value.items(), key=lambda kv: _stable(kv[0]))
        )
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_stable(v) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{{" + ",".join(sorted(_stable(v) for v in value)) + "}}"
    if isinstance(value, functools.partial):
        return (f"partial({_stable(value.func)},{_stable(value.args)},"
                f"{_stable(dict(value.keywords))})")
    if callable(value):
        return _stable_callable(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        inner = ",".join(
            f"{name}:{_stable(v)}" for name, v in _state_items(value)
        )
        return f"dc({cls.__module__}.{cls.__qualname__},{inner})"
    return (f"obj({type(value).__module__}.{type(value).__qualname__},"
            f"{_ADDRESS_RE.sub('0x', repr(value))})")


def _stable_callable(fn: Any) -> str:
    """Identify a normalizer/namer function by location *and* code.

    The code-object hash makes an in-place edit of a lambda or local
    function a different fingerprint even though its qualname is
    unchanged.
    """
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", type(fn).__qualname__)
    code = getattr(fn, "__code__", None)
    if code is None:
        return f"callable({module}.{qualname})"
    body = hashlib.sha256(
        code.co_code + repr(code.co_consts).encode("utf-8", "backslashreplace")
    ).hexdigest()[:16]
    return f"callable({module}.{qualname},{body})"
