"""Deterministic cluster simulator.

Tasks run in-process (their Python side effects are real); what is simulated
is *time and failure*: every worker has a speed factor, a failure
probability, and a straggler probability, all drawn from a seeded RNG so
runs are reproducible.  The scheduler assigns each ready task to the worker
that becomes free earliest (greedy list scheduling); failed attempts are
retried on the next-free other worker; tasks whose attempt is flagged as a
straggler may get a speculative duplicate, and the earlier finisher wins —
the classic Map-Reduce backup-task mechanism.

The simulated makespan (max over workers of their busy horizon) is the
metric experiment E7 reports for scaling curves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for the simulated cluster.

    Attributes:
        num_workers: cluster size.
        seed: RNG seed (speeds, failures, stragglers are reproducible).
        failure_prob: probability that any single task attempt fails.
        straggler_prob: probability that an attempt runs slow.
        straggler_factor: slowdown multiplier for stragglers.
        speculative_execution: launch backup attempts for stragglers.
        heterogeneity: worker speed factors are drawn uniformly from
            ``[1 - heterogeneity, 1 + heterogeneity]``.
        max_attempts: per-task retry budget before the job fails.
    """

    num_workers: int = 4
    seed: int = 0
    failure_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 4.0
    speculative_execution: bool = True
    heterogeneity: float = 0.2
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not 0.0 <= self.failure_prob < 1.0:
            raise ValueError("failure_prob must be in [0, 1)")


@dataclass
class Task:
    """A schedulable unit: a callable plus a nominal cost in work units."""

    task_id: str
    fn: Callable[[], Any]
    cost: float = 1.0


@dataclass
class TaskResult:
    """Outcome of one task after scheduling."""

    task_id: str
    value: Any
    worker: int
    attempts: int
    start_time: float
    end_time: float
    speculated: bool = False


@dataclass
class _Attempt:
    task: Task
    worker: int
    start: float
    end: float
    failed: bool
    straggled: bool


class TaskFailedError(Exception):
    """A task exhausted its retry budget."""


class SimulatedCluster:
    """Greedy list scheduler over simulated heterogeneous workers."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        rng = random.Random(config.seed)
        spread = config.heterogeneity
        self._speeds = [
            1.0 + rng.uniform(-spread, spread) for _ in range(config.num_workers)
        ]
        self._rng = rng
        self.attempts_log: list[_Attempt] = []

    def run(self, tasks: list[Task]) -> tuple[list[TaskResult], float]:
        """Execute all tasks; returns (results, simulated makespan).

        Task callables execute exactly once for real (the first non-failed
        attempt's value is reused by any speculative duplicate, since our
        tasks are deterministic and side-effect-free by contract).

        Raises:
            TaskFailedError: a task failed ``max_attempts`` times.
        """
        free_at = [0.0] * self.config.num_workers
        results: list[TaskResult] = []
        for task in tasks:
            result = self._run_one(task, free_at)
            results.append(result)
        makespan = max(free_at) if free_at else 0.0
        return results, makespan

    # ------------------------------------------------------------ internals

    def _run_one(self, task: Task, free_at: list[float]) -> TaskResult:
        value_computed = False
        value: Any = None
        attempts = 0
        while attempts < self.config.max_attempts:
            worker = min(range(len(free_at)), key=lambda w: free_at[w])
            start = free_at[worker]
            attempts += 1
            failed = self._rng.random() < self.config.failure_prob
            straggled = (not failed) and self._rng.random() < self.config.straggler_prob
            duration = task.cost / self._speeds[worker]
            if straggled:
                duration *= self.config.straggler_factor
            if failed:
                # A failed attempt wastes half its nominal duration on average.
                waste = duration * self._rng.uniform(0.1, 0.9)
                free_at[worker] = start + waste
                self.attempts_log.append(
                    _Attempt(task, worker, start, start + waste, True, False)
                )
                continue
            if not value_computed:
                value = task.fn()
                value_computed = True
            end = start + duration
            self.attempts_log.append(_Attempt(task, worker, start, end, False, straggled))
            speculated = False
            if straggled and self.config.speculative_execution and len(free_at) > 1:
                # Launch a backup on the next-free other worker; earlier
                # finisher wins.
                others = [w for w in range(len(free_at)) if w != worker]
                backup = min(others, key=lambda w: free_at[w])
                backup_start = free_at[backup]
                backup_end = backup_start + task.cost / self._speeds[backup]
                self.attempts_log.append(
                    _Attempt(task, backup, backup_start, backup_end, False, False)
                )
                if backup_end < end:
                    free_at[backup] = backup_end
                    free_at[worker] = start  # original attempt killed
                    return TaskResult(task.task_id, value, backup, attempts + 1,
                                      backup_start, backup_end, speculated=True)
                free_at[backup] = backup_start  # backup killed
                speculated = True
            free_at[worker] = end
            return TaskResult(task.task_id, value, worker, attempts,
                              start, end, speculated=speculated)
        raise TaskFailedError(
            f"task {task.task_id} failed {self.config.max_attempts} attempts"
        )

    def worker_speeds(self) -> list[float]:
        """The drawn speed factors (test introspection)."""
        return list(self._speeds)
