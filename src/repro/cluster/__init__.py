"""Physical layer: simulated cluster and Map-Reduce engine (Figure 1).

The paper: *"Given that IE and II are often very computation intensive ...
we need parallel processing in the physical layer. A popular way to achieve
this is to use a computer cluster running Map-Reduce-like processes."*

We do not have a cluster, so we simulate one (documented substitution in
DESIGN.md): tasks execute in-process, but scheduling, data partitioning,
shuffle, worker failures, stragglers, and speculative re-execution are all
real, and a simulated clock yields makespans whose *shape* under varying
worker counts is the quantity experiment E7 reports.
"""

from repro.cluster.simulator import ClusterConfig, SimulatedCluster, Task, TaskResult
from repro.cluster.mapreduce import MapReduceJob, MapReduceResult, run_mapreduce

__all__ = [
    "ClusterConfig",
    "SimulatedCluster",
    "Task",
    "TaskResult",
    "MapReduceJob",
    "MapReduceResult",
    "run_mapreduce",
]
