"""Physical layer: simulated cluster and Map-Reduce engine (Figure 1).

The paper: *"Given that IE and II are often very computation intensive ...
we need parallel processing in the physical layer. A popular way to achieve
this is to use a computer cluster running Map-Reduce-like processes."*

We do not have a cluster, so we simulate one (documented substitution in
DESIGN.md): tasks execute in-process, but scheduling, data partitioning,
shuffle, worker failures, stragglers, and speculative re-execution are all
real, and a simulated clock yields makespans whose *shape* under varying
worker counts is the quantity experiment E7 reports.

Orthogonally, :mod:`repro.cluster.backends` provides *real* wall-clock
parallelism on the local machine: serial, thread-pool, and process-pool
execution backends that run the same task payloads (experiment E15).  The
simulator stays the cost/failure model; a backend changes only how fast
the work physically executes.
"""

from repro.cluster.backends import (
    BackendError,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from repro.cluster.simulator import ClusterConfig, SimulatedCluster, Task, TaskResult
from repro.cluster.mapreduce import MapReduceJob, MapReduceResult, run_mapreduce

__all__ = [
    "BackendError",
    "ClusterConfig",
    "ExecutionBackend",
    "MapReduceJob",
    "MapReduceResult",
    "ProcessPoolBackend",
    "SerialBackend",
    "SimulatedCluster",
    "Task",
    "TaskResult",
    "ThreadPoolBackend",
    "make_backend",
    "run_mapreduce",
]
