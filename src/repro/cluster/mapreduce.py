"""Map-Reduce over the simulated cluster.

A job is defined by a map function ``(item) -> [(key, value), ...]``, an
optional combiner, and a reduce function ``(key, [values]) -> result``.
Input items are split into map tasks of ``split_size`` items; map outputs
are shuffled by ``hash(key) % num_reducers`` into reduce partitions; reduce
tasks then run per partition.  Both waves are scheduled on the
:class:`~repro.cluster.simulator.SimulatedCluster`, and the job's simulated
makespan is map-makespan + shuffle cost + reduce-makespan.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.cluster.simulator import ClusterConfig, SimulatedCluster, Task

MapFn = Callable[[Any], Iterable[tuple[Hashable, Any]]]
ReduceFn = Callable[[Hashable, list[Any]], Any]
CombineFn = Callable[[Hashable, list[Any]], list[Any]]


@dataclass
class MapReduceJob:
    """Job description.

    Attributes:
        map_fn: item → iterable of (key, value).
        reduce_fn: (key, values) → reduced value.
        combine_fn: optional map-side pre-aggregation, (key, values) →
            smaller value list; cuts shuffle volume.
        split_size: input items per map task.
        num_reducers: reduce partitions.
        map_cost_per_item: simulated work units per input item (models the
            paper's "IE is computation intensive" premise).
        reduce_cost_per_value: simulated work units per shuffled value.
    """

    map_fn: MapFn
    reduce_fn: ReduceFn
    combine_fn: CombineFn | None = None
    split_size: int = 100
    num_reducers: int = 4
    map_cost_per_item: float = 1.0
    reduce_cost_per_value: float = 0.1


@dataclass
class MapReduceResult:
    """Job outcome.

    Attributes:
        output: key → reduced value.
        map_makespan: simulated time of the map wave.
        reduce_makespan: simulated time of the reduce wave.
        shuffle_records: number of (key, value) pairs shuffled.
        makespan: total simulated job time.
    """

    output: dict[Hashable, Any]
    map_makespan: float
    reduce_makespan: float
    shuffle_records: int
    makespan: float = field(init=False)

    def __post_init__(self) -> None:
        self.makespan = self.map_makespan + self.reduce_makespan


def _chunk(items: Sequence[Any], size: int) -> list[Sequence[Any]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def _stable_hash(key: Hashable) -> int:
    """Process-independent hash (Python's str hash is salted per process)."""
    return zlib.crc32(repr(key).encode("utf-8"))


def run_mapreduce(job: MapReduceJob, items: Sequence[Any],
                  cluster: SimulatedCluster | None = None,
                  config: ClusterConfig | None = None) -> MapReduceResult:
    """Run a Map-Reduce job over ``items``.

    Provide either an existing ``cluster`` or a ``config`` (defaults to a
    4-worker cluster).

    Raises:
        repro.cluster.simulator.TaskFailedError: a task exhausted retries.
    """
    if cluster is None:
        cluster = SimulatedCluster(config or ClusterConfig())

    splits = _chunk(items, job.split_size)

    def make_map_task(index: int, split: Sequence[Any]) -> Task:
        def run() -> list[tuple[Hashable, Any]]:
            pairs: list[tuple[Hashable, Any]] = []
            for item in split:
                pairs.extend(job.map_fn(item))
            if job.combine_fn is not None:
                grouped: dict[Hashable, list[Any]] = {}
                for key, value in pairs:
                    grouped.setdefault(key, []).append(value)
                pairs = [
                    (key, value)
                    for key, values in grouped.items()
                    for value in job.combine_fn(key, values)
                ]
            return pairs

        return Task(task_id=f"map-{index}", fn=run,
                    cost=max(len(split) * job.map_cost_per_item, 1e-9))

    map_tasks = [make_map_task(i, split) for i, split in enumerate(splits)]
    map_results, map_makespan = cluster.run(map_tasks)

    # Shuffle: partition by hash(key) % num_reducers.
    partitions: list[dict[Hashable, list[Any]]] = [
        {} for _ in range(job.num_reducers)
    ]
    shuffle_records = 0
    for result in map_results:
        for key, value in result.value:
            shuffle_records += 1
            bucket = partitions[_stable_hash(key) % job.num_reducers]
            bucket.setdefault(key, []).append(value)

    def make_reduce_task(index: int, partition: dict[Hashable, list[Any]]) -> Task:
        def run() -> dict[Hashable, Any]:
            return {key: job.reduce_fn(key, values) for key, values in partition.items()}

        n_values = sum(len(v) for v in partition.values())
        return Task(task_id=f"reduce-{index}", fn=run,
                    cost=max(n_values * job.reduce_cost_per_value, 1e-9))

    reduce_tasks = [
        make_reduce_task(i, p) for i, p in enumerate(partitions) if p
    ]
    reduce_results, reduce_makespan = cluster.run(reduce_tasks)

    output: dict[Hashable, Any] = {}
    for result in reduce_results:
        output.update(result.value)
    return MapReduceResult(
        output=output,
        map_makespan=map_makespan,
        reduce_makespan=reduce_makespan,
        shuffle_records=shuffle_records,
    )
