"""Map-Reduce over the simulated cluster.

A job is defined by a map function ``(item) -> [(key, value), ...]``, an
optional combiner, and a reduce function ``(key, [values]) -> result``.
Input items are split into map tasks of ``split_size`` items; map outputs
are shuffled by ``hash(key) % num_reducers`` into reduce partitions; reduce
tasks then run per partition.  Both waves are scheduled on the
:class:`~repro.cluster.simulator.SimulatedCluster`, and the job's simulated
makespan is map-makespan + shuffle cost + reduce-makespan.

When an :class:`~repro.cluster.backends.ExecutionBackend` is supplied, the
*real* work of each wave (running map/combine/reduce payloads) fans out on
that backend first — threads or processes for actual wall-clock
parallelism — and the simulator then schedules the same tasks against
precomputed results.  The simulated makespan is byte-identical with and
without a backend (the cost model sees the same tasks in the same order);
the backend only changes how fast the wave really runs, reported as
``real_seconds``.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.cluster.backends import ExecutionBackend
from repro.cluster.simulator import ClusterConfig, SimulatedCluster, Task, TaskResult
from repro.faults.retry import RetryPolicy
from repro.telemetry import metrics, tracing

MapFn = Callable[[Any], Iterable[tuple[Hashable, Any]]]
ReduceFn = Callable[[Hashable, list[Any]], Any]
CombineFn = Callable[[Hashable, list[Any]], list[Any]]


@dataclass
class MapReduceJob:
    """Job description.

    Attributes:
        map_fn: item → iterable of (key, value).
        reduce_fn: (key, values) → reduced value.
        combine_fn: optional map-side pre-aggregation, (key, values) →
            smaller value list; cuts shuffle volume.
        split_size: input items per map task.
        num_reducers: reduce partitions.
        map_cost_per_item: simulated work units per input item (models the
            paper's "IE is computation intensive" premise).
        reduce_cost_per_value: simulated work units per shuffled value.
    """

    map_fn: MapFn
    reduce_fn: ReduceFn
    combine_fn: CombineFn | None = None
    split_size: int = 100
    num_reducers: int = 4
    map_cost_per_item: float = 1.0
    reduce_cost_per_value: float = 0.1


@dataclass
class MapReduceResult:
    """Job outcome.

    Attributes:
        output: key → reduced value.
        map_makespan: simulated time of the map wave.
        reduce_makespan: simulated time of the reduce wave.
        shuffle_records: number of (key, value) pairs shuffled.
        backend_name: which execution backend ran the real work
            (``inline`` when no backend was supplied).
        real_seconds: wall-clock seconds the backend spent executing wave
            payloads (0.0 inline — payloads run inside the simulator).
        map_tasks: map tasks in the map wave.
        reduce_tasks: reduce tasks in the reduce wave (empty partitions
            are not scheduled).
        makespan: total simulated job time.
    """

    output: dict[Hashable, Any]
    map_makespan: float
    reduce_makespan: float
    shuffle_records: int
    backend_name: str = "inline"
    real_seconds: float = 0.0
    map_tasks: int = 0
    reduce_tasks: int = 0
    makespan: float = field(init=False)

    def __post_init__(self) -> None:
        self.makespan = self.map_makespan + self.reduce_makespan


def _chunk(items: Sequence[Any], size: int) -> list[Sequence[Any]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def _stable_hash(key: Hashable) -> int:
    """Process-independent hash (Python's str hash is salted per process)."""
    return zlib.crc32(repr(key).encode("utf-8"))


@dataclass(frozen=True)
class _MapSplitPayload:
    """Real work of one map task: map every item, then combine.

    A module-level dataclass (not a closure) so process backends can
    pickle it — provided ``map_fn``/``combine_fn`` are themselves
    picklable.
    """

    map_fn: MapFn
    combine_fn: CombineFn | None

    def __call__(self, split: Sequence[Any]) -> list[tuple[Hashable, Any]]:
        pairs: list[tuple[Hashable, Any]] = []
        for item in split:
            pairs.extend(self.map_fn(item))
        if self.combine_fn is not None:
            grouped: dict[Hashable, list[Any]] = {}
            for key, value in pairs:
                grouped.setdefault(key, []).append(value)
            pairs = [
                (key, value)
                for key, values in grouped.items()
                for value in self.combine_fn(key, values)
            ]
        return pairs


@dataclass(frozen=True)
class _ReducePartitionPayload:
    """Real work of one reduce task (picklable, see _MapSplitPayload)."""

    reduce_fn: ReduceFn

    def __call__(self, partition: dict[Hashable, list[Any]]) -> dict[Hashable, Any]:
        return {
            key: self.reduce_fn(key, values)
            for key, values in partition.items()
        }


def _emit_task_spans(tracer: Any, wave: str,
                     results: list[TaskResult]) -> None:
    """Per-task child spans carrying the simulator's scheduling outcome.

    Real durations of individual simulated tasks are not observable (the
    wave runs them inside ``cluster.run``), so the span's value is its
    attributes: assigned worker, attempts, simulated start/end.
    """
    for result in results:
        with tracer.span(
            f"mapreduce.task.{wave}",
            task_id=result.task_id,
            worker=result.worker,
            attempts=result.attempts,
            simulated_start=result.start_time,
            simulated_end=result.end_time,
            speculated=result.speculated,
        ):
            pass


def _approx_record_bytes(key: Hashable, value: Any) -> int:
    """Cheap size proxy for one shuffled (key, value) record."""
    return len(repr(key)) + len(repr(value))


def run_mapreduce(job: MapReduceJob, items: Sequence[Any],
                  cluster: SimulatedCluster | None = None,
                  config: ClusterConfig | None = None,
                  backend: ExecutionBackend | None = None,
                  retry: RetryPolicy | None = None) -> MapReduceResult:
    """Run a Map-Reduce job over ``items``.

    Provide either an existing ``cluster`` or a ``config`` (defaults to a
    4-worker cluster).  With a ``backend``, wave payloads execute on it for
    real wall-clock parallelism before the simulator schedules the (now
    precomputed) tasks — simulated makespans are unaffected.  ``retry``
    adds a wave-level re-run budget on top of the backend's own per-chunk
    retries: if an entire wave fails (e.g. :class:`BackendError` after
    the backend's budget is spent), the wave is resubmitted whole.

    Emits a ``mapreduce.job`` span with per-wave and per-task children,
    plus ``mapreduce.*`` metrics (task counts, shuffle records; shuffle
    bytes only while tracing is enabled — sizing every record costs real
    time).

    Raises:
        repro.cluster.simulator.TaskFailedError: a task exhausted retries.
        repro.cluster.backends.BackendError: a process backend was given
            unpicklable map/combine/reduce functions.
    """
    if cluster is None:
        cluster = SimulatedCluster(config or ClusterConfig())

    tracer = tracing.get_tracer()
    registry = metrics.get_registry()
    with tracer.span(
        "mapreduce.job",
        items=len(items),
        split_size=job.split_size,
        num_reducers=job.num_reducers,
        backend=backend.name if backend is not None else "inline",
    ) as job_span:
        splits = _chunk(items, job.split_size)
        real_seconds = 0.0

        map_payload = _MapSplitPayload(job.map_fn, job.combine_fn)
        with tracer.span("mapreduce.wave.map", tasks=len(splits)) as map_span:
            map_outputs: list[list[tuple[Hashable, Any]]] | None = None
            if backend is not None:
                started = time.perf_counter()
                if retry is not None:
                    map_outputs = retry.run(
                        lambda: backend.map(map_payload, splits, chunk_size=1),
                        salt="mapreduce:map",
                    )
                else:
                    map_outputs = backend.map(map_payload, splits,
                                              chunk_size=1)
                real_seconds += time.perf_counter() - started

            def make_map_task(index: int, split: Sequence[Any]) -> Task:
                if map_outputs is not None:
                    precomputed = map_outputs[index]
                    run: Callable[[], list[tuple[Hashable, Any]]] = (
                        lambda: precomputed
                    )
                else:
                    run = lambda: map_payload(split)
                return Task(task_id=f"map-{index}", fn=run,
                            cost=max(len(split) * job.map_cost_per_item, 1e-9))

            map_tasks = [make_map_task(i, s) for i, s in enumerate(splits)]
            map_results, map_makespan = cluster.run(map_tasks)
            map_span.set_attribute("simulated_makespan", map_makespan)
            if tracing.enabled():
                _emit_task_spans(tracer, "map", map_results)
        registry.inc("mapreduce.tasks.map", len(map_tasks))

        # Shuffle: partition by hash(key) % num_reducers.
        partitions: list[dict[Hashable, list[Any]]] = [
            {} for _ in range(job.num_reducers)
        ]
        shuffle_records = 0
        shuffle_bytes = 0
        size_records = tracing.enabled()
        for result in map_results:
            for key, value in result.value:
                shuffle_records += 1
                if size_records:
                    shuffle_bytes += _approx_record_bytes(key, value)
                bucket = partitions[_stable_hash(key) % job.num_reducers]
                bucket.setdefault(key, []).append(value)
        registry.inc("mapreduce.shuffle.records", shuffle_records)
        if size_records:
            registry.inc("mapreduce.shuffle.bytes", shuffle_bytes)

        live_partitions = [p for p in partitions if p]
        reduce_payload = _ReducePartitionPayload(job.reduce_fn)
        with tracer.span("mapreduce.wave.reduce",
                         tasks=len(live_partitions)) as reduce_span:
            reduce_outputs: list[dict[Hashable, Any]] | None = None
            if backend is not None:
                started = time.perf_counter()
                if retry is not None:
                    reduce_outputs = retry.run(
                        lambda: backend.map(reduce_payload, live_partitions,
                                            chunk_size=1),
                        salt="mapreduce:reduce",
                    )
                else:
                    reduce_outputs = backend.map(reduce_payload,
                                                 live_partitions, chunk_size=1)
                real_seconds += time.perf_counter() - started

            def make_reduce_task(index: int,
                                 partition: dict[Hashable, list[Any]]) -> Task:
                if reduce_outputs is not None:
                    precomputed = reduce_outputs[index]
                    run: Callable[[], dict[Hashable, Any]] = lambda: precomputed
                else:
                    run = lambda: reduce_payload(partition)
                n_values = sum(len(v) for v in partition.values())
                return Task(task_id=f"reduce-{index}", fn=run,
                            cost=max(n_values * job.reduce_cost_per_value, 1e-9))

            reduce_tasks = [
                make_reduce_task(i, p) for i, p in enumerate(live_partitions)
            ]
            reduce_results, reduce_makespan = cluster.run(reduce_tasks)
            reduce_span.set_attribute("simulated_makespan", reduce_makespan)
            if tracing.enabled():
                _emit_task_spans(tracer, "reduce", reduce_results)
        registry.inc("mapreduce.tasks.reduce", len(reduce_tasks))

        output: dict[Hashable, Any] = {}
        for result in reduce_results:
            output.update(result.value)
        job_span.set_attribute("shuffle_records", shuffle_records)
        job_span.set_attribute("simulated_makespan",
                               map_makespan + reduce_makespan)
        return MapReduceResult(
            output=output,
            map_makespan=map_makespan,
            reduce_makespan=reduce_makespan,
            shuffle_records=shuffle_records,
            backend_name=backend.name if backend is not None else "inline",
            real_seconds=real_seconds,
            map_tasks=len(map_tasks),
            reduce_tasks=len(reduce_tasks),
        )
