"""Real parallel execution backends for the processing layer.

The simulated cluster models *time and failure* (E7's makespans); backends
model *wall-clock* parallelism: they actually execute task payloads, either
inline, on a thread pool, or on a process pool.  The paper's premise — "IE
is computation intensive ... we need parallel processing in the physical
layer" — is therefore realized twice: the simulator answers "how would this
scale on a cluster?", a backend answers "how fast does it run on this
machine right now?".

All backends preserve input order: ``backend.map(fn, items)`` returns
``[fn(items[0]), fn(items[1]), ...]`` regardless of which worker finished
first, so serial, thread, and process execution produce byte-identical
output streams (the determinism contract documented in DESIGN.md).

The process backend requires picklable callables and items.  Plan-level
callables in :mod:`repro.lang.executor` are module-level dataclasses for
exactly this reason; ad-hoc lambdas raise :class:`BackendError` with a
hint instead of a bare ``PicklingError``.

Telemetry: pool backends run every chunk under a fresh worker-local
:class:`~repro.telemetry.metrics.MetricsRegistry` and merge its snapshot
back into the caller's ambient registry, so metrics recorded inside
payloads (``extraction.docs`` etc.) aggregate to identical totals on
serial, thread, and process backends — counters are commutative, and
snapshots are merged in submission order.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from repro.telemetry import metrics


class BackendError(RuntimeError):
    """A backend could not be built or could not run a payload."""


@runtime_checkable
class ExecutionBackend(Protocol):
    """Uniform map-style execution surface.

    Attributes:
        name: short identifier reported in stats (``serial`` / ``thread``
            / ``process``).
        max_workers: degree of real parallelism (1 for serial).
    """

    name: str
    max_workers: int

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            chunk_size: int | None = None) -> list[Any]:
        """Apply ``fn`` to every item; results in input order."""
        ...

    def close(self) -> None:
        """Release pool resources (idempotent)."""
        ...


def _chunk(items: Sequence[Any], size: int) -> list[Sequence[Any]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def _apply_chunk(fn: Callable[[Any], Any], chunk: Sequence[Any]) -> list[Any]:
    """Worker-side loop; module-level so process pools can pickle it."""
    return [fn(item) for item in chunk]


def _apply_chunk_metered(
    fn: Callable[[Any], Any], chunk: Sequence[Any],
) -> tuple[list[Any], dict[str, Any]]:
    """Worker-side loop that captures payload metrics.

    Runs the chunk under a fresh worker-local registry (installed as this
    worker thread/process's ambient registry) and returns its snapshot
    alongside the results, for the caller to merge.
    """
    registry = metrics.MetricsRegistry()
    metrics.push_registry(registry)
    try:
        out = [fn(item) for item in chunk]
    finally:
        metrics.pop_registry()
    return out, registry.snapshot()


class SerialBackend:
    """Default backend: runs everything inline, fully deterministic."""

    name = "serial"
    max_workers = 1

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            chunk_size: int | None = None) -> list[Any]:
        return [fn(item) for item in items]

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _PoolBackend:
    """Shared chunked-submission logic for thread/process pools.

    Tasks are submitted as chunks (``max(len(items) // (workers * 4), 1)``
    items each by default) so per-task overhead — especially pickling for
    process pools — amortizes over many items, and results are reassembled
    in submission order.
    """

    name = "pool"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        if self.max_workers < 1:
            raise BackendError("max_workers must be >= 1")
        self._pool: _FuturesExecutor | None = None

    # ------------------------------------------------------------------ API

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            chunk_size: int | None = None) -> list[Any]:
        items = list(items)
        if not items:
            return []
        self._check_payload(fn, items[0])
        if chunk_size is None:
            chunk_size = max(len(items) // (self.max_workers * 4), 1)
        chunks = _chunk(items, chunk_size)
        pool = self._ensure_pool()
        futures = [
            pool.submit(_apply_chunk_metered, fn, chunk) for chunk in chunks
        ]
        parent_registry = metrics.get_registry()
        out: list[Any] = []
        for future in futures:  # submission order == input order
            results, snapshot = future.result()
            out.extend(results)
            parent_registry.merge(snapshot)
        return out

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "_PoolBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------ internals

    def _ensure_pool(self) -> _FuturesExecutor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _make_pool(self) -> _FuturesExecutor:
        raise NotImplementedError

    def _check_payload(self, fn: Callable[[Any], Any], sample: Any) -> None:
        """Hook: process pools validate picklability up front."""


class ThreadPoolBackend(_PoolBackend):
    """Thread-pool execution.

    Effective when the per-item work releases the GIL (I/O, C extensions,
    ``time.sleep``-style waits); pure-Python CPU work serializes on the GIL
    but still overlaps any I/O component.
    """

    name = "thread"

    def _make_pool(self) -> _FuturesExecutor:
        return ThreadPoolExecutor(max_workers=self.max_workers,
                                  thread_name_prefix="repro-backend")


class ProcessPoolBackend(_PoolBackend):
    """Process-pool execution: true multi-core fan-out.

    Payloads (callable + items) cross a process boundary, so both must be
    picklable — module-level functions or dataclass callables holding
    picklable state (all shipped extractors qualify).
    """

    name = "process"

    def _make_pool(self) -> _FuturesExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def _check_payload(self, fn: Callable[[Any], Any], sample: Any) -> None:
        try:
            pickle.dumps(fn)
            pickle.dumps(sample)
        except Exception as exc:  # PicklingError, TypeError, AttributeError…
            raise BackendError(
                f"process backend needs picklable payloads; "
                f"{fn!r} / sample item failed to pickle ({exc}). "
                f"Use a module-level function or a picklable callable "
                f"object, or switch to backend='thread'."
            ) from exc


_BACKENDS: dict[str, Callable[..., ExecutionBackend]] = {
    "serial": lambda max_workers=None: SerialBackend(),
    "thread": ThreadPoolBackend,
    "threads": ThreadPoolBackend,
    "process": ProcessPoolBackend,
    "processes": ProcessPoolBackend,
}


def make_backend(spec: "str | ExecutionBackend | None",
                 max_workers: int | None = None) -> ExecutionBackend | None:
    """Resolve a backend spec.

    Args:
        spec: ``None`` (no backend — inline execution), an
            :class:`ExecutionBackend` instance (returned as-is), or one of
            ``"serial"``, ``"thread"``, ``"process"``.
        max_workers: pool size for thread/process backends.

    Raises:
        BackendError: unknown spec string.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        factory = _BACKENDS.get(spec.lower())
        if factory is None:
            raise BackendError(
                f"unknown backend {spec!r}; expected one of "
                f"{sorted(set(_BACKENDS))}"
            )
        return factory(max_workers=max_workers)
    if isinstance(spec, ExecutionBackend):
        return spec
    raise BackendError(f"cannot build a backend from {spec!r}")
