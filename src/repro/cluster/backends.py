"""Real parallel execution backends for the processing layer.

The simulated cluster models *time and failure* (E7's makespans); backends
model *wall-clock* parallelism: they actually execute task payloads, either
inline, on a thread pool, or on a process pool.  The paper's premise — "IE
is computation intensive ... we need parallel processing in the physical
layer" — is therefore realized twice: the simulator answers "how would this
scale on a cluster?", a backend answers "how fast does it run on this
machine right now?".

All backends preserve input order: ``backend.map(fn, items)`` returns
``[fn(items[0]), fn(items[1]), ...]`` regardless of which worker finished
first, so serial, thread, and process execution produce byte-identical
output streams (the determinism contract documented in DESIGN.md).

The process backend requires picklable callables and items.  Plan-level
callables in :mod:`repro.lang.executor` are module-level dataclasses for
exactly this reason; ad-hoc lambdas raise :class:`BackendError` with a
hint instead of a bare ``PicklingError``.

Telemetry: pool backends run every chunk under a fresh worker-local
:class:`~repro.telemetry.metrics.MetricsRegistry` and merge its snapshot
back into the caller's ambient registry, so metrics recorded inside
payloads (``extraction.docs`` etc.) aggregate to identical totals on
serial, thread, and process backends — counters are commutative, and
snapshots are merged in submission order.  A failed chunk attempt never
returns its snapshot, so retried work is counted exactly once: by the
attempt whose results are actually used.

Fault tolerance: every backend runs under a
:class:`~repro.faults.retry.RetryPolicy`.  Failed chunks are retried for
up to ``max_attempts`` rounds (with deterministic backoff between
rounds); a dead process pool (``BrokenProcessPool`` after a worker
called ``os._exit`` or segfaulted) is rebuilt and the unfinished chunks
resubmitted.  Chunks that still fail are *isolated* — re-run one item at
a time so a single poison payload cannot take its chunk-mates down with
it.  A persistently failing item is routed to the caller's
``on_item_failure(item, exc)`` callback (the executor uses this to emit
quarantine markers) or, absent a callback, raises :class:`BackendError`.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from concurrent.futures import BrokenExecutor
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterator, Protocol, Sequence, runtime_checkable

from repro.faults.retry import DEFAULT_RETRY, RetryPolicy
from repro.telemetry import metrics


class BackendError(RuntimeError):
    """A backend could not be built or could not run a payload."""


@runtime_checkable
class ExecutionBackend(Protocol):
    """Uniform map-style execution surface.

    Attributes:
        name: short identifier reported in stats (``serial`` / ``thread``
            / ``process``).
        max_workers: degree of real parallelism (1 for serial).
    """

    name: str
    max_workers: int

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            chunk_size: int | None = None,
            on_item_failure: Callable[[Any, BaseException], Any] | None = None,
            ) -> list[Any]:
        """Apply ``fn`` to every item; results in input order.

        ``on_item_failure(item, exc)``, when given, supplies a substitute
        result for an item that still fails after the backend's retry
        budget; without it such an item raises :class:`BackendError`.
        """
        ...

    def close(self) -> None:
        """Release pool resources (idempotent)."""
        ...


def _chunk(items: Sequence[Any], size: int) -> list[Sequence[Any]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def _apply_chunk(fn: Callable[[Any], Any], chunk: Sequence[Any]) -> list[Any]:
    """Worker-side loop; module-level so process pools can pickle it."""
    return [fn(item) for item in chunk]


def _apply_chunk_metered(
    fn: Callable[[Any], Any], chunk: Sequence[Any],
) -> tuple[list[Any], dict[str, Any]]:
    """Worker-side loop that captures payload metrics.

    Runs the chunk under a fresh worker-local registry (installed as this
    worker thread/process's ambient registry) and returns its snapshot
    alongside the results, for the caller to merge.
    """
    registry = metrics.MetricsRegistry()
    metrics.push_registry(registry)
    try:
        out = [fn(item) for item in chunk]
    finally:
        metrics.pop_registry()
    return out, registry.snapshot()


class SerialBackend:
    """Default backend: runs everything inline, fully deterministic."""

    name = "serial"
    max_workers = 1

    def __init__(self, retry: RetryPolicy | None = None) -> None:
        self.retry = retry if retry is not None else DEFAULT_RETRY

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            chunk_size: int | None = None,
            on_item_failure: Callable[[Any, BaseException], Any] | None = None,
            ) -> list[Any]:
        out: list[Any] = []
        for index, item in enumerate(items):
            try:
                out.append(self.retry.run(lambda it=item: fn(it),
                                          salt=f"serial:{index}"))
            except Exception as exc:
                if on_item_failure is None:
                    raise BackendError(
                        f"task failed after {self.retry.max_attempts} "
                        f"attempt(s): {exc}"
                    ) from exc
                out.append(on_item_failure(item, exc))
        return out

    def map_stream(self, fn: Callable[[Any], Any], items: Sequence[Any],
                   window: int | None = None,
                   ) -> "Iterator[Any]":
        """Lazy :meth:`map`: items run only as results are consumed.

        The serial backend is fully demand-driven — an abandoned iterator
        (e.g. a LIMIT that stopped early) never executes the remaining
        items.  ``window`` is accepted for interface parity.
        """
        def gen() -> "Iterator[Any]":
            for index, item in enumerate(items):
                try:
                    yield self.retry.run(lambda it=item: fn(it),
                                         salt=f"serial:{index}")
                except Exception as exc:
                    raise BackendError(
                        f"task failed after {self.retry.max_attempts} "
                        f"attempt(s): {exc}"
                    ) from exc
        return gen()

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _PoolBackend:
    """Shared chunked-submission logic for thread/process pools.

    Tasks are submitted as chunks (``max(len(items) // (workers * 4), 1)``
    items each by default) so per-task overhead — especially pickling for
    process pools — amortizes over many items, and results are reassembled
    in submission order.
    """

    name = "pool"

    def __init__(self, max_workers: int | None = None,
                 retry: RetryPolicy | None = None) -> None:
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        if self.max_workers < 1:
            raise BackendError("max_workers must be >= 1")
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self._pool: _FuturesExecutor | None = None

    # ------------------------------------------------------------------ API

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            chunk_size: int | None = None,
            on_item_failure: Callable[[Any, BaseException], Any] | None = None,
            ) -> list[Any]:
        items = list(items)
        if not items:
            return []
        self._check_payload(fn, items[0])
        if chunk_size is None:
            chunk_size = max(len(items) // (self.max_workers * 4), 1)
        chunks = _chunk(items, chunk_size)
        parent_registry = metrics.get_registry()
        results: list[list[Any] | None] = [None] * len(chunks)
        pending = list(range(len(chunks)))
        # Chunk-level retry rounds: resubmit failed chunks wholesale
        # (covers transient errors and dead pools) before falling back to
        # per-item isolation below.
        for round_no in range(1, self.retry.max_attempts + 1):
            pending = self._run_round(fn, chunks, results, pending,
                                      parent_registry)
            if not pending:
                break
            if round_no < self.retry.max_attempts:
                parent_registry.inc("tasks.retried", len(pending))
                time.sleep(self.retry.delay_for(round_no, salt=self.name))
        # Chunks that failed every round: isolate item-by-item so one
        # poison payload cannot sink its chunk-mates.
        for index in pending:
            results[index] = self._isolate_chunk(
                fn, chunks[index], on_item_failure, parent_registry
            )
        out: list[Any] = []
        for chunk_results in results:  # chunk order == input order
            out.extend(chunk_results or [])
        return out

    def map_stream(self, fn: Callable[[Any], Any], items: Sequence[Any],
                   window: int | None = None,
                   ) -> "Iterator[Any]":
        """Streaming :meth:`map` with a bounded submit-ahead window.

        At most ``window`` tasks (default ``2 * max_workers``) are in
        flight or buffered at once; results are yielded in input order as
        they are consumed, and abandoning the iterator (LIMIT early-exit)
        stops further submission.  One item per task — callers pass
        coarse chunk payloads.  Failed tasks fall back to the per-item
        retry/rebuild path; worker metric snapshots merge into the
        caller's registry in consumption order.
        """
        items = list(items)
        parent_registry = metrics.get_registry()

        def gen() -> "Iterator[Any]":
            if not items:
                return
            self._check_payload(fn, items[0])
            in_flight = max(window or 2 * self.max_workers, 1)
            pending: deque[tuple[int, Any]] = deque()
            indices = iter(range(len(items)))

            def submit_next() -> bool:
                try:
                    index = next(indices)
                except StopIteration:
                    return False
                try:
                    future = self._ensure_pool().submit(
                        _apply_chunk_metered, fn, [items[index]])
                except Exception:  # pool broken at submit time
                    future = None
                pending.append((index, future))
                return True

            for _ in range(in_flight):
                if not submit_next():
                    break
            while pending:
                index, future = pending.popleft()
                try:
                    if future is None:
                        raise BrokenExecutor("submit failed")
                    item_results, snapshot = future.result()
                    result = item_results[0]
                except Exception:
                    if future is None:
                        self._rebuild_pool()
                    try:
                        result, snapshot = self._run_single(fn, items[index])
                    except Exception as exc:
                        raise BackendError(
                            f"task failed after {self.retry.max_attempts} "
                            f"attempt(s) on backend {self.name!r}: {exc}"
                        ) from exc
                parent_registry.merge(snapshot)
                submit_next()
                yield result
        return gen()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "_PoolBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------ internals

    def _run_round(self, fn: Callable[[Any], Any],
                   chunks: list[Sequence[Any]],
                   results: list[list[Any] | None],
                   pending: list[int],
                   parent_registry: metrics.MetricsRegistry) -> list[int]:
        """Run one submission round; returns indices of chunks that failed.

        A broken pool (worker death) fails every chunk that has not yet
        returned a result; the pool is rebuilt so the next round — or the
        isolation pass — runs on healthy workers.
        """
        pool = self._ensure_pool()
        futures = {}
        try:
            for index in pending:
                futures[index] = pool.submit(
                    _apply_chunk_metered, fn, chunks[index]
                )
        except Exception:  # pool broken/shut down at submit time
            self._rebuild_pool()
            return list(pending)
        failed: list[int] = []
        broken = False
        for index in pending:  # submission order == input order
            try:
                chunk_results, snapshot = futures[index].result()
            except BrokenExecutor:
                broken = True
                failed.append(index)
            except Exception:
                failed.append(index)
            else:
                results[index] = chunk_results
                parent_registry.merge(snapshot)
        if broken:
            self._rebuild_pool()
        return failed

    def _isolate_chunk(self, fn: Callable[[Any], Any],
                       chunk: Sequence[Any],
                       on_item_failure: Callable[[Any, BaseException], Any]
                       | None,
                       parent_registry: metrics.MetricsRegistry) -> list[Any]:
        """Re-run a persistently failing chunk one item at a time."""
        out: list[Any] = []
        for item in chunk:
            try:
                result, snapshot = self._run_single(fn, item)
            except Exception as exc:
                if on_item_failure is None:
                    raise BackendError(
                        f"task failed after {self.retry.max_attempts} "
                        f"attempt(s) on backend {self.name!r}: {exc}"
                    ) from exc
                out.append(on_item_failure(item, exc))
            else:
                out.append(result)
                parent_registry.merge(snapshot)
        return out

    def _run_single(self, fn: Callable[[Any], Any],
                    item: Any) -> tuple[Any, dict[str, Any]]:
        """One item, with its own retry budget and pool-rebuild handling."""
        last_exc: BaseException = BackendError("no attempt ran")
        for attempt in range(1, self.retry.max_attempts + 1):
            pool = self._ensure_pool()
            try:
                future = pool.submit(_apply_chunk_metered, fn, [item])
                item_results, snapshot = future.result()
                return item_results[0], snapshot
            except Exception as exc:
                last_exc = exc
                if isinstance(exc, BrokenExecutor):
                    self._rebuild_pool()
            if attempt < self.retry.max_attempts:
                metrics.get_registry().inc("tasks.retried")
                time.sleep(self.retry.delay_for(attempt, salt="isolate"))
        raise last_exc

    def _rebuild_pool(self) -> None:
        """Discard a (possibly broken) pool; next use builds a fresh one."""
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._pool = None
        metrics.get_registry().inc("backend.pool_rebuilds")

    def _ensure_pool(self) -> _FuturesExecutor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _make_pool(self) -> _FuturesExecutor:
        raise NotImplementedError

    def _check_payload(self, fn: Callable[[Any], Any], sample: Any) -> None:
        """Hook: process pools validate picklability up front."""


class ThreadPoolBackend(_PoolBackend):
    """Thread-pool execution.

    Effective when the per-item work releases the GIL (I/O, C extensions,
    ``time.sleep``-style waits); pure-Python CPU work serializes on the GIL
    but still overlaps any I/O component.
    """

    name = "thread"

    def _make_pool(self) -> _FuturesExecutor:
        return ThreadPoolExecutor(max_workers=self.max_workers,
                                  thread_name_prefix="repro-backend")


class ProcessPoolBackend(_PoolBackend):
    """Process-pool execution: true multi-core fan-out.

    Payloads (callable + items) cross a process boundary, so both must be
    picklable — module-level functions or dataclass callables holding
    picklable state (all shipped extractors qualify).
    """

    name = "process"

    def _make_pool(self) -> _FuturesExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def _check_payload(self, fn: Callable[[Any], Any], sample: Any) -> None:
        try:
            pickle.dumps(fn)
            pickle.dumps(sample)
        except Exception as exc:  # PicklingError, TypeError, AttributeError…
            raise BackendError(
                f"process backend needs picklable payloads; "
                f"{fn!r} / sample item failed to pickle ({exc}). "
                f"Use a module-level function or a picklable callable "
                f"object, or switch to backend='thread'."
            ) from exc


_BACKENDS: dict[str, Callable[..., ExecutionBackend]] = {
    "serial": lambda max_workers=None, retry=None: SerialBackend(retry=retry),
    "thread": ThreadPoolBackend,
    "threads": ThreadPoolBackend,
    "process": ProcessPoolBackend,
    "processes": ProcessPoolBackend,
}


def make_backend(spec: "str | ExecutionBackend | None",
                 max_workers: int | None = None,
                 retry: RetryPolicy | None = None) -> ExecutionBackend | None:
    """Resolve a backend spec.

    Args:
        spec: ``None`` (no backend — inline execution), an
            :class:`ExecutionBackend` instance (returned as-is), or one of
            ``"serial"``, ``"thread"``, ``"process"``.
        max_workers: pool size for thread/process backends.
        retry: task retry policy; defaults to
            :data:`~repro.faults.retry.DEFAULT_RETRY`.

    Raises:
        BackendError: unknown spec string.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        factory = _BACKENDS.get(spec.lower())
        if factory is None:
            raise BackendError(
                f"unknown backend {spec!r}; expected one of "
                f"{sorted(set(_BACKENDS))}"
            )
        return factory(max_workers=max_workers, retry=retry)
    if isinstance(spec, ExecutionBackend):
        return spec
    raise BackendError(f"cannot build a backend from {spec!r}")
