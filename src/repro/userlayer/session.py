"""Exploration sessions: iterative, mode-switching data exploitation.

"Our DGE model should allow users to start in whatever data-exploitation
mode they deem comfortable (e.g., keyword search, structured querying,
browsing, visualization), then help them move seamlessly into the mode that
is ultimately appropriate ... users often start with an ill-defined
information need, then refine it during the exploration process."

An :class:`ExplorationSession` records the user's trajectory — keyword
searches, suggested reformulations, chosen candidates, executed structured
queries, added refinements — and exposes transitions between modes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CancellationToken
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.qcache import QueryResultCache
from repro.storage.rdbms.sql import execute_sql
from repro.userlayer.search import DocumentResult, KeywordSearchEngine
from repro.userlayer.translate import QueryTranslator, TranslationCandidate


@dataclass
class SessionStep:
    """One recorded interaction."""

    mode: str  # "keyword" | "suggest" | "structured" | "refine" | "browse"
    input_text: str
    result_summary: str


@dataclass
class ExplorationSession:
    """One user's iterative exploration over the system.

    Args:
        search: keyword-search service.
        translator: keyword→structured translation service.
        db: the final structured store (for running chosen queries).
        cache: optional shared result cache — when set, the session's
            SELECTs are served through it (repeated exploration steps
            between commits hit memory).
        deadline_seconds: per-statement deadline; every statement the
            session runs is cooperatively cancelled past it
            (:class:`~repro.errors.QueryTimeoutError`).  None disables.
        shutdown: optional shared shutdown event (the serving layer's
            drain signal); a set event cancels in-flight statements.
    """

    search: KeywordSearchEngine
    translator: QueryTranslator
    db: Database
    user: str = "anonymous"
    cache: QueryResultCache | None = None
    deadline_seconds: float | None = None
    shutdown: threading.Event | None = None
    history: list[SessionStep] = field(default_factory=list)
    _last_candidates: list[TranslationCandidate] = field(default_factory=list)
    _last_sql: str | None = None

    def _run_sql(self, sql: str) -> list[dict[str, Any]]:
        guard: CancellationToken | None = None
        if self.deadline_seconds is not None or self.shutdown is not None:
            guard = CancellationToken.after(
                self.deadline_seconds, event=self.shutdown, sql=sql)
        if self.cache is not None:
            return self.cache.execute(sql, guard=guard)
        return execute_sql(self.db, sql, guard=guard)

    # -------------------------------------------------------------- modes

    def keyword(self, query: str, k: int = 5) -> list[DocumentResult]:
        """Keyword-search mode: the comfortable starting point."""
        results = self.search.search(query, k=k)
        self.history.append(
            SessionStep("keyword", query, f"{len(results)} documents")
        )
        return results

    def suggest(self, query: str, k: int = 5) -> list[TranslationCandidate]:
        """Guidance mode: show candidate structured reformulations."""
        self._last_candidates = self.translator.translate(query, k=k)
        self.history.append(
            SessionStep("suggest", query,
                        f"{len(self._last_candidates)} candidates")
        )
        return self._last_candidates

    def choose(self, index: int) -> list[dict[str, Any]]:
        """Pick a suggested candidate and run it (mode transition).

        Raises:
            IndexError: no such candidate.
            RuntimeError: :meth:`suggest` was not called first.
        """
        if not self._last_candidates:
            raise RuntimeError("call suggest() before choose()")
        candidate = self._last_candidates[index]
        return self.structured(candidate.sql)

    def structured(self, sql: str) -> list[dict[str, Any]]:
        """Structured-query mode (sophisticated users come here directly)."""
        rows = self._run_sql(sql)
        self._last_sql = sql
        self.history.append(
            SessionStep("structured", sql, f"{len(rows)} rows")
        )
        return rows

    def refine(self, extra_condition: str) -> list[dict[str, Any]]:
        """Refinement mode: AND an extra condition onto the last query.

        Raises:
            RuntimeError: no structured query has run yet.
        """
        if self._last_sql is None:
            raise RuntimeError("no query to refine yet")
        sql = self._last_sql
        lowered = sql.lower()
        for clause in (" group by ", " order by ", " limit "):
            cut = lowered.find(clause)
            if cut >= 0:
                head, tail = sql[:cut], sql[cut:]
                break
        else:
            head, tail = sql, ""
        if " where " in head.lower():
            refined = f"{head} AND {extra_condition}{tail}"
        else:
            refined = f"{head} WHERE {extra_condition}{tail}"
        return self.structured(refined)

    def browse(self, table: str, limit: int = 20) -> list[dict[str, Any]]:
        """Browsing mode: peek at the derived structure."""
        rows = self._run_sql(f"SELECT * FROM {table} LIMIT {limit}")
        self.history.append(
            SessionStep("browse", table, f"{len(rows)} rows")
        )
        return rows

    def visualize(self, sql: str, label_key: str, value_key: str) -> str:
        """Visualization mode: run a query and render a bar chart.

        Raises:
            ValueError: the result is empty or non-numeric in ``value_key``.
        """
        from repro.userlayer.visualize import bar_chart

        rows = self._run_sql(sql)
        chart = bar_chart(rows, label_key, value_key)
        self._last_sql = sql
        self.history.append(
            SessionStep("visualize", sql, f"chart of {len(rows)} rows")
        )
        return chart

    # -------------------------------------------------------------- replay

    def transcript(self) -> str:
        """Readable session log (what the paper calls the exploration
        trajectory)."""
        lines = [f"session for {self.user}:"]
        for i, step in enumerate(self.history, start=1):
            lines.append(
                f"  {i}. [{step.mode}] {step.input_text!r} -> {step.result_summary}"
            )
        return "\n".join(lines)
