"""Text visualization of query results.

The DGE model's exploitation modes include *visualization* alongside
keyword search, structured querying, and browsing.  This module renders
query results (lists of dicts, as the SQL layer returns) into terminal
charts: horizontal bar charts, sparklines, and histograms — enough for a
user to eyeball a distribution mid-exploration and then refine.
"""

from __future__ import annotations

from typing import Any, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_BAR_CHAR = "█"


def _numeric(values: Sequence[Any]) -> list[float]:
    out = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"non-numeric value {value!r} in chart data")
        out.append(float(value))
    return out


def bar_chart(rows: Sequence[dict[str, Any]], label_key: str,
              value_key: str, width: int = 40) -> str:
    """Horizontal bar chart of ``value_key`` per ``label_key``.

    Raises:
        ValueError: empty rows, missing keys, or non-numeric values.
    """
    if not rows:
        raise ValueError("no rows to chart")
    labels = [str(r.get(label_key, "")) for r in rows]
    values = _numeric([r.get(value_key, 0) for r in rows])
    peak = max(abs(v) for v in values) or 1.0
    label_width = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = _BAR_CHAR * max(1, round(abs(value) / peak * width))
        lines.append(f"{label.rjust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)


def sparkline(values: Sequence[Any]) -> str:
    """One-line sparkline of a numeric series.

    Raises:
        ValueError: empty or non-numeric input.
    """
    numbers = _numeric(values)
    if not numbers:
        raise ValueError("no values for sparkline")
    low, high = min(numbers), max(numbers)
    span = high - low or 1.0
    return "".join(
        _SPARK_LEVELS[
            min(int((v - low) / span * len(_SPARK_LEVELS)),
                len(_SPARK_LEVELS) - 1)
        ]
        for v in numbers
    )


def histogram(values: Sequence[Any], bins: int = 8, width: int = 40) -> str:
    """Terminal histogram of a numeric sample.

    Raises:
        ValueError: empty input or non-positive bin count.
    """
    numbers = _numeric(values)
    if not numbers:
        raise ValueError("no values to histogram")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    low, high = min(numbers), max(numbers)
    span = (high - low) or 1.0
    counts = [0] * bins
    for value in numbers:
        index = min(int((value - low) / span * bins), bins - 1)
        counts[index] += 1
    peak = max(counts) or 1
    lines = []
    for i, count in enumerate(counts):
        lo = low + span * i / bins
        hi = low + span * (i + 1) / bins
        bar = _BAR_CHAR * max(0, round(count / peak * width))
        lines.append(f"[{lo:8.2f}, {hi:8.2f}) | {bar} {count}")
    return "\n".join(lines)


def table(rows: Sequence[dict[str, Any]], limit: int = 20) -> str:
    """Plain aligned table of result rows (browsing mode's default view)."""
    if not rows:
        return "(no rows)"
    shown = list(rows[:limit])
    headers = list(shown[0].keys())
    widths = [
        max(len(h), *(len(str(r.get(h, ""))) for r in shown)) for h in headers
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in shown:
        lines.append(
            "  ".join(str(row.get(h, "")).ljust(w)
                      for h, w in zip(headers, widths))
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more rows")
    return "\n".join(lines)
