"""Inverted index with BM25 ranking.

Indexes arbitrary (doc_id, text) pairs — raw documents, or structured facts
rendered as pseudo-documents ("madison sep_temp 70") so keyword search can
reach into the derived structure too.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass, field

_TOKEN_RE = re.compile(r"[A-Za-z0-9_]+")


def index_tokens(text: str) -> list[str]:
    """Lowercased alphanumeric tokens for indexing and querying."""
    return [t.lower() for t in _TOKEN_RE.findall(text)]


@dataclass(frozen=True)
class Posting:
    """One document's entry in a term's posting list."""

    doc_id: str
    term_frequency: int


@dataclass(frozen=True)
class SearchHit:
    """One ranked result."""

    doc_id: str
    score: float


@dataclass
class InvertedIndex:
    """Classic inverted index with Okapi BM25 scoring.

    Args:
        k1 / b: BM25 parameters (defaults are the standard 1.2 / 0.75).
    """

    k1: float = 1.2
    b: float = 0.75
    _postings: dict[str, list[Posting]] = field(default_factory=dict)
    _doc_lengths: dict[str, int] = field(default_factory=dict)

    def add(self, doc_id: str, text: str) -> None:
        """Index one document (re-adding an ID raises).

        Raises:
            ValueError: duplicate doc_id.
        """
        if doc_id in self._doc_lengths:
            raise ValueError(f"document {doc_id!r} already indexed")
        tokens = index_tokens(text)
        self._doc_lengths[doc_id] = len(tokens)
        for term, tf in Counter(tokens).items():
            self._postings.setdefault(term, []).append(Posting(doc_id, tf))

    def remove(self, doc_id: str) -> None:
        """Drop one document from the index."""
        if doc_id not in self._doc_lengths:
            raise KeyError(doc_id)
        del self._doc_lengths[doc_id]
        for term in list(self._postings):
            remaining = [p for p in self._postings[term] if p.doc_id != doc_id]
            if remaining:
                self._postings[term] = remaining
            else:
                del self._postings[term]

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term.lower(), ()))

    def search(self, query: str, k: int = 10) -> list[SearchHit]:
        """Top-k BM25 results for a free-text query."""
        terms = index_tokens(query)
        if not terms or not self._doc_lengths:
            return []
        n_docs = len(self._doc_lengths)
        avg_len = sum(self._doc_lengths.values()) / n_docs
        scores: dict[str, float] = {}
        for term in terms:
            postings = self._postings.get(term)
            if not postings:
                continue
            df = len(postings)
            idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
            for posting in postings:
                length = self._doc_lengths[posting.doc_id]
                tf = posting.term_frequency
                denom = tf + self.k1 * (
                    1 - self.b + self.b * length / avg_len
                )
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + (
                    idf * tf * (self.k1 + 1) / denom
                )
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [SearchHit(doc_id, score) for doc_id, score in ranked[:k]]

    def terms(self) -> list[str]:
        return sorted(self._postings)
