"""Query forms: parameterized structured-query templates.

The paper's user layer guides ordinary users to structured queries through
*form interfaces*: "one way to do so is to 'guess' and show the user
several structured queries using, say, form interfaces, then ask the user
to select the appropriate one."  A :class:`QueryForm` is such a template —
a SQL string with named slots plus human-readable labels — and the
:class:`FormCatalog` is the library the translator ranks against.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class FormSlot:
    """One fillable parameter of a form.

    Attributes:
        name: slot name used in the template as ``{name}``.
        label: what the UI shows.
        slot_type: ``text`` | ``number`` (controls literal quoting).
        required: unfilled required slots block instantiation.
        default: value used when optional and unfilled.
    """

    name: str
    label: str
    slot_type: str = "text"
    required: bool = True
    default: Any = None


@dataclass(frozen=True)
class QueryForm:
    """A structured-query template with slots.

    Attributes:
        form_id: stable identifier.
        title: human-readable description ("Average temperature of a city
            over a month range").
        sql_template: SQL with ``{slot}`` placeholders.
        slots: the fillable parameters.
        keywords: terms that should attract this form during translation.
    """

    form_id: str
    title: str
    sql_template: str
    slots: tuple[FormSlot, ...] = ()
    keywords: tuple[str, ...] = ()

    def instantiate(self, values: dict[str, Any]) -> str:
        """Fill the template; values are SQL-quoted by slot type.

        Raises:
            ValueError: missing required slot or unknown slot name.
        """
        known = {s.name for s in self.slots}
        unknown = set(values) - known
        if unknown:
            raise ValueError(f"unknown slot(s) {sorted(unknown)}")
        rendered: dict[str, str] = {}
        for slot in self.slots:
            if slot.name in values:
                value = values[slot.name]
            elif not slot.required:
                value = slot.default
            else:
                raise ValueError(f"required slot {slot.name!r} not filled")
            rendered[slot.name] = self._quote(slot, value)
        return self.sql_template.format(**rendered)

    @staticmethod
    def _quote(slot: FormSlot, value: Any) -> str:
        if slot.slot_type == "number":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"slot {slot.name!r} expects a number, got {value!r}"
                )
            return str(value)
        escaped = str(value).replace("'", "''")
        return f"'{escaped}'"

    def all_terms(self) -> list[str]:
        """Every word associated with this form (for ranking)."""
        words: list[str] = []
        for source in (self.title, " ".join(self.keywords),
                       " ".join(s.label for s in self.slots)):
            words.extend(re.findall(r"[A-Za-z0-9_]+", source.lower()))
        return words


class FormCatalog:
    """The library of registered query forms."""

    def __init__(self) -> None:
        self._forms: dict[str, QueryForm] = {}

    def register(self, form: QueryForm) -> None:
        """Add a form.

        Raises:
            ValueError: duplicate form_id.
        """
        if form.form_id in self._forms:
            raise ValueError(f"form {form.form_id!r} already registered")
        self._forms[form.form_id] = form

    def get(self, form_id: str) -> QueryForm:
        return self._forms[form_id]

    def all_forms(self) -> list[QueryForm]:
        return list(self._forms.values())

    def __len__(self) -> int:
        return len(self._forms)
