"""User layer — Figure 1, top layer.

"This layer allows users (ordinary and sophisticated alike) to exploit the
data as well as provide feedback into the system."

Exploitation modes:

* keyword search over documents *and* structured facts
  (:mod:`repro.userlayer.index`, :mod:`repro.userlayer.search`);
* structured querying via the SQL subset (sophisticated users);
* query forms (:mod:`repro.userlayer.forms`) and keyword→structured-query
  translation (:mod:`repro.userlayer.translate`) that guide ordinary users
  from a keyword query to the structured reformulation — the paper's
  "guess and show the user several structured queries" mechanism;
* iterative exploration sessions (:mod:`repro.userlayer.session`);
* accounts, authentication, and reputation (:mod:`repro.userlayer.accounts`).
"""

from repro.userlayer.index import InvertedIndex, Posting, SearchHit
from repro.userlayer.search import KeywordSearchEngine
from repro.userlayer.forms import FormCatalog, QueryForm, FormSlot
from repro.userlayer.translate import QueryTranslator, TranslationCandidate
from repro.userlayer.session import ExplorationSession
from repro.userlayer.accounts import AuthenticationError, UserAccount, UserManager
from repro.userlayer.visualize import bar_chart, histogram, sparkline, table

__all__ = [
    "InvertedIndex",
    "Posting",
    "SearchHit",
    "KeywordSearchEngine",
    "QueryForm",
    "FormSlot",
    "FormCatalog",
    "QueryTranslator",
    "TranslationCandidate",
    "ExplorationSession",
    "UserAccount",
    "UserManager",
    "AuthenticationError",
    "bar_chart",
    "sparkline",
    "histogram",
    "table",
]
