"""Keyword → structured-query translation.

"An ordinary user ... most likely would just want to start with a keyword
query, such as 'average temperature Madison'.  In this case it would be
highly desirable for the system to guide the user somehow to a
structured-query reformulation."

The translator matches query terms against (a) aggregate intent words,
(b) the derived schema's attribute names, and (c) known entity values, then
emits ranked :class:`TranslationCandidate` objects — directly runnable SQL
plus, when a :class:`~repro.userlayer.forms.FormCatalog` is provided,
matching pre-built query forms with slots pre-filled.  Experiment E10
measures top-k accuracy of this guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.integration.similarity import jaro_winkler
from repro.userlayer.forms import FormCatalog
from repro.userlayer.index import index_tokens

_AGGREGATE_WORDS = {
    "average": "AVG", "avg": "AVG", "mean": "AVG",
    "total": "SUM", "sum": "SUM",
    "count": "COUNT", "many": "COUNT", "number": "COUNT",
    "highest": "MAX", "max": "MAX", "maximum": "MAX", "largest": "MAX",
    "warmest": "MAX", "biggest": "MAX",
    "lowest": "MIN", "min": "MIN", "minimum": "MIN", "smallest": "MIN",
    "coldest": "MIN",
}

_STOPWORDS = {
    "the", "of", "in", "a", "an", "for", "is", "what", "whats", "how",
    "find", "show", "me", "to", "and", "with", "on", "at", "by",
}


@dataclass(frozen=True)
class TranslationCandidate:
    """One proposed structured reformulation of a keyword query.

    Attributes:
        sql: runnable SQL for the mini engine.
        description: human-readable phrasing shown for selection.
        score: ranking score (higher is better).
        form_id: the source form, when the candidate came from the catalog.
        slot_values: pre-filled slot values for that form.
    """

    sql: str
    description: str
    score: float
    form_id: str | None = None
    slot_values: dict[str, Any] = field(default_factory=dict)


@dataclass
class QueryTranslator:
    """Translates keyword queries into ranked structured candidates.

    Args:
        table: target table of the derived structure.
        entity_column: column naming entities (e.g. ``city``).
        value_column: numeric value column for aggregate templates
            (e.g. ``value`` in an EAV layout) or None for wide tables.
        attribute_column: for EAV layouts, the column holding attribute
            names; None for wide tables where attributes are columns.
        attributes: known attribute names (wide columns or EAV values).
        entities: known entity values (for entity-term recognition).
        catalog: optional form catalog to rank against.
    """

    table: str
    entity_column: str
    attributes: Sequence[str] = ()
    entities: Sequence[str] = ()
    attribute_column: str | None = None
    value_column: str | None = None
    catalog: FormCatalog | None = None

    def translate(self, query: str, k: int = 5) -> list[TranslationCandidate]:
        """Top-k structured reformulations of a keyword query."""
        terms = [t for t in index_tokens(query) if t not in _STOPWORDS]
        aggregate = self._detect_aggregate(terms)
        attribute_hits = self._match_attributes(terms)
        entity_hits = self._match_entities(query, terms)
        candidates: list[TranslationCandidate] = []
        candidates.extend(
            self._sql_candidates(aggregate, attribute_hits, entity_hits)
        )
        if self.catalog is not None:
            candidates.extend(
                self._form_candidates(terms, aggregate, attribute_hits,
                                      entity_hits)
            )
        candidates.sort(key=lambda c: (-c.score, c.sql))
        deduped: list[TranslationCandidate] = []
        seen: set[str] = set()
        for candidate in candidates:
            if candidate.sql not in seen:
                seen.add(candidate.sql)
                deduped.append(candidate)
        return deduped[:k]

    # ------------------------------------------------------------ matching

    @staticmethod
    def _detect_aggregate(terms: Sequence[str]) -> str | None:
        for term in terms:
            if term in _AGGREGATE_WORDS:
                return _AGGREGATE_WORDS[term]
        return None

    def _match_attributes(self, terms: Sequence[str]) -> list[tuple[str, float]]:
        """Attributes matching query terms; the score is the mean per-token
        match quality over the attribute's tokens, so an attribute fully
        covered by the query ("september_temperature" for "september
        temperature") outranks one only half covered ("april_temperature")."""
        hits: dict[str, float] = {}
        for attribute in self.attributes:
            attr_tokens = list(dict.fromkeys(index_tokens(attribute.replace("_", " "))))
            token_scores: list[float] = []
            for attr_token in attr_tokens:
                best = 0.0
                for term in terms:
                    if term in _AGGREGATE_WORDS:
                        continue
                    if term == attr_token:
                        best = 1.0
                        break
                    # Abbreviation handling: "sep" ~ "september" either way.
                    if len(attr_token) >= 3 and term.startswith(attr_token):
                        best = max(best, 0.95)
                    elif len(term) >= 3 and attr_token.startswith(term):
                        best = max(best, 0.9)
                    else:
                        sim = jaro_winkler(term, attr_token)
                        if sim >= 0.85:
                            best = max(best, sim)
                token_scores.append(best)
            if any(token_scores):
                hits[attribute] = sum(token_scores) / len(token_scores)
        return sorted(hits.items(), key=lambda kv: (-kv[1], kv[0]))

    def _match_entities(self, query: str,
                        terms: Sequence[str]) -> list[tuple[str, float]]:
        """Known entities mentioned by the query, scored in [0, 1].

        Exact substring beats token overlap beats fuzzy match, so a typo
        like "Madsion" still resolves to "Madison" (slightly discounted)
        without ever outranking an exact mention of another entity.
        """
        lowered = query.lower()
        hits: dict[str, float] = {}
        for entity in self.entities:
            entity_lower = entity.lower()
            if entity_lower in lowered:
                hits[entity] = 1.0
                continue
            entity_tokens = set(index_tokens(entity))
            overlap = entity_tokens & set(terms)
            if overlap:
                hits[entity] = len(overlap) / len(entity_tokens)
                continue
            best_fuzzy = 0.0
            for term in terms:
                if len(term) < 4 or term in _AGGREGATE_WORDS:
                    continue
                for token in entity_tokens:
                    sim = jaro_winkler(term, token)
                    if sim >= 0.88:
                        best_fuzzy = max(best_fuzzy, sim)
            if best_fuzzy > 0:
                hits[entity] = 0.9 * best_fuzzy  # discounted: inexact
        return sorted(hits.items(), key=lambda kv: (-kv[1], kv[0]))

    # --------------------------------------------------------- candidates

    def _sql_candidates(
        self,
        aggregate: str | None,
        attribute_hits: list[tuple[str, float]],
        entity_hits: list[tuple[str, float]],
    ) -> list[TranslationCandidate]:
        out: list[TranslationCandidate] = []
        top_entities = entity_hits[:2]
        top_attributes = attribute_hits[:3]
        for attribute, attr_score in top_attributes or [("", 0.0)]:
            for entity, entity_score in top_entities or [("", 0.0)]:
                candidate = self._build_sql(aggregate, attribute, entity)
                if candidate is None:
                    continue
                sql, description = candidate
                score = (
                    attr_score
                    + entity_score
                    + (0.5 if aggregate else 0.0)
                )
                out.append(TranslationCandidate(sql, description, score))
        return out

    def _build_sql(self, aggregate: str | None, attribute: str,
                   entity: str) -> tuple[str, str] | None:
        conditions: list[str] = []
        description_parts: list[str] = []
        if self.attribute_column is not None:
            # EAV layout: facts(entity, attribute, value)
            if not attribute:
                return None
            conditions.append(f"{self.attribute_column} = '{attribute}'")
            target = self.value_column or "value"
        else:
            if not attribute:
                return None
            target = attribute
        if entity:
            escaped = entity.replace("'", "''")
            conditions.append(f"{self.entity_column} = '{escaped}'")
            description_parts.append(f"of {entity}")
        where = (" WHERE " + " AND ".join(conditions)) if conditions else ""
        if aggregate:
            sql = f"SELECT {aggregate}({target}) AS result FROM {self.table}{where}"
            description = (
                f"{aggregate.lower()} {attribute.replace('_', ' ')} "
                + " ".join(description_parts)
            ).strip()
        else:
            sql = (
                f"SELECT {self.entity_column}, {target} FROM {self.table}{where}"
            )
            description = (
                f"{attribute.replace('_', ' ')} " + " ".join(description_parts)
            ).strip()
        return sql, description

    def _form_candidates(
        self,
        terms: Sequence[str],
        aggregate: str | None,
        attribute_hits: list[tuple[str, float]],
        entity_hits: list[tuple[str, float]],
    ) -> list[TranslationCandidate]:
        assert self.catalog is not None
        out: list[TranslationCandidate] = []
        term_set = set(terms)
        for form in self.catalog.all_forms():
            form_terms = set(form.all_terms())
            overlap = len(term_set & form_terms)
            if overlap == 0:
                continue
            score = overlap / max(len(term_set), 1)
            slot_values: dict[str, Any] = {}
            for slot in form.slots:
                if slot.name in ("entity", self.entity_column) and entity_hits:
                    slot_values[slot.name] = entity_hits[0][0]
                elif slot.name == "attribute" and attribute_hits:
                    slot_values[slot.name] = attribute_hits[0][0]
            try:
                sql = form.instantiate(slot_values)
            except ValueError:
                continue  # required slots we could not pre-fill
            score += 0.3 * len(slot_values)
            if aggregate and aggregate.lower() in form.sql_template.lower():
                score += 0.4
            out.append(
                TranslationCandidate(sql, form.title, score,
                                     form_id=form.form_id,
                                     slot_values=slot_values)
            )
        return out
