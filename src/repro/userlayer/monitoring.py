"""Continuous queries: the *monitoring* exploitation mode.

The DGE model lists monitoring among the exploitation modes, and the essay
names "blog analysis and monitoring" among the applications.  A
:class:`ContinuousQuery` is a standing SQL query plus a row predicate; the
:class:`ContinuousQueryManager` re-evaluates registered queries whenever
the system stores new facts and delivers *new* matching rows (matched rows
are remembered, so each row notifies once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql

Callback = Callable[[str, dict[str, Any]], None]


@dataclass
class Notification:
    """One delivered match."""

    query_id: str
    row: dict[str, Any]


@dataclass
class ContinuousQuery:
    """A standing query.

    Attributes:
        query_id: unique identifier.
        sql: the query to re-run on each poke.
        condition: optional extra row predicate (Python callable).
        callback: invoked as ``callback(query_id, row)`` per new match;
            when None, matches accumulate in the manager's inbox.
    """

    query_id: str
    sql: str
    condition: Callable[[dict[str, Any]], bool] | None = None
    callback: Callback | None = None


def _row_key(row: dict[str, Any]) -> tuple:
    return tuple(sorted((k, repr(v)) for k, v in row.items()))


@dataclass
class ContinuousQueryManager:
    """Registry and evaluator for continuous queries."""

    db: Database
    inbox: list[Notification] = field(default_factory=list)
    _queries: dict[str, ContinuousQuery] = field(default_factory=dict)
    _seen: dict[str, set[tuple]] = field(default_factory=dict)

    def register(self, query: ContinuousQuery,
                 fire_on_existing: bool = False) -> int:
        """Add a standing query.

        Args:
            query: the continuous query.
            fire_on_existing: when False (default), rows already matching
                at registration time are absorbed silently; when True they
                are delivered immediately.

        Returns:
            Number of notifications delivered at registration.

        Raises:
            ValueError: duplicate query_id.
        """
        if query.query_id in self._queries:
            raise ValueError(f"query {query.query_id!r} already registered")
        self._queries[query.query_id] = query
        self._seen[query.query_id] = set()
        if fire_on_existing:
            return self._evaluate(query)
        for row in self._matching_rows(query):
            self._seen[query.query_id].add(_row_key(row))
        return 0

    def unregister(self, query_id: str) -> None:
        self._queries.pop(query_id, None)
        self._seen.pop(query_id, None)

    def poke(self) -> int:
        """Re-evaluate every query; returns notifications delivered."""
        delivered = 0
        for query in self._queries.values():
            delivered += self._evaluate(query)
        return delivered

    def pending(self, query_id: str | None = None) -> list[Notification]:
        """Accumulated inbox notifications (optionally for one query)."""
        if query_id is None:
            return list(self.inbox)
        return [n for n in self.inbox if n.query_id == query_id]

    def clear_inbox(self) -> None:
        self.inbox.clear()

    # ------------------------------------------------------------ internals

    def _matching_rows(self, query: ContinuousQuery) -> list[dict[str, Any]]:
        rows = execute_sql(self.db, query.sql)
        if query.condition is not None:
            rows = [r for r in rows if query.condition(r)]
        return rows

    def _evaluate(self, query: ContinuousQuery) -> int:
        delivered = 0
        seen = self._seen[query.query_id]
        for row in self._matching_rows(query):
            key = _row_key(row)
            if key in seen:
                continue
            seen.add(key)
            delivered += 1
            if query.callback is not None:
                query.callback(query.query_id, row)
            else:
                self.inbox.append(Notification(query.query_id, row))
        return delivered
