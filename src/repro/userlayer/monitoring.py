"""Continuous queries: the *monitoring* exploitation mode.

The DGE model lists monitoring among the exploitation modes, and the essay
names "blog analysis and monitoring" among the applications.  A
:class:`ContinuousQuery` is a standing SQL query plus a row predicate; the
:class:`ContinuousQueryManager` subscribes to the database's row-level
commit delta stream (:meth:`Database.add_delta_listener`) and evaluates
each standing query against *changed rows only* — O(delta) per commit, not
O(corpus).  Queries the delta path cannot handle (joins, aggregates,
GROUP BY, ORDER BY/LIMIT, unparseable SQL) fall back to a full re-run.

A row notifies when it *becomes present* in the query's result: matching
rows are refcounted, a notification fires on the 0 -> 1 transition, and
the count is released when the row leaves the result — so per-query memory
is bounded by the query's current result cardinality rather than growing
with all-time match history, and a row that disappears and later reappears
notifies again.  Row identity uses the engine's canonical value encoding
(``canonical_key_bytes``), so ``1`` and ``1.0`` are one row and NaN
compares equal to itself.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.storage.rdbms.engine import CommitDelta, Database, TableDelta
from repro.storage.rdbms.sharding import canonical_key_bytes
from repro.storage.rdbms.sql import (
    Aggregate,
    SelectStatement,
    SqlError,
    eval_predicate,
    execute_sql,
    parse_sql,
    _resolve,
)
from repro.telemetry import metrics

Callback = Callable[[str, dict[str, Any]], None]


@dataclass
class Notification:
    """One delivered match."""

    query_id: str
    row: dict[str, Any]


@dataclass
class ContinuousQuery:
    """A standing query.

    Attributes:
        query_id: unique identifier.
        sql: the standing SELECT.
        condition: optional extra row predicate (Python callable), applied
            to the projected result row.
        callback: invoked as ``callback(query_id, row)`` per new match;
            when None, matches accumulate in the manager's inbox.
    """

    query_id: str
    sql: str
    condition: Callable[[dict[str, Any]], bool] | None = None
    callback: Callback | None = None


def _row_key(row: dict[str, Any]) -> bytes:
    """Canonical identity for a result row.

    Built from ``canonical_key_bytes`` per value so numerically-equal
    values (``1`` vs ``1.0``) key identically and NaN keys stably —
    ``repr``-based keys delivered duplicate/missed notifications for both.
    """
    parts = []
    for column in sorted(row):
        parts.append(column.encode("utf-8"))
        parts.append(canonical_key_bytes(row[column]))
    return b"\x1f".join(parts)


@dataclass
class _QueryPlan:
    """What the manager precomputed about one standing query."""

    query: ContinuousQuery
    #: Parsed statement when the query is delta-eligible, else None.
    stmt: SelectStatement | None
    #: Tables the query reads (None = unknown -> re-run on every commit).
    tables: frozenset[str] | None


def _plan(query: ContinuousQuery) -> _QueryPlan:
    try:
        stmt = parse_sql(query.sql)
    except SqlError:
        return _QueryPlan(query, None, None)
    if not isinstance(stmt, SelectStatement):
        return _QueryPlan(query, None, None)
    tables = frozenset(
        t for t in (stmt.table, stmt.join_table) if t is not None)
    eligible = (
        stmt.join_table is None
        and not stmt.group_by
        and stmt.having is None
        and stmt.order_by is None
        and stmt.limit is None
        and not any(isinstance(item.expr, Aggregate) for item in stmt.items)
    )
    return _QueryPlan(query, stmt if eligible else None, tables)


def _project(stmt: SelectStatement, row: dict[str, Any]) -> dict[str, Any]:
    """Replicate the executor's projection for one delta row."""
    if stmt.star:
        return {k: v for k, v in row.items() if k != "__rid__"}
    return {item.key(): _resolve(row, item.expr) for item in stmt.items}


class ContinuousQueryManager:
    """Registry and delta-driven evaluator for continuous queries.

    Attaches itself to the database's commit delta stream on first
    registration; delta-eligible queries are then evaluated against
    changed rows only, at commit time.  :meth:`poke` remains as a manual
    full re-evaluation (and the only path when no commits flow).
    """

    def __init__(self, db: Database, seen_limit: int = 1_000_000) -> None:
        self.db = db
        self.inbox: list[Notification] = []
        #: Safety valve: a query whose refcounted seen-set outgrows this is
        #: reset wholesale (re-absorbed silently on its next evaluation).
        self.seen_limit = seen_limit
        self._plans: dict[str, _QueryPlan] = {}
        #: Per query: result-row key -> live multiplicity.
        self._seen: dict[str, dict[bytes, int]] = {}
        self._lock = threading.RLock()
        self._attached = False

    # ------------------------------------------------------------- registry

    def register(self, query: ContinuousQuery,
                 fire_on_existing: bool = False) -> int:
        """Add a standing query.

        Args:
            query: the continuous query.
            fire_on_existing: when False (default), rows already matching
                at registration time are absorbed silently; when True they
                are delivered immediately.

        Returns:
            Number of notifications delivered at registration.

        Raises:
            ValueError: duplicate query_id.
        """
        with self._lock:
            if query.query_id in self._plans:
                raise ValueError(f"query {query.query_id!r} already registered")
            self._plans[query.query_id] = _plan(query)
            self._seen[query.query_id] = {}
            if not self._attached:
                self.db.add_delta_listener(self._on_delta)
                self._attached = True
            return self._evaluate(query.query_id, notify=fire_on_existing)

    def unregister(self, query_id: str) -> None:
        with self._lock:
            self._plans.pop(query_id, None)
            self._seen.pop(query_id, None)

    def poke(self) -> int:
        """Fully re-evaluate every query; returns notifications delivered.

        With the delta listener attached this is normally a no-op (matches
        were already delivered at commit time); it remains the recovery
        path after an evaluation error evicted a query's state.
        """
        with self._lock:
            return sum(self._evaluate(query_id, notify=True)
                       for query_id in list(self._plans))

    def pending(self, query_id: str | None = None) -> list[Notification]:
        """Accumulated inbox notifications (optionally for one query)."""
        with self._lock:
            if query_id is None:
                return list(self.inbox)
            return [n for n in self.inbox if n.query_id == query_id]

    def clear_inbox(self) -> None:
        with self._lock:
            self.inbox.clear()

    def seen_size(self, query_id: str) -> int:
        """Current refcounted seen-set cardinality for one query."""
        with self._lock:
            return len(self._seen.get(query_id, ()))

    # ------------------------------------------------------------ delivery

    def _deliver(self, query: ContinuousQuery, row: dict[str, Any]) -> None:
        metrics.get_registry().inc("dge.rows_pushed")
        if query.callback is not None:
            query.callback(query.query_id, row)
        else:
            self.inbox.append(Notification(query.query_id, row))

    # ------------------------------------------------------- delta evaluation

    def _on_delta(self, delta: CommitDelta) -> None:
        """Commit-delta listener: must not raise (engine contract)."""
        with self._lock:
            for plan in list(self._plans.values()):
                try:
                    self._apply_delta(plan, delta)
                except Exception:
                    # Poison delta for this query: evict its state; the
                    # next evaluation (or poke) re-absorbs from a full run.
                    metrics.get_registry().inc("cq.eval_errors")
                    self._seen[plan.query.query_id] = {}

    def _apply_delta(self, plan: _QueryPlan, delta: CommitDelta) -> None:
        query_id = plan.query.query_id
        if delta.ddl:
            # Schema change on a read table: wholesale resync, silently —
            # migrated rows are not "new" matches.
            if plan.tables is None or (plan.tables & delta.ddl):
                self._seen[query_id] = {}
                self._evaluate(query_id, notify=False)
            return
        if plan.tables is not None and not (plan.tables & delta.tables.keys()):
            return  # commit touched none of this query's tables
        if plan.stmt is None:
            self._evaluate(query_id, notify=True)
            return
        table_delta = delta.tables.get(plan.stmt.table)
        if table_delta is not None:
            self._apply_table_delta(plan, table_delta)

    def _apply_table_delta(self, plan: _QueryPlan, td: TableDelta) -> None:
        """O(changed rows) evaluation for one delta-eligible query.

        Net row-presence change is computed over the whole commit first,
        so an insert+delete (or a no-op update) inside one transaction
        never produces a transient notification — deliveries match the
        per-commit "new matches vs previous result set" oracle.
        """
        stmt = plan.stmt
        assert stmt is not None
        query = plan.query
        registry = metrics.get_registry()
        net: dict[bytes, int] = {}
        reps: dict[bytes, dict[str, Any]] = {}

        def match(raw: dict[str, Any]) -> tuple[bytes, dict[str, Any]] | None:
            registry.inc("cq.delta_rows_checked")
            if not eval_predicate(stmt.where, raw):
                return None
            projected = _project(stmt, raw)
            if query.condition is not None and not query.condition(projected):
                return None
            return _row_key(projected), projected

        for raw in td.inserted:
            hit = match(raw)
            if hit is not None:
                net[hit[0]] = net.get(hit[0], 0) + 1
                reps.setdefault(hit[0], hit[1])
        for before, after in td.updated:
            hit = match(before)
            if hit is not None:
                net[hit[0]] = net.get(hit[0], 0) - 1
            hit = match(after)
            if hit is not None:
                net[hit[0]] = net.get(hit[0], 0) + 1
                reps.setdefault(hit[0], hit[1])
        for raw in td.deleted:
            hit = match(raw)
            if hit is not None:
                net[hit[0]] = net.get(hit[0], 0) - 1

        seen = self._seen[query.query_id]
        for key, change in net.items():
            if not change:
                continue
            old = seen.get(key, 0)
            new = max(0, old + change)
            if new:
                seen[key] = new
            else:
                seen.pop(key, None)
            if old == 0 and new > 0:
                self._deliver(query, reps[key])
        if len(seen) > self.seen_limit:
            self._seen[query.query_id] = {}

    # ------------------------------------------------------- full evaluation

    def _evaluate(self, query_id: str, notify: bool) -> int:
        """Full re-run fallback: rebuild the refcounted seen-set from the
        current result, delivering rows absent from the previous one."""
        plan = self._plans[query_id]
        query = plan.query
        try:
            rows = execute_sql(self.db, query.sql)
        except Exception:
            # Read table dropped (or query no longer valid): nothing can
            # match, so release the query's memory.
            self._seen[query_id] = {}
            return 0
        if query.condition is not None:
            rows = [r for r in rows if query.condition(r)]
        old = self._seen[query_id]
        fresh: dict[bytes, int] = {}
        delivered = 0
        for row in rows:
            key = _row_key(row)
            first = key not in fresh
            fresh[key] = fresh.get(key, 0) + 1
            if notify and first and key not in old:
                self._deliver(query, row)
                delivered += 1
        if len(fresh) > self.seen_limit:
            fresh = {}
        self._seen[query_id] = fresh
        return delivered
