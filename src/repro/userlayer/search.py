"""Keyword search over documents and structured facts.

:class:`KeywordSearchEngine` is both a user-layer service and — run over
raw documents only — the IR baseline the paper argues against (re-exported
by :mod:`repro.baselines`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.docmodel.document import Document
from repro.userlayer.index import InvertedIndex, SearchHit


@dataclass(frozen=True)
class DocumentResult:
    """A ranked document with a contextual snippet."""

    doc_id: str
    score: float
    snippet: str


class KeywordSearchEngine:
    """BM25 search over a corpus, plus optional fact search.

    Facts (dicts with entity/attribute/value) are indexed as
    pseudo-documents under IDs ``fact:<n>`` so a keyword query can surface
    structured results alongside pages — the user layer's combined
    exploitation mode.
    """

    def __init__(self) -> None:
        self._doc_index = InvertedIndex()
        self._fact_index = InvertedIndex()
        self._documents: dict[str, Document] = {}
        self._facts: dict[str, dict[str, Any]] = {}

    # ------------------------------------------------------------ indexing

    def index_corpus(self, docs: Iterable[Document]) -> int:
        """Index documents; returns how many were added."""
        count = 0
        for doc in docs:
            self._documents[doc.doc_id] = doc
            self._doc_index.add(doc.doc_id, doc.text)
            count += 1
        return count

    def index_facts(self, facts: Sequence[dict[str, Any]]) -> int:
        """Index structured facts as searchable pseudo-documents."""
        count = 0
        for fact in facts:
            fact_id = f"fact:{len(self._facts)}"
            rendered = " ".join(
                str(fact.get(k, "")) for k in ("entity", "attribute", "value")
            )
            self._facts[fact_id] = dict(fact)
            self._fact_index.add(fact_id, rendered)
            count += 1
        return count

    # ------------------------------------------------------------- queries

    def search(self, query: str, k: int = 10) -> list[DocumentResult]:
        """Top-k documents for a keyword query, with snippets."""
        hits = self._doc_index.search(query, k=k)
        return [
            DocumentResult(h.doc_id, h.score, self._snippet(h, query))
            for h in hits
        ]

    def search_facts(self, query: str, k: int = 10) -> list[dict[str, Any]]:
        """Top-k structured facts for a keyword query."""
        hits = self._fact_index.search(query, k=k)
        return [self._facts[h.doc_id] for h in hits]

    def document(self, doc_id: str) -> Document:
        return self._documents[doc_id]

    def has_document(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def corpus_size(self) -> int:
        return len(self._documents)

    def fact_count(self) -> int:
        return len(self._facts)

    # ------------------------------------------------------------ internals

    def _snippet(self, hit: SearchHit, query: str, width: int = 120) -> str:
        text = self._documents[hit.doc_id].text
        lowered = text.lower()
        best_pos = 0
        for term in query.lower().split():
            pos = lowered.find(term)
            if pos >= 0:
                best_pos = pos
                break
        start = max(0, best_pos - width // 4)
        end = min(len(text), start + width)
        prefix = "..." if start > 0 else ""
        suffix = "..." if end < len(text) else ""
        return prefix + text[start:end].replace("\n", " ") + suffix
