"""Built-in query forms over the EAV facts store.

These are the "canned" structured queries (Section 3.1: ordinary users
interact "by invoking canned SQL commands and queries ... via relatively
simple form interfaces") that every deployment of the system starts with.
The system registers them automatically; developers add domain-specific
forms on top.
"""

from __future__ import annotations

from repro.userlayer.forms import FormCatalog, FormSlot, QueryForm


def builtin_forms(table: str = "facts") -> list[QueryForm]:
    """The standard form library over an EAV facts table."""
    return [
        QueryForm(
            form_id="value_of",
            title="Look up the value of an attribute for an entity",
            sql_template=(
                f"SELECT value_num, value_text, confidence FROM {table} "
                "WHERE entity = {entity} AND attribute = {attribute}"
            ),
            slots=(FormSlot("entity", "Entity"),
                   FormSlot("attribute", "Attribute")),
            keywords=("value", "lookup", "what", "is"),
        ),
        QueryForm(
            form_id="average_of",
            title="Average of a numeric attribute for an entity",
            sql_template=(
                f"SELECT AVG(value_num) AS result FROM {table} "
                "WHERE entity = {entity} AND attribute = {attribute}"
            ),
            slots=(FormSlot("entity", "Entity"),
                   FormSlot("attribute", "Attribute")),
            keywords=("average", "mean", "temperature"),
        ),
        QueryForm(
            form_id="top_entities",
            title="Entities ranked by a numeric attribute",
            sql_template=(
                f"SELECT entity, MAX(value_num) AS value FROM {table} "
                "WHERE attribute = {attribute} GROUP BY entity "
                "ORDER BY value DESC LIMIT {limit}"
            ),
            slots=(FormSlot("attribute", "Attribute"),
                   FormSlot("limit", "How many", slot_type="number",
                            required=False, default=10)),
            keywords=("top", "highest", "largest", "ranking", "best"),
        ),
        QueryForm(
            form_id="count_entities",
            title="How many entities have a given attribute",
            sql_template=(
                f"SELECT COUNT(*) AS n FROM {table} "
                "WHERE attribute = {attribute}"
            ),
            slots=(FormSlot("attribute", "Attribute"),),
            keywords=("count", "how", "many", "number"),
        ),
        QueryForm(
            form_id="low_confidence",
            title="Facts the system is least sure about (curation queue)",
            sql_template=(
                f"SELECT entity, attribute, value_num, value_text, "
                f"confidence FROM {table} ORDER BY confidence ASC "
                "LIMIT {limit}"
            ),
            slots=(FormSlot("limit", "How many", slot_type="number",
                            required=False, default=20),),
            keywords=("uncertain", "review", "check", "confidence",
                      "curate"),
        ),
    ]


def register_builtin_forms(catalog: FormCatalog,
                           table: str = "facts") -> int:
    """Register every built-in form; returns how many were added."""
    count = 0
    for form in builtin_forms(table):
        catalog.register(form)
        count += 1
    return count
