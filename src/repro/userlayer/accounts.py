"""User accounts, authentication, roles, and reputation hooks.

"Finally, this layer also contains modules that authenticates users,
manage incentive schemes for soliciting user feedback, and manage user
reputation."

Passwords are salted-and-hashed (PBKDF2); roles separate the DGE model's
*ordinary* users from *sophisticated* developers and admins.  Reputation
delegates to :class:`~repro.hi.reputation.ReputationManager` so one record
backs both the HI pipeline and the account UI.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field

from repro.hi.reputation import ReputationManager

_ROLES = ("ordinary", "sophisticated", "admin")
_PBKDF2_ITERATIONS = 50_000


class AuthenticationError(Exception):
    """Raised on bad credentials or unauthorized operations."""


@dataclass
class UserAccount:
    """One registered user."""

    username: str
    role: str
    salt: bytes
    password_hash: bytes

    def check_password(self, password: str) -> bool:
        candidate = hashlib.pbkdf2_hmac(
            "sha256", password.encode("utf-8"), self.salt, _PBKDF2_ITERATIONS
        )
        return hmac.compare_digest(candidate, self.password_hash)


@dataclass
class UserManager:
    """Registration, login, roles, and reputation for all users."""

    reputation: ReputationManager = field(default_factory=ReputationManager)
    _accounts: dict[str, UserAccount] = field(default_factory=dict)
    _sessions: dict[str, str] = field(default_factory=dict)  # token -> user

    def register(self, username: str, password: str,
                 role: str = "ordinary") -> UserAccount:
        """Create an account.

        Raises:
            ValueError: duplicate username or unknown role.
        """
        if username in self._accounts:
            raise ValueError(f"username {username!r} is taken")
        if role not in _ROLES:
            raise ValueError(f"unknown role {role!r}; expected one of {_ROLES}")
        salt = os.urandom(16)
        password_hash = hashlib.pbkdf2_hmac(
            "sha256", password.encode("utf-8"), salt, _PBKDF2_ITERATIONS
        )
        account = UserAccount(username, role, salt, password_hash)
        self._accounts[username] = account
        return account

    def login(self, username: str, password: str) -> str:
        """Authenticate; returns a session token.

        Raises:
            AuthenticationError: unknown user or wrong password.
        """
        account = self._accounts.get(username)
        if account is None or not account.check_password(password):
            raise AuthenticationError("invalid username or password")
        token = os.urandom(16).hex()
        self._sessions[token] = username
        return token

    def logout(self, token: str) -> None:
        self._sessions.pop(token, None)

    def whoami(self, token: str) -> UserAccount:
        """Account for a session token.

        Raises:
            AuthenticationError: invalid token.
        """
        username = self._sessions.get(token)
        if username is None:
            raise AuthenticationError("invalid session token")
        return self._accounts[username]

    def require_role(self, token: str, *roles: str) -> UserAccount:
        """Gate an operation on role membership.

        Raises:
            AuthenticationError: invalid token or insufficient role.
        """
        account = self.whoami(token)
        if account.role not in roles:
            raise AuthenticationError(
                f"{account.username!r} ({account.role}) lacks required role"
            )
        return account

    def user_reputation(self, username: str) -> float:
        return self.reputation.reputation(username)

    def user_points(self, username: str) -> int:
        return self.reputation.points(username)

    def exists(self, username: str) -> bool:
        return username in self._accounts
