"""Wikipedia-style city pages with monthly temperatures.

Each generated page describes one city and encodes its facts in one of
four *styles* (mimicking real Wikipedia heterogeneity):

* ``infobox`` — ``{{Infobox city | jan_temp = 26 | ... }}`` with short
  attribute names;
* ``infobox_long`` — same data, but verbose attribute names
  (``january_temperature``), so schema matching must unify the two;
* ``table`` — a climate wiki table plus free-text population;
* ``prose`` — facts only in sentences ("The September temperature in
  Madison is 70 degrees."), the hardest extraction target.

Optionally, a fraction of pages get one *corrupted* temperature (e.g. 135)
— the semantic-debugger experiment's injected errors — and a fraction of
free-text pages get paraphrase noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.docmodel.corpus import InMemoryCorpus
from repro.docmodel.document import Document, DocumentMetadata
from repro.extraction.normalize import MONTHS

_CITY_PREFIXES = [
    "Mad", "Spring", "Green", "Fair", "River", "Lake", "Clear", "Oak",
    "Ash", "Elm", "Stone", "Mill", "North", "South", "East", "West",
    "Bridge", "Ham", "Clif", "Brook",
]
_CITY_SUFFIXES = [
    "ison", "field", "ville", "town", "port", "burg", "haven", "wood",
    "dale", "ford", "mont", "shire", "land", "crest", "view",
]
_STATES = ["Wisconsin", "Illinois", "Ohio", "Texas", "Oregon", "Vermont",
           "Georgia", "Nevada", "Kansas", "Maine"]

STYLES = ("infobox", "infobox_long", "table", "prose")

# Seasonal shape: a cold-winter/warm-summer cycle, scaled per climate.
_SEASONAL_SHAPE = [0.0, 0.05, 0.2, 0.4, 0.6, 0.8, 1.0, 0.95, 0.75, 0.5, 0.25, 0.08]


@dataclass(frozen=True)
class CityFacts:
    """Ground truth for one city page."""

    name: str
    state: str
    population: int
    monthly_temps: tuple[float, ...]  # °F, January..December
    style: str
    corrupted_month: int | None = None  # index of an injected bad temp
    corrupted_value: float | None = None

    def temp(self, month: str) -> float:
        """True temperature for a month name (January..December)."""
        return self.monthly_temps[MONTHS.index(month.lower())]


@dataclass(frozen=True)
class CityCorpusConfig:
    """Generator knobs."""

    num_cities: int = 100
    seed: int = 7
    corruption_rate: float = 0.0  # fraction of pages with one bad temp
    noise_paragraphs: int = 2  # irrelevant filler paragraphs per page
    styles: tuple[str, ...] = STYLES


_FILLER_SENTENCES = [
    "The city hosts an annual harvest festival each autumn.",
    "Local industry includes light manufacturing and dairy processing.",
    "The downtown district features several historic brick buildings.",
    "A regional airport lies twelve miles to the northeast.",
    "The public library system operates five branches.",
    "Several hiking trails wind through the surrounding hills.",
    "The city council meets on the first Tuesday of every month.",
    "A minor-league baseball team plays at the municipal stadium.",
]


def _city_name(rng: random.Random, taken: set[str]) -> str:
    # 20 prefixes x 15 suffixes = 300 distinct base names.  Below that
    # capacity the draw loop behaves exactly as it always has (same RNG
    # stream, so seeded corpora are unchanged); past it, base names are
    # disambiguated with an ordinal so arbitrarily large corpora generate
    # (the E15 parallel-backend benchmark uses thousands of pages) instead
    # of looping forever on an exhausted name space.
    capacity = len(_CITY_PREFIXES) * len(_CITY_SUFFIXES)
    if len(taken) < capacity:
        while True:
            name = rng.choice(_CITY_PREFIXES) + rng.choice(_CITY_SUFFIXES)
            if name not in taken:
                taken.add(name)
                return name
    base = rng.choice(_CITY_PREFIXES) + rng.choice(_CITY_SUFFIXES)
    ordinal = 2
    while f"{base} {ordinal}" in taken:
        ordinal += 1
    name = f"{base} {ordinal}"
    taken.add(name)
    return name


def _monthly_temps(rng: random.Random) -> tuple[float, ...]:
    base = rng.uniform(10.0, 45.0)  # January temperature
    amplitude = rng.uniform(25.0, 50.0)
    return tuple(
        round(base + amplitude * shape + rng.uniform(-2.0, 2.0), 1)
        for shape in _SEASONAL_SHAPE
    )


def _short_attr(month: str) -> str:
    return f"{month[:3]}_temp"


def _long_attr(month: str) -> str:
    return f"{month}_temperature"


def _render_infobox(facts: CityFacts, long_names: bool) -> str:
    attr = _long_attr if long_names else _short_attr
    pop_key = "population_total" if long_names else "population"
    lines = [f"{{{{Infobox city", f" | name = {facts.name}",
             f" | state = {facts.state}", f" | {pop_key} = {facts.population}"]
    for i, month in enumerate(MONTHS):
        value = _displayed_temp(facts, i)
        lines.append(f" | {attr(month)} = {value:g}")
    lines.append("}}")
    return "\n".join(lines)


def _displayed_temp(facts: CityFacts, month_index: int) -> float:
    if facts.corrupted_month == month_index and facts.corrupted_value is not None:
        return facts.corrupted_value
    return facts.monthly_temps[month_index]


def _render_table(facts: CityFacts) -> str:
    header = "! month !! temperature"
    rows = []
    for i, month in enumerate(MONTHS):
        rows.append(f"|-\n| {month.capitalize()} || {_displayed_temp(facts, i):g}")
    return "{|\n" + header + "\n" + "\n".join(rows) + "\n|}"


def _render_prose_temps(facts: CityFacts, rng: random.Random) -> str:
    sentences = []
    for i, month in enumerate(MONTHS):
        value = _displayed_temp(facts, i)
        template = rng.choice([
            "The {m} temperature in {c} is {v:g} degrees.",
            "In {c}, the average {m} temperature is {v:g} degrees.",
            "{c} records a typical {m} temperature of {v:g} degrees.",
        ])
        sentences.append(
            template.format(m=month.capitalize(), c=facts.name, v=value)
        )
    return " ".join(sentences)


def _render_page(facts: CityFacts, rng: random.Random,
                 noise_paragraphs: int) -> str:
    intro = (
        f"'''{facts.name}''' is a city in the state of {facts.state}. "
        f"As of the last census, the population was {facts.population:,}."
    )
    filler = "\n\n".join(
        " ".join(rng.sample(_FILLER_SENTENCES, k=3))
        for _ in range(noise_paragraphs)
    )
    climate_heading = "== Climate =="
    if facts.style == "infobox":
        body = _render_infobox(facts, long_names=False)
        climate = _render_prose_temps(facts, rng)
    elif facts.style == "infobox_long":
        body = _render_infobox(facts, long_names=True)
        climate = _render_prose_temps(facts, rng)
    elif facts.style == "table":
        body = ""
        climate = _render_table(facts)
    else:  # prose
        body = ""
        climate = _render_prose_temps(facts, rng)
    parts = [p for p in (body, intro, filler, climate_heading, climate) if p]
    return "\n\n".join(parts)


def generate_city_corpus(
    config: CityCorpusConfig = CityCorpusConfig(),
) -> tuple[InMemoryCorpus, list[CityFacts]]:
    """Generate the corpus and its ground truth.

    Returns:
        (corpus of wiki pages, per-city ground truth in corpus order).
    """
    rng = random.Random(config.seed)
    taken: set[str] = set()
    corpus = InMemoryCorpus()
    truths: list[CityFacts] = []
    for i in range(config.num_cities):
        name = _city_name(rng, taken)
        temps = _monthly_temps(rng)
        style = config.styles[i % len(config.styles)]
        corrupted_month: int | None = None
        corrupted_value: float | None = None
        if rng.random() < config.corruption_rate:
            corrupted_month = rng.randrange(12)
            corrupted_value = rng.choice([135.0, 180.0, -120.0, 999.0])
        facts = CityFacts(
            name=name,
            state=rng.choice(_STATES),
            population=rng.randrange(5_000, 3_000_000),
            monthly_temps=temps,
            style=style,
            corrupted_month=corrupted_month,
            corrupted_value=corrupted_value,
        )
        text = _render_page(facts, rng, config.noise_paragraphs)
        corpus.add(
            Document(
                doc_id=f"city_{name.lower()}",
                text=text,
                metadata=DocumentMetadata(source="datagen:cities"),
            )
        )
        truths.append(facts)
    return corpus, truths
