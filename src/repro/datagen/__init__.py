"""Synthetic corpora with known ground truth (the substituted data).

The paper's scenarios run over Wikipedia and Web crawls; we generate
faithful synthetic stand-ins (see DESIGN.md §4) whose ground truth is
known, so every experiment can score accuracy exactly:

* :mod:`repro.datagen.cities` — Wikipedia-style city pages: infoboxes with
  monthly temperatures and population, wiki tables, and free-text mentions,
  with *deliberately heterogeneous* attribute naming across pages (so
  schema matching has real work to do) and configurable noise;
* :mod:`repro.datagen.people` — researcher/person pages with name variants
  ("David Smith", "D. Smith", "Smith, David") and known coreference
  clusters, for the entity-resolution experiments;
* :mod:`repro.datagen.emails` — a personal e-mail corpus for the PIM
  example;
* :mod:`repro.datagen.churn` — daily-snapshot mutation for the diff-store
  experiment.

All generators are deterministic given their seed.
"""

from repro.datagen.cities import CityFacts, CityCorpusConfig, generate_city_corpus
from repro.datagen.people import PersonFacts, PeopleCorpusConfig, generate_people_corpus
from repro.datagen.emails import EmailFacts, generate_email_corpus
from repro.datagen.churn import churn_corpus
from repro.datagen.sensors import (
    SensorCorpusConfig,
    SensorEvent,
    generate_sensor_corpus,
)

__all__ = [
    "SensorCorpusConfig",
    "SensorEvent",
    "generate_sensor_corpus",
    "CityFacts",
    "CityCorpusConfig",
    "generate_city_corpus",
    "PersonFacts",
    "PeopleCorpusConfig",
    "generate_people_corpus",
    "EmailFacts",
    "generate_email_corpus",
    "churn_corpus",
]
