"""A personal e-mail corpus for the PIM example.

Each message has standard headers and a body that may mention a meeting
(date + time + room) or an action item — the structured facts a personal
information manager wants to extract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.docmodel.corpus import InMemoryCorpus
from repro.docmodel.document import Document, DocumentMetadata

_PEOPLE = [
    "alice@example.org", "bob@example.org", "carol@example.org",
    "dave@example.org", "erin@example.org",
]
_ROOMS = ["Room 2310", "Room 4021", "Conference Hall B", "Room 1158"]
_TOPICS = [
    "project sync", "budget review", "paper deadline", "demo planning",
    "hiring committee", "reading group",
]
_MONTH_NAMES = [
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
]


@dataclass(frozen=True)
class EmailFacts:
    """Ground truth for one message."""

    doc_id: str
    sender: str
    recipient: str
    subject: str
    meeting_date: str | None  # ISO date
    meeting_time: str | None  # "HH:MM"
    meeting_room: str | None


def generate_email_corpus(
    num_messages: int = 60, seed: int = 23,
) -> tuple[InMemoryCorpus, list[EmailFacts]]:
    """Generate messages; about half contain a concrete meeting."""
    rng = random.Random(seed)
    corpus = InMemoryCorpus()
    truths: list[EmailFacts] = []
    for i in range(num_messages):
        sender = rng.choice(_PEOPLE)
        recipient = rng.choice([p for p in _PEOPLE if p != sender])
        topic = rng.choice(_TOPICS)
        subject = f"Re: {topic}" if rng.random() < 0.4 else topic
        has_meeting = rng.random() < 0.5
        meeting_date = meeting_time = meeting_room = None
        if has_meeting:
            month = rng.randrange(1, 13)
            day = rng.randrange(1, 28)
            hour = rng.randrange(8, 18)
            minute = rng.choice([0, 15, 30, 45])
            meeting_date = f"2008-{month:02d}-{day:02d}"
            meeting_time = f"{hour:02d}:{minute:02d}"
            meeting_room = rng.choice(_ROOMS)
            body = (
                f"Hi,\n\nLet's meet about the {topic} on "
                f"{_MONTH_NAMES[month - 1]} {day}, 2008 at {meeting_time} "
                f"in {meeting_room}. Please confirm.\n\nThanks,\n"
                f"{sender.split('@')[0].capitalize()}"
            )
        else:
            body = (
                f"Hi,\n\nQuick note about the {topic}: I will send the "
                f"updated notes later this week. No meeting needed.\n\n"
                f"Best,\n{sender.split('@')[0].capitalize()}"
            )
        doc_id = f"email_{i:04d}"
        text = (
            f"From: {sender}\nTo: {recipient}\nSubject: {subject}\n\n{body}"
        )
        corpus.add(
            Document(doc_id=doc_id, text=text,
                     metadata=DocumentMetadata(source="datagen:emails"))
        )
        truths.append(
            EmailFacts(doc_id, sender, recipient, subject,
                       meeting_date, meeting_time, meeting_room)
        )
    return corpus, truths
