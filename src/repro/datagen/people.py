"""Researcher/person pages with name variants and known coreference.

Each real person appears in several documents under different surface
forms — "David Smith", "D. Smith", "Smith, David", sometimes with a middle
initial — together with attributes (affiliation, field).  The ground truth
records which mentions co-refer, so entity-resolution accuracy (and how
much HI feedback improves it) is exactly measurable (experiments E2/E3).
Distinct people with confusable names (same last name, same first initial)
are generated on purpose: they are the hard negatives that make blocking
and feedback matter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.docmodel.corpus import InMemoryCorpus
from repro.docmodel.document import Document, DocumentMetadata

_FIRST_NAMES = [
    "David", "Daniel", "Sarah", "Susan", "Michael", "Maria", "James",
    "Jane", "Robert", "Rachel", "Thomas", "Tina", "William", "Wendy",
    "Peter", "Paula", "George", "Grace", "Henry", "Helen",
]
_LAST_NAMES = [
    "Smith", "Johnson", "Lee", "Brown", "Garcia", "Miller", "Davis",
    "Wilson", "Clark", "Lewis", "Walker", "Hall", "Young", "King",
]
_AFFILIATIONS = [
    "University of Wisconsin", "Stanford University", "MIT",
    "Carnegie Mellon University", "University of Washington",
    "Cornell University", "Georgia Tech",
]
_FIELDS = [
    "databases", "machine learning", "information retrieval",
    "operating systems", "computer networks", "compilers",
]


@dataclass(frozen=True)
class PersonFacts:
    """Ground truth for one real person."""

    person_id: int
    first: str
    middle: str
    last: str
    affiliation: str
    field: str

    @property
    def full_name(self) -> str:
        return f"{self.first} {self.last}"

    def variants(self) -> list[str]:
        """The surface forms this person may appear under."""
        forms = [
            f"{self.first} {self.last}",
            f"{self.first[0]}. {self.last}",
            f"{self.last}, {self.first}",
        ]
        if self.middle:
            forms.append(f"{self.first} {self.middle}. {self.last}")
        return forms


@dataclass(frozen=True)
class PeopleCorpusConfig:
    """Generator knobs.

    ``confusable_fraction`` controls how many *distinct* people share a
    last name and first initial with someone else (hard negatives).
    """

    num_people: int = 30
    mentions_per_person: int = 4
    seed: int = 11
    confusable_fraction: float = 0.3


_SENTENCE_TEMPLATES = [
    "{name} is a researcher in {field} at {affiliation}.",
    "{name} of {affiliation} published several papers on {field}.",
    "The {field} group at {affiliation} is led by {name}.",
    "{name} gave the keynote on {field} this year.",
]


def generate_people_corpus(
    config: PeopleCorpusConfig = PeopleCorpusConfig(),
) -> tuple[InMemoryCorpus, list[PersonFacts], dict[str, int]]:
    """Generate people pages.

    Returns:
        (corpus, ground-truth people, mention map).  The mention map sends
        ``doc_id`` → ``person_id`` of the person that document mentions,
        which is the coreference ground truth: two documents' mentions
        co-refer iff they map to the same person_id.
    """
    rng = random.Random(config.seed)
    people: list[PersonFacts] = []
    used: set[tuple[str, str, str]] = set()
    for pid in range(config.num_people):
        if people and rng.random() < config.confusable_fraction:
            # Confusable with an existing person: same last name, a first
            # name sharing the initial.
            other = rng.choice(people)
            same_initial = [
                f for f in _FIRST_NAMES
                if f[0] == other.first[0] and f != other.first
            ]
            first = rng.choice(same_initial) if same_initial else rng.choice(_FIRST_NAMES)
            last = other.last
        else:
            first = rng.choice(_FIRST_NAMES)
            last = rng.choice(_LAST_NAMES)
        middle = rng.choice(["", "", "A", "B", "J", "M"])
        key = (first, middle, last)
        if key in used:
            middle = middle + "X" if middle else "Q"
            key = (first, middle, last)
        used.add(key)
        people.append(
            PersonFacts(
                person_id=pid,
                first=first,
                middle=middle,
                last=last,
                affiliation=rng.choice(_AFFILIATIONS),
                field=rng.choice(_FIELDS),
            )
        )

    corpus = InMemoryCorpus()
    mention_map: dict[str, int] = {}
    doc_counter = 0
    for person in people:
        variants = person.variants()
        for m in range(config.mentions_per_person):
            name = variants[m % len(variants)]
            template = rng.choice(_SENTENCE_TEMPLATES)
            text = template.format(
                name=name, field=person.field, affiliation=person.affiliation
            )
            doc_id = f"person_doc_{doc_counter}"
            doc_counter += 1
            corpus.add(
                Document(
                    doc_id=doc_id,
                    text=text,
                    metadata=DocumentMetadata(source="datagen:people"),
                )
            )
            mention_map[doc_id] = person.person_id
    return corpus, people, mention_map
