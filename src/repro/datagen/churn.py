"""Daily-snapshot churn: mutate a corpus slightly, as a re-crawl would.

Used by experiment E5: commit day 0, churn, commit day 1, ... and compare
diff-store vs full-copy space.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.docmodel.corpus import InMemoryCorpus
from repro.docmodel.document import Document


def churn_corpus(corpus: Iterable[Document], change_fraction: float = 0.1,
                 seed: int = 0) -> InMemoryCorpus:
    """A new corpus where ~``change_fraction`` of each document's lines
    changed (edited, inserted, or deleted); other documents are identical.

    Args:
        corpus: input documents.
        change_fraction: per-document fraction of lines touched; also the
            probability that a given document changes at all is
            ``min(1, 3 * change_fraction)`` (most pages are untouched on a
            real re-crawl).
        seed: RNG seed.
    """
    if not 0.0 <= change_fraction <= 1.0:
        raise ValueError("change_fraction must be in [0, 1]")
    rng = random.Random(seed)
    out = InMemoryCorpus()
    for doc in corpus:
        if rng.random() >= min(1.0, 3.0 * change_fraction):
            out.add(doc)
            continue
        lines = doc.text.splitlines()
        if not lines:
            out.add(doc)
            continue
        n_changes = max(1, int(len(lines) * change_fraction))
        for _ in range(n_changes):
            kind = rng.choice(("edit", "insert", "delete"))
            pos = rng.randrange(len(lines))
            if kind == "edit":
                lines[pos] = lines[pos] + f" (updated {rng.randrange(1000)})"
            elif kind == "insert":
                lines.insert(pos, f"A new detail was added here ({rng.randrange(1000)}).")
            elif kind == "delete" and len(lines) > 1:
                lines.pop(pos)
        out.add(Document(doc_id=doc.doc_id, text="\n".join(lines),
                         metadata=doc.metadata))
    return out
