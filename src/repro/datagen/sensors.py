"""Sensor-log corpus for the Section 6 generalization.

The paper (Section 6): *"Another example is sensor data from which we want
to infer real-world events (e.g., someone has entered the room)."*

A sensor log is rendered as a text document — one reading per line,
``<minute> <sensor_id> <value>`` — which is exactly how such logs arrive
in practice and lets the standard document/span machinery carry
provenance.  Ground truth records every injected event (a sustained
excursion of the sensor's value) so detection quality is measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.docmodel.corpus import InMemoryCorpus
from repro.docmodel.document import Document, DocumentMetadata

EVENT_TYPES = {
    "door": "entry",          # door sensor spikes -> someone entered
    "temp": "hvac_failure",   # temperature climbs -> HVAC failure
    "power": "surge",         # power draw jumps -> surge
}


@dataclass(frozen=True)
class SensorEvent:
    """Ground truth for one injected event."""

    sensor_id: str
    start_minute: int
    duration: int
    event_type: str
    magnitude: float


@dataclass(frozen=True)
class SensorCorpusConfig:
    """Generator knobs.

    Attributes:
        num_sensors: sensors per kind (door/temp/power).
        minutes: readings per sensor.
        events_per_sensor: injected events per sensor (average).
        noise: standard deviation of baseline noise, as a fraction of the
            event magnitude — higher noise makes detection harder (the
            E14 sweep variable).
        seed: RNG seed.
    """

    num_sensors: int = 3
    minutes: int = 300
    events_per_sensor: int = 3
    noise: float = 0.1
    seed: int = 97


_BASELINES = {"door": 0.0, "temp": 68.0, "power": 120.0}
_MAGNITUDES = {"door": 1.0, "temp": 14.0, "power": 80.0}


def generate_sensor_corpus(
    config: SensorCorpusConfig = SensorCorpusConfig(),
) -> tuple[InMemoryCorpus, list[SensorEvent]]:
    """Generate one log document per sensor plus the event ground truth."""
    rng = random.Random(config.seed)
    corpus = InMemoryCorpus()
    truths: list[SensorEvent] = []
    for kind, baseline in _BASELINES.items():
        magnitude = _MAGNITUDES[kind]
        for index in range(config.num_sensors):
            sensor_id = f"{kind}{index}"
            values = [
                baseline + rng.gauss(0.0, config.noise * magnitude)
                for _ in range(config.minutes)
            ]
            events: list[SensorEvent] = []
            for _ in range(config.events_per_sensor):
                duration = rng.randrange(5, 15)
                start = rng.randrange(0, config.minutes - duration)
                # keep events separated so truth windows do not overlap
                if any(abs(start - e.start_minute) < 30 for e in events):
                    continue
                event = SensorEvent(
                    sensor_id=sensor_id,
                    start_minute=start,
                    duration=duration,
                    event_type=EVENT_TYPES[kind],
                    magnitude=magnitude,
                )
                events.append(event)
                for minute in range(start, start + duration):
                    values[minute] += magnitude
            truths.extend(events)
            lines = [
                f"{minute} {sensor_id} {value:.3f}"
                for minute, value in enumerate(values)
            ]
            corpus.add(
                Document(
                    doc_id=f"log_{sensor_id}",
                    text="\n".join(lines),
                    metadata=DocumentMetadata(source="datagen:sensors",
                                              mime_type="text/sensor-log"),
                )
            )
    return corpus, truths
