"""Extraction data model and the extractor interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Any, Iterable

from repro.docmodel.document import Document, Span


@dataclass(frozen=True)
class Extraction:
    """One extracted attribute–value pair.

    Attributes:
        entity: the subject the attribute belongs to (e.g. a city name);
            may be empty when the extractor cannot tell yet — integration
            fills it in.
        attribute: attribute name (e.g. ``temperature_sep``).
        value: the normalized value (str, int, float, bool).
        span: provenance — where in which document this was read.
        confidence: extractor's belief in correctness, in [0, 1].
        extractor: name of the producing extractor (provenance).
    """

    entity: str
    attribute: str
    value: Any
    span: Span
    confidence: float = 1.0
    extractor: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence {self.confidence} outside [0, 1]")
        if not self.attribute:
            raise ValueError("attribute must be non-empty")

    def with_entity(self, entity: str) -> "Extraction":
        return replace(self, entity=entity)

    def with_confidence(self, confidence: float) -> "Extraction":
        return replace(self, confidence=confidence)

    def key(self) -> tuple[str, str, Any]:
        """Identity for dedup: (entity, attribute, value)."""
        return (self.entity, self.attribute, self.value)

    def to_payload(self) -> dict[str, Any]:
        """JSON-able form for the intermediate file store."""
        return {
            "entity": self.entity,
            "attribute": self.attribute,
            "value": self.value,
            "doc_id": self.span.doc_id,
            "start": self.span.start,
            "end": self.span.end,
            "text": self.span.text,
            "confidence": self.confidence,
            "extractor": self.extractor,
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "Extraction":
        return Extraction(
            entity=payload["entity"],
            attribute=payload["attribute"],
            value=payload["value"],
            span=Span(payload["doc_id"], payload["start"], payload["end"],
                      payload["text"]),
            confidence=payload["confidence"],
            extractor=payload.get("extractor", ""),
        )


class Extractor(ABC):
    """Base class for all IE operators.

    Subclasses implement :meth:`extract`; :attr:`name` identifies the
    operator in provenance records; :attr:`cost_per_char` is the optimizer's
    cost model input (simulated work units per character scanned);
    :attr:`version` feeds the extraction cache's fingerprint
    (:func:`repro.cache.extractor_fingerprint`) — bump it whenever the
    extraction *logic* changes in a way the configuration fields do not
    capture, to force cached results to be regenerated.
    """

    name: str = "extractor"
    cost_per_char: float = 1.0
    version: int = 0

    @abstractmethod
    def extract(self, doc: Document) -> list[Extraction]:
        """Extract attribute–value pairs from one document."""

    def prefilter_terms(self) -> list[list[str]] | None:
        """Keyword groups enabling a cheap document pre-filter.

        When not None: a document can only yield extractions if, for some
        group, it contains *all* the group's keywords.  The optimizer uses
        this to skip expensive extraction on irrelevant documents without
        changing results.  Default: unknown (no safe pre-filter).
        """
        return None

    def extract_corpus(self, docs: Iterable[Document]) -> list[Extraction]:
        """Convenience: run over many documents."""
        out: list[Extraction] = []
        for doc in docs:
            out.extend(self.extract(doc))
        return out


@dataclass
class CompositeExtractor(Extractor):
    """Runs several extractors, concatenating and deduplicating output.

    When two extractors produce the same (entity, attribute, value) from
    overlapping spans, the higher-confidence extraction wins.
    """

    extractors: list[Extractor] = field(default_factory=list)
    name: str = "composite"

    def extract(self, doc: Document) -> list[Extraction]:
        best: dict[tuple, Extraction] = {}
        for extractor in self.extractors:
            for extraction in extractor.extract(doc):
                key = extraction.key()
                current = best.get(key)
                if current is None or extraction.confidence > current.confidence:
                    best[key] = extraction
        return sorted(best.values(), key=lambda e: (e.span.start, e.attribute))

    @property
    def cost_per_char(self) -> float:  # type: ignore[override]
        return sum(e.cost_per_char for e in self.extractors)
