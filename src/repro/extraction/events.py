"""Event extraction from sensor logs (the Section 6 generalization).

The paper argues the structured approach transfers beyond text: "sensor
data from which we want to infer real-world events".  The extractor below
is exactly an IE operator in the Figure 1 sense — it consumes a document
(a sensor log, one ``<minute> <sensor_id> <value>`` line each), emits
attribute–value pairs with spans and confidences, and therefore composes
with the rest of the pipeline (fusion, HI, the semantic debugger,
provenance) unchanged.

Detection is a robust sliding-window excursion detector: a reading is
*excursive* when it deviates from the running median by more than
``z_threshold`` robust standard deviations (MAD-based); a run of at least
``min_duration`` excursive readings becomes one event, whose confidence
grows with the excursion's z-score.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.docmodel.document import Document, Span
from repro.extraction.base import Extraction, Extractor


@dataclass(frozen=True)
class Reading:
    """One parsed log line."""

    minute: int
    sensor_id: str
    value: float
    line_start: int
    line_end: int


def parse_sensor_log(doc: Document) -> list[Reading]:
    """Parse ``<minute> <sensor_id> <value>`` lines; bad lines are skipped."""
    readings: list[Reading] = []
    offset = 0
    for line in doc.text.splitlines(keepends=True):
        stripped = line.rstrip("\n")
        parts = stripped.split()
        if len(parts) == 3:
            try:
                readings.append(
                    Reading(
                        minute=int(parts[0]),
                        sensor_id=parts[1],
                        value=float(parts[2]),
                        line_start=offset,
                        line_end=offset + len(stripped),
                    )
                )
            except ValueError:
                pass
        offset += len(line)
    return readings


@dataclass
class SensorEventExtractor(Extractor):
    """Detect sustained excursions in a sensor log as events.

    Args:
        event_name: attribute emitted (value is the event's peak z-score
            bucket label via ``classify`` or simply ``True``).
        z_threshold: robust z-score above which a reading is excursive.
        min_duration: minimum consecutive excursive readings per event.
        baseline_window: readings used for the running baseline estimate.
        classify: optional (sensor_id, magnitude) → event-type label; the
            default labels every event ``"event"``.
    """

    event_name: str = "event"
    z_threshold: float = 4.0
    min_duration: int = 3
    baseline_window: int = 60
    classify: "callable | None" = None
    name: str = "sensor-events"
    cost_per_char: float = 0.8

    def extract(self, doc: Document) -> list[Extraction]:
        readings = parse_sensor_log(doc)
        if len(readings) < self.baseline_window:
            return []
        values = [r.value for r in readings]
        median = statistics.median(values)
        mad = statistics.median(abs(v - median) for v in values)
        robust_sigma = max(1.4826 * mad, 1e-6)

        out: list[Extraction] = []
        run_start: int | None = None
        peak_z = 0.0
        for i, reading in enumerate(readings + [None]):  # sentinel flush
            z = (
                abs(reading.value - median) / robust_sigma
                if reading is not None else 0.0
            )
            if reading is not None and z >= self.z_threshold:
                if run_start is None:
                    run_start = i
                    peak_z = z
                else:
                    peak_z = max(peak_z, z)
                continue
            if run_start is not None:
                run_length = i - run_start
                if run_length >= self.min_duration:
                    out.append(self._emit(doc, readings, run_start, i - 1,
                                          peak_z))
                run_start = None
                peak_z = 0.0
        return out

    def _emit(self, doc: Document, readings: list[Reading],
              first: int, last: int, peak_z: float) -> Extraction:
        start_reading, end_reading = readings[first], readings[last]
        span = Span(
            doc.doc_id, start_reading.line_start, end_reading.line_end,
            doc.text[start_reading.line_start:end_reading.line_end],
        )
        magnitude = max(
            abs(r.value) for r in readings[first:last + 1]
        )
        if self.classify is not None:
            label = self.classify(start_reading.sensor_id, magnitude)
        else:
            label = "event"
        # confidence saturates as the excursion dwarfs the threshold
        confidence = min(0.99, 1.0 - 1.0 / (1.0 + peak_z / self.z_threshold))
        return Extraction(
            entity=start_reading.sensor_id,
            attribute=self.event_name,
            value=f"{label}@{start_reading.minute}",
            span=span,
            confidence=max(confidence, 0.5),
            extractor=self.name,
        )
