"""Dictionary (gazetteer) extraction.

Matches known multi-token phrases — city names, person names, organization
names — against documents using a token-level trie, so matching is linear in
document length regardless of dictionary size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.docmodel.document import Document, Span, Token
from repro.docmodel.tokenize import Tokenizer
from repro.extraction.base import Extraction, Extractor


class _TrieNode:
    __slots__ = ("children", "terminal_value")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        self.terminal_value: str | None = None


@dataclass
class DictionaryExtractor(Extractor):
    """Extract occurrences of known phrases as (attribute, canonical value).

    Args:
        attribute: attribute name for every match (e.g. ``city``).
        phrases: phrase → canonical value; a bare iterable of phrases maps
            each phrase to itself.
        case_sensitive: match with original case (default: fold case).
        longest_match: prefer the longest phrase at each position.
        confidence: confidence of each produced extraction.
    """

    attribute: str = "mention"
    phrases: dict[str, str] | Iterable[str] = field(default_factory=dict)
    case_sensitive: bool = False
    longest_match: bool = True
    confidence: float = 0.85
    name: str = "dictionary"
    cost_per_char: float = 0.5

    def __post_init__(self) -> None:
        if not isinstance(self.phrases, dict):
            self.phrases = {p: p for p in self.phrases}
        self._tokenizer = Tokenizer()
        self._root = _TrieNode()
        for phrase, canonical in self.phrases.items():
            tokens = [self._fold(t) for t in phrase.split()]
            if not tokens:
                continue
            node = self._root
            for token in tokens:
                node = node.children.setdefault(token, _TrieNode())
            node.terminal_value = canonical

    def extract(self, doc: Document) -> list[Extraction]:
        tokens = self._tokenizer.tokenize(doc)
        out: list[Extraction] = []
        i = 0
        while i < len(tokens):
            match = self._match_at(tokens, i)
            if match is None:
                i += 1
                continue
            end_index, canonical = match
            span = Span(
                doc.doc_id,
                tokens[i].span.start,
                tokens[end_index].span.end,
                doc.text[tokens[i].span.start : tokens[end_index].span.end],
            )
            out.append(
                Extraction(
                    entity=canonical,
                    attribute=self.attribute,
                    value=canonical,
                    span=span,
                    confidence=self.confidence,
                    extractor=self.name,
                )
            )
            i = end_index + 1 if self.longest_match else i + 1
        return out

    # ------------------------------------------------------------ internals

    def _match_at(self, tokens: list[Token], start: int) -> tuple[int, str] | None:
        node = self._root
        best: tuple[int, str] | None = None
        j = start
        while j < len(tokens):
            word = self._fold_token(tokens[j])
            child = node.children.get(word)
            if child is None:
                break
            node = child
            if node.terminal_value is not None:
                best = (j, node.terminal_value)
                if not self.longest_match:
                    break
            j += 1
        return best

    def _fold(self, text: str) -> str:
        return text if self.case_sensitive else text.lower()

    def _fold_token(self, token: Token) -> str:
        return self._fold(token.text)
