"""Regex-based extraction.

The workhorse pattern extractor: a compiled regex whose *named groups* name
the attributes to emit.  An optional ``entity_group`` names the group whose
match becomes the extraction's entity; an optional normalizer per attribute
turns the raw match into a typed value.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.docmodel.document import Document, Span
from repro.extraction.base import Extraction, Extractor

Normalizer = Callable[[str], Any]


@dataclass
class RegexExtractor(Extractor):
    """Extract attribute–value pairs with a regular expression.

    Args:
        pattern: regex with named groups; each group ``g`` (other than the
            entity group) yields an extraction with attribute ``g``.
        entity_group: name of the group providing the entity, or None.
        normalizers: attribute → normalizer; a normalizer returning None
            suppresses the extraction (unparseable value).
        confidence: confidence assigned to each produced extraction.
        attribute_prefix: prepended to every attribute name (lets one
            pattern be reused for, say, ``temp_`` attributes).
    """

    pattern: str | re.Pattern = ""
    entity_group: str | None = None
    normalizers: dict[str, Normalizer] = field(default_factory=dict)
    confidence: float = 0.9
    attribute_prefix: str = ""
    name: str = "regex"
    cost_per_char: float = 1.0

    def __post_init__(self) -> None:
        if isinstance(self.pattern, str):
            self._compiled = re.compile(self.pattern)
        else:
            self._compiled = self.pattern
        if not self._compiled.groupindex:
            raise ValueError("pattern must define at least one named group")

    def extract(self, doc: Document) -> list[Extraction]:
        out: list[Extraction] = []
        for match in self._compiled.finditer(doc.text):
            entity = ""
            if self.entity_group is not None:
                raw_entity = match.group(self.entity_group)
                entity = raw_entity.strip() if raw_entity else ""
            for group_name in self._compiled.groupindex:
                if group_name == self.entity_group:
                    continue
                raw = match.group(group_name)
                if raw is None:
                    continue
                value: Any = raw.strip()
                normalizer = self.normalizers.get(group_name)
                if normalizer is not None:
                    value = normalizer(raw)
                    if value is None:
                        continue
                span = Span(doc.doc_id, match.start(group_name),
                            match.end(group_name), raw)
                out.append(
                    Extraction(
                        entity=entity,
                        attribute=self.attribute_prefix + group_name,
                        value=value,
                        span=span,
                        confidence=self.confidence,
                        extractor=self.name,
                    )
                )
        return out
