"""Link extraction: wiki links as relational facts.

Internal links (``[[Wisconsin]]``, ``[[Dane County|the county]]``) encode
relations between pages; extracting them yields ``links_to`` facts that
make the derived structure graph-shaped — the "increasingly structured
Web" of Section 5 built bottom-up from pages themselves.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.docmodel.document import Document, Span
from repro.extraction.base import Extraction, Extractor

_LINK_RE = re.compile(r"\[\[([^\]|#]+)(?:#[^\]|]*)?(?:\|([^\]]*))?\]\]")
_TITLE_RE = re.compile(r"'''([^']+)'''")


@dataclass
class LinkExtractor(Extractor):
    """Extract internal wiki links as (page, links_to, target) facts.

    The page entity is the first bold ``'''Title'''`` (wiki convention),
    falling back to the document id.  Duplicate targets collapse to the
    first occurrence.
    """

    attribute: str = "links_to"
    confidence: float = 0.99
    name: str = "links"
    cost_per_char: float = 0.2

    def extract(self, doc: Document) -> list[Extraction]:
        title_match = _TITLE_RE.search(doc.text)
        entity = title_match.group(1).strip() if title_match else doc.doc_id
        out: list[Extraction] = []
        seen: set[str] = set()
        for match in _LINK_RE.finditer(doc.text):
            target = match.group(1).strip()
            if not target or target in seen:
                continue
            seen.add(target)
            out.append(
                Extraction(
                    entity=entity,
                    attribute=self.attribute,
                    value=target,
                    span=Span(doc.doc_id, match.start(), match.end(),
                              match.group()),
                    confidence=self.confidence,
                    extractor=self.name,
                )
            )
        return out
