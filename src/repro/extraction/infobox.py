"""Structured wiki-markup extractors: infoboxes and tables.

These are the high-precision extractors for the paper's Wikipedia scenario:
an infobox field ``| sep_temp = 70`` becomes the extraction
``(entity=<page entity>, attribute="sep_temp", value=70.0)``, with the span
of the raw value as provenance.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.docmodel.document import Document
from repro.docmodel.wikimarkup import parse_infoboxes, parse_tables
from repro.extraction.base import Extraction, Extractor
from repro.extraction.normalize import normalize_number


@dataclass
class InfoboxExtractor(Extractor):
    """Extract attribute–value pairs from wiki infoboxes.

    Args:
        box_types: only infoboxes of these types are read (None = all).
        entity_field: infobox field whose value names the entity
            (falls back to the document ID).
        field_normalizers: field → normalizer; unlisted fields pass through
            as stripped strings, except that purely numeric strings are
            parsed to floats when ``auto_numeric`` is set.
        include_fields / exclude_fields: whitelist/blacklist of field names.
        auto_numeric: parse numeric-looking unlisted values into floats.
    """

    box_types: tuple[str, ...] | None = None
    entity_field: str = "name"
    field_normalizers: dict[str, Callable[[str], Any]] = field(default_factory=dict)
    include_fields: tuple[str, ...] | None = None
    exclude_fields: tuple[str, ...] = ()
    auto_numeric: bool = True
    confidence: float = 0.97
    name: str = "infobox"
    cost_per_char: float = 0.3

    def extract(self, doc: Document) -> list[Extraction]:
        out: list[Extraction] = []
        wanted = (
            {t.lower() for t in self.box_types} if self.box_types is not None else None
        )
        for box in parse_infoboxes(doc):
            if wanted is not None and box.box_type.lower() not in wanted:
                continue
            entity = box.fields.get(self.entity_field, doc.doc_id).strip()
            for key, raw in box.fields.items():
                if key == self.entity_field or not raw:
                    continue
                if self.include_fields is not None and key not in self.include_fields:
                    continue
                if key in self.exclude_fields:
                    continue
                span = box.field_spans.get(key)
                if span is None:
                    continue
                value = self._normalize(key, raw)
                if value is None:
                    continue
                out.append(
                    Extraction(
                        entity=entity,
                        attribute=key,
                        value=value,
                        span=span,
                        confidence=self.confidence,
                        extractor=self.name,
                    )
                )
        return out

    def _normalize(self, key: str, raw: str) -> Any:
        normalizer = self.field_normalizers.get(key)
        if normalizer is not None:
            return normalizer(raw)
        stripped = raw.strip()
        if self.auto_numeric:
            numeric = normalize_number(stripped)
            # Only treat as numeric when the whole value is the number.
            if numeric is not None and stripped.replace(",", "").replace(
                ".", "", 1
            ).lstrip("+-").isdigit():
                return numeric
        return stripped


@dataclass
class WikiTableExtractor(Extractor):
    """Extract rows of wiki tables as per-column attributes.

    Default (wide) mode: each data row becomes one extraction per non-key
    column, with the key column's value as the entity.  Tables lacking the
    key column are skipped.

    Pivot mode (``attribute_namer`` set): the table is treated as a
    property list — the key cell *names the attribute* (via the namer,
    e.g. ``September`` → ``sep_temp``) and the entity is the *page*
    subject, located by ``page_entity_pattern`` (default: the first
    bold ``'''Title'''`` in the page, the wiki convention).  This is how
    per-page climate tables attach to their city.

    Args:
        key_column: header of the key column.
        value_normalizers: header → normalizer for cell values.
        attribute_namer: key-cell value → attribute name (enables pivot).
        page_entity_pattern: regex whose group 1 is the page entity.
    """

    key_column: str = ""
    value_normalizers: dict[str, Callable[[str], Any]] = field(default_factory=dict)
    attribute_namer: Callable[[str], str | None] | None = None
    page_entity_pattern: str = r"'''([^']+)'''"
    confidence: float = 0.9
    name: str = "wikitable"
    cost_per_char: float = 0.4

    def extract(self, doc: Document) -> list[Extraction]:
        if not self.key_column:
            raise ValueError("key_column must be set")
        out: list[Extraction] = []
        page_entity = ""
        if self.attribute_namer is not None:
            match = re.search(self.page_entity_pattern, doc.text)
            page_entity = match.group(1).strip() if match else doc.doc_id
        for table in parse_tables(doc):
            headers = [h.strip().lower() for h in table.headers]
            key_lower = self.key_column.strip().lower()
            if key_lower not in headers:
                continue
            key_idx = headers.index(key_lower)
            for row in table.rows:
                if key_idx >= len(row):
                    continue
                key_value = row[key_idx].strip()
                if not key_value:
                    continue
                for idx, header in enumerate(headers):
                    if idx == key_idx or idx >= len(row):
                        continue
                    raw = row[idx].strip()
                    if not raw:
                        continue
                    normalizer = self.value_normalizers.get(header)
                    value: Any = normalizer(raw) if normalizer else raw
                    if value is None:
                        continue
                    if self.attribute_namer is not None:
                        attribute = self.attribute_namer(key_value)
                        if attribute is None:
                            continue
                        entity = page_entity
                    else:
                        attribute = header
                        entity = key_value
                    out.append(
                        Extraction(
                            entity=entity,
                            attribute=attribute,
                            value=value,
                            span=table.span,
                            confidence=self.confidence,
                            extractor=self.name,
                        )
                    )
        return out
