"""Information extraction (IE) operators — Figure 1, processing layer Part I.

Each extractor turns documents into :class:`Extraction` objects — attribute–
value pairs carrying the source :class:`~repro.docmodel.document.Span` and a
confidence in ``[0, 1]``.  The confidence and span feed the uncertainty and
provenance subsystem (Part V); values are normalized via
:mod:`repro.extraction.normalize`.

Extractor families:

* :class:`RegexExtractor` — pattern-based, named groups become attributes;
* :class:`DictionaryExtractor` — gazetteer phrase matching (trie-backed);
* :class:`RuleCascadeExtractor` — context-keyword rules over sentences;
* :class:`InfoboxExtractor` / :class:`WikiTableExtractor` — structured wiki
  markup;
* :class:`NaiveBayesTokenTagger` / :class:`HmmSequenceTagger` — learned
  taggers trained from labeled spans.
"""

from repro.extraction.base import Extraction, Extractor, CompositeExtractor
from repro.extraction.regex_extractor import RegexExtractor
from repro.extraction.dictionary import DictionaryExtractor
from repro.extraction.rules import ContextRule, RuleCascadeExtractor
from repro.extraction.infobox import InfoboxExtractor, WikiTableExtractor
from repro.extraction.learned import (
    HmmSequenceTagger,
    LabeledExample,
    NaiveBayesTokenTagger,
)
from repro.extraction.events import SensorEventExtractor, parse_sensor_log
from repro.extraction.links import LinkExtractor
from repro.extraction.normalize import (
    normalize_number,
    normalize_month,
    normalize_temperature,
    normalize_date,
    normalize_person_name,
)

__all__ = [
    "Extraction",
    "Extractor",
    "CompositeExtractor",
    "RegexExtractor",
    "DictionaryExtractor",
    "ContextRule",
    "RuleCascadeExtractor",
    "InfoboxExtractor",
    "WikiTableExtractor",
    "NaiveBayesTokenTagger",
    "HmmSequenceTagger",
    "LabeledExample",
    "SensorEventExtractor",
    "parse_sensor_log",
    "LinkExtractor",
    "normalize_number",
    "normalize_month",
    "normalize_temperature",
    "normalize_date",
    "normalize_person_name",
]
