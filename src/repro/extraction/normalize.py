"""Value normalizers shared by all extractors.

Raw extracted strings are semantically heterogeneous ("70", "70 °F",
"seventy"); normalizers map them into canonical typed values so integration
and querying operate on comparable data.
"""

from __future__ import annotations

import re

MONTHS = [
    "january", "february", "march", "april", "may", "june",
    "july", "august", "september", "october", "november", "december",
]

_MONTH_ABBREV = {m[:3]: m for m in MONTHS}
_MONTH_INDEX = {m: i + 1 for i, m in enumerate(MONTHS)}

_NUMBER_RE = re.compile(r"[+-]?\d{1,3}(?:,\d{3})+(?:\.\d+)?|[+-]?\d+(?:\.\d+)?")
_TEMPERATURE_RE = re.compile(
    r"(?P<value>[+-]?\d+(?:\.\d+)?)\s*(?:°\s*|degrees?\s*)?(?P<unit>[FC])?\b",
    re.IGNORECASE,
)
_DATE_RE = re.compile(
    r"(?P<month>[A-Za-z]+)\s+(?P<day>\d{1,2})\s*,?\s*(?P<year>\d{4})"
    r"|(?P<year2>\d{4})-(?P<month2>\d{2})-(?P<day2>\d{2})"
)

_WORD_NUMBERS = {
    "zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
    "eleven": 11, "twelve": 12, "twenty": 20, "thirty": 30, "forty": 40,
    "fifty": 50, "sixty": 60, "seventy": 70, "eighty": 80, "ninety": 90,
    "hundred": 100, "thousand": 1000, "million": 1_000_000,
}


def normalize_number(text: str) -> float | None:
    """Parse a numeric string (handles thousands separators and number
    words like "seventy"); returns None when unparseable."""
    stripped = text.strip().lower()
    if stripped in _WORD_NUMBERS:
        return float(_WORD_NUMBERS[stripped])
    match = _NUMBER_RE.search(text)
    if match is None:
        return None
    return float(match.group().replace(",", ""))


def normalize_month(text: str) -> str | None:
    """Canonical lowercase month name from a name or abbreviation."""
    word = text.strip().lower().rstrip(".")
    if word in _MONTH_INDEX:
        return word
    if word in _MONTH_ABBREV:
        return _MONTH_ABBREV[word]
    return None


def month_number(name: str) -> int | None:
    """1-based month index from a canonical month name."""
    canonical = normalize_month(name)
    return _MONTH_INDEX.get(canonical) if canonical else None


def normalize_temperature(text: str, default_unit: str = "F") -> float | None:
    """Parse a temperature string; returns degrees Fahrenheit.

    Accepts "70", "70 °F", "21 C", "70 degrees".  Celsius values are
    converted to Fahrenheit.
    """
    match = _TEMPERATURE_RE.search(text)
    if match is None:
        return None
    value = float(match.group("value"))
    unit = (match.group("unit") or default_unit).upper()
    if unit == "C":
        return value * 9.0 / 5.0 + 32.0
    return value


def normalize_date(text: str) -> str | None:
    """Parse a date into ISO ``YYYY-MM-DD``; returns None if unparseable.

    Accepts "September 8, 2008" and "2008-09-08".
    """
    match = _DATE_RE.search(text)
    if match is None:
        return None
    if match.group("year2"):
        year, month, day = (
            int(match.group("year2")), int(match.group("month2")),
            int(match.group("day2")),
        )
    else:
        month_idx = month_number(match.group("month"))
        if month_idx is None:
            return None
        year, month, day = int(match.group("year")), month_idx, int(match.group("day"))
    if not 1 <= month <= 12 or not 1 <= day <= 31:
        return None
    return f"{year:04d}-{month:02d}-{day:02d}"


_NAME_SUFFIXES = {"jr", "sr", "ii", "iii", "phd", "md"}


def normalize_person_name(text: str) -> str:
    """Canonical "First Last" form of a person name.

    Handles "Last, First", strips titles and suffixes, collapses spaces.
    Initials are kept ("D. Smith" stays "D. Smith") — full resolution of
    initials against full names is the integration layer's job.
    """
    cleaned = text.strip()
    cleaned = re.sub(r"^(dr|prof|mr|mrs|ms)\.?\s+", "", cleaned, flags=re.IGNORECASE)
    if "," in cleaned:
        last, _, first = cleaned.partition(",")
        candidate_suffix = first.strip().lower().rstrip(".")
        if candidate_suffix in _NAME_SUFFIXES:
            cleaned = last.strip()
        else:
            cleaned = f"{first.strip()} {last.strip()}"
    parts = [p for p in cleaned.split() if p.lower().rstrip(".") not in _NAME_SUFFIXES]
    return " ".join(parts)
