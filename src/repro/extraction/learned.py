"""Learned extractors: Naive-Bayes token tagger and HMM sequence tagger.

Both are trained from labeled spans (``LabeledExample``: a document plus
(start, end, label) triples) using BIO encoding over tokens, and both emit
:class:`~repro.extraction.base.Extraction` objects whose confidence is the
model's own probability estimate — which is exactly the "uncertainty arises
during IE" input that Figure 1's Part V manages.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.docmodel.document import Document, Span, Token
from repro.docmodel.tokenize import Tokenizer
from repro.extraction.base import Extraction, Extractor

OUTSIDE = "O"
_UNKNOWN = "<unk>"


@dataclass(frozen=True)
class LabeledExample:
    """A training document with labeled character spans.

    Attributes:
        doc: the document.
        labels: (start, end, label) triples; label is the attribute name.
    """

    doc: Document
    labels: tuple[tuple[int, int, str], ...]


def bio_encode(doc: Document, labels: Iterable[tuple[int, int, str]],
               tokenizer: Tokenizer) -> tuple[list[Token], list[str]]:
    """Token-level BIO tags for a document's labeled spans."""
    tokens = tokenizer.tokenize(doc)
    tags = [OUTSIDE] * len(tokens)
    for start, end, label in labels:
        inside = [
            i for i, t in enumerate(tokens)
            if t.span.start >= start and t.span.end <= end
        ]
        for pos, i in enumerate(inside):
            tags[i] = ("B-" if pos == 0 else "I-") + label
    return tokens, tags


def _token_features(tokens: list[Token], i: int) -> list[str]:
    token = tokens[i]
    feats = [
        f"w={token.text.lower()}",
        f"kind={token.kind}",
        f"cap={token.text[:1].isupper()}",
    ]
    if i > 0:
        feats.append(f"prev={tokens[i - 1].text.lower()}")
    if i + 1 < len(tokens):
        feats.append(f"next={tokens[i + 1].text.lower()}")
    return feats


def _spans_from_tags(doc: Document, tokens: list[Token], tags: list[str],
                     confidences: list[float]) -> list[tuple[str, Span, float]]:
    """Decode BIO tags back into (label, span, mean confidence) triples."""
    out: list[tuple[str, Span, float]] = []
    i = 0
    while i < len(tags):
        tag = tags[i]
        if tag == OUTSIDE:
            i += 1
            continue
        label = tag[2:]
        j = i + 1
        while j < len(tags) and tags[j] == "I-" + label:
            j += 1
        start = tokens[i].span.start
        end = tokens[j - 1].span.end
        conf = sum(confidences[i:j]) / (j - i)
        out.append((label, Span(doc.doc_id, start, end, doc.text[start:end]), conf))
        i = j
    return out


@dataclass
class NaiveBayesTokenTagger(Extractor):
    """Multinomial Naive Bayes per-token tagger with BIO decoding.

    Train with :meth:`train`; each feature is treated as an independent
    draw; Laplace smoothing throughout.  The per-extraction confidence is
    the mean posterior of its tokens.
    """

    value_normalizer: Callable[[str], Any] | None = None
    name: str = "naive-bayes"
    cost_per_char: float = 3.0

    def __post_init__(self) -> None:
        self._tokenizer = Tokenizer()
        self._label_counts: Counter[str] = Counter()
        self._feature_counts: dict[str, Counter[str]] = defaultdict(Counter)
        self._vocabulary: set[str] = set()
        self._trained = False

    def train(self, examples: Iterable[LabeledExample]) -> None:
        """Fit from labeled examples (may be called once)."""
        for example in examples:
            tokens, tags = bio_encode(example.doc, example.labels, self._tokenizer)
            for i, tag in enumerate(tags):
                self._label_counts[tag] += 1
                for feat in _token_features(tokens, i):
                    self._feature_counts[tag][feat] += 1
                    self._vocabulary.add(feat)
        if not self._label_counts:
            raise ValueError("no training data")
        self._trained = True

    def extract(self, doc: Document) -> list[Extraction]:
        if not self._trained:
            raise RuntimeError("tagger is not trained")
        tokens = self._tokenizer.tokenize(doc)
        tags: list[str] = []
        confs: list[float] = []
        for i in range(len(tokens)):
            tag, conf = self._classify(tokens, i)
            tags.append(tag)
            confs.append(conf)
        tags = self._repair_bio(tags)
        out: list[Extraction] = []
        for label, span, conf in _spans_from_tags(doc, tokens, tags, confs):
            value: Any = span.text
            if self.value_normalizer is not None:
                value = self.value_normalizer(span.text)
                if value is None:
                    continue
            out.append(
                Extraction(entity="", attribute=label, value=value, span=span,
                           confidence=min(max(conf, 0.0), 1.0), extractor=self.name)
            )
        return out

    # ------------------------------------------------------------ internals

    def _classify(self, tokens: list[Token], i: int) -> tuple[str, float]:
        feats = _token_features(tokens, i)
        total = sum(self._label_counts.values())
        vocab_size = max(len(self._vocabulary), 1)
        scores: dict[str, float] = {}
        for label, label_count in self._label_counts.items():
            score = math.log(label_count / total)
            feature_total = sum(self._feature_counts[label].values())
            for feat in feats:
                count = self._feature_counts[label][feat]
                score += math.log((count + 1) / (feature_total + vocab_size))
            scores[label] = score
        best = max(scores, key=lambda k: scores[k])
        # softmax over log scores for a calibrated-ish confidence
        max_score = scores[best]
        denom = sum(math.exp(s - max_score) for s in scores.values())
        return best, 1.0 / denom

    @staticmethod
    def _repair_bio(tags: list[str]) -> list[str]:
        """Fix illegal I- tags that do not continue a same-label chunk."""
        repaired = list(tags)
        for i, tag in enumerate(repaired):
            if tag.startswith("I-"):
                label = tag[2:]
                prev = repaired[i - 1] if i > 0 else OUTSIDE
                if prev not in ("B-" + label, "I-" + label):
                    repaired[i] = "B-" + label
        return repaired


@dataclass
class HmmSequenceTagger(Extractor):
    """First-order HMM over BIO tags with Viterbi decoding.

    Emissions are lowercased token texts with an ``<unk>`` fallback;
    transitions and emissions use Laplace smoothing.  Confidence is the
    ratio of the Viterbi path score to the best alternative at each token
    (a cheap margin-based estimate), averaged over the chunk.
    """

    value_normalizer: Callable[[str], Any] | None = None
    name: str = "hmm"
    cost_per_char: float = 3.5

    def __post_init__(self) -> None:
        self._tokenizer = Tokenizer()
        self._transitions: dict[str, Counter[str]] = defaultdict(Counter)
        self._emissions: dict[str, Counter[str]] = defaultdict(Counter)
        self._class_emissions: dict[str, Counter[str]] = defaultdict(Counter)
        self._initial: Counter[str] = Counter()
        self._states: list[str] = []
        self._vocab: set[str] = set()
        self._trained = False

    def train(self, examples: Iterable[LabeledExample]) -> None:
        for example in examples:
            tokens, tags = bio_encode(example.doc, example.labels, self._tokenizer)
            if not tags:
                continue
            self._initial[tags[0]] += 1
            for i, tag in enumerate(tags):
                word = tokens[i].text.lower()
                self._emissions[tag][word] += 1
                self._class_emissions[tag][tokens[i].kind] += 1
                self._vocab.add(word)
                if i + 1 < len(tags):
                    self._transitions[tag][tags[i + 1]] += 1
        self._states = sorted(
            set(self._initial) | set(self._transitions)
            | {t for c in self._transitions.values() for t in c}
            | set(self._emissions)
        )
        if not self._states:
            raise ValueError("no training data")
        self._trained = True

    def extract(self, doc: Document) -> list[Extraction]:
        if not self._trained:
            raise RuntimeError("tagger is not trained")
        tokens = self._tokenizer.tokenize(doc)
        if not tokens:
            return []
        tags, margins = self._viterbi(tokens)
        out: list[Extraction] = []
        for label, span, conf in _spans_from_tags(doc, tokens, tags, margins):
            value: Any = span.text
            if self.value_normalizer is not None:
                value = self.value_normalizer(span.text)
                if value is None:
                    continue
            out.append(
                Extraction(entity="", attribute=label, value=value, span=span,
                           confidence=min(max(conf, 0.0), 1.0), extractor=self.name)
            )
        return out

    # ------------------------------------------------------------ internals

    def _log_emission(self, state: str, word: str, kind: str) -> float:
        """Word emission with a token-class (word/number/punct) backoff.

        The class channel lets the model generalize to unseen values: a
        state trained only on numbers still strongly prefers emitting an
        unseen number over an unseen word.
        """
        counts = self._emissions[state]
        total = sum(counts.values())
        vocab = len(self._vocab) + 1
        word_p = (counts[word] + 1) / (total + vocab)
        class_counts = self._class_emissions[state]
        class_total = sum(class_counts.values())
        class_p = (class_counts[kind] + 1) / (class_total + 3)
        return math.log(word_p) + math.log(class_p)

    def _log_transition(self, prev: str, state: str) -> float:
        counts = self._transitions[prev]
        total = sum(counts.values())
        return math.log((counts[state] + 1) / (total + len(self._states)))

    def _log_initial(self, state: str) -> float:
        total = sum(self._initial.values())
        return math.log((self._initial[state] + 1) / (total + len(self._states)))

    def _viterbi(self, tokens: list[Token]) -> tuple[list[str], list[float]]:
        n = len(tokens)
        states = self._states
        score: list[dict[str, float]] = [dict() for _ in range(n)]
        back: list[dict[str, str]] = [dict() for _ in range(n)]
        word0 = tokens[0].text.lower()
        for s in states:
            score[0][s] = self._log_initial(s) + self._log_emission(
                s, word0, tokens[0].kind
            )
        for i in range(1, n):
            word = tokens[i].text.lower()
            for s in states:
                emit = self._log_emission(s, word, tokens[i].kind)
                best_prev, best_score = None, -math.inf
                for p in states:
                    candidate = score[i - 1][p] + self._log_transition(p, s)
                    if candidate > best_score:
                        best_prev, best_score = p, candidate
                score[i][s] = best_score + emit
                back[i][s] = best_prev or states[0]
        last = max(states, key=lambda s: score[n - 1][s])
        path = [last]
        for i in range(n - 1, 0, -1):
            path.append(back[i][path[-1]])
        path.reverse()
        margins: list[float] = []
        for i, chosen in enumerate(path):
            ordered = sorted(score[i].values(), reverse=True)
            if len(ordered) < 2 or ordered[0] == ordered[1]:
                margins.append(0.5)
            else:
                margins.append(1.0 - math.exp(ordered[1] - ordered[0]) / 2.0)
        return path, margins
