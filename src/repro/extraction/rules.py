"""Rule-cascade extraction over sentences.

A :class:`ContextRule` fires when a sentence contains given *trigger*
keywords and a value matching a regex; the rule names the attribute and can
bind the entity from a dictionary hit in the same sentence.  A cascade runs
rules in priority order; by default a later (lower-priority) rule will not
re-extract a span already claimed by an earlier rule — the classic cascade
discipline of CPSL-style IE systems.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.docmodel.document import Document, Span
from repro.docmodel.tokenize import SentenceSplitter
from repro.extraction.base import Extraction, Extractor
from repro.extraction.dictionary import DictionaryExtractor


@dataclass
class ContextRule:
    """One extraction rule.

    Attributes:
        attribute: attribute to emit.
        triggers: all of these keywords must occur in the sentence
            (case-insensitive).
        value_pattern: regex whose first group (or whole match) is the value.
        normalizer: applied to the raw value; returning None suppresses.
        confidence: confidence of extractions from this rule.
        priority: lower numbers run first in the cascade.
    """

    attribute: str
    triggers: tuple[str, ...]
    value_pattern: str
    normalizer: Callable[[str], Any] | None = None
    confidence: float = 0.8
    priority: int = 0

    def __post_init__(self) -> None:
        self._compiled = re.compile(self.value_pattern)
        self._trigger_res = [
            re.compile(r"\b" + re.escape(t) + r"\b", re.IGNORECASE)
            for t in self.triggers
        ]

    def matches_context(self, sentence: str) -> bool:
        return all(t.search(sentence) for t in self._trigger_res)

    def find_values(self, sentence: str) -> list[tuple[int, int, str]]:
        """(start, end, raw) triples of value matches within the sentence."""
        hits: list[tuple[int, int, str]] = []
        for match in self._compiled.finditer(sentence):
            if match.groups():
                hits.append((match.start(1), match.end(1), match.group(1)))
            else:
                hits.append((match.start(), match.end(), match.group()))
        return hits


@dataclass
class RuleCascadeExtractor(Extractor):
    """Run a prioritized cascade of context rules per sentence.

    Args:
        rules: the cascade; executed in ascending priority.
        entity_dictionary: optional gazetteer used to bind the entity of
            each extraction to a dictionary mention in the same sentence
            (the nearest one to the value).
        suppress_overlaps: when True (default), spans claimed by an earlier
            rule are off-limits to later rules.
    """

    rules: list[ContextRule] = field(default_factory=list)
    entity_dictionary: DictionaryExtractor | None = None
    suppress_overlaps: bool = True
    name: str = "rule-cascade"
    cost_per_char: float = 2.0

    def __post_init__(self) -> None:
        self._splitter = SentenceSplitter()

    def prefilter_terms(self) -> list[list[str]] | None:
        """A rule only fires on sentences containing all its triggers, so a
        document must contain some rule's full trigger set to yield output."""
        groups = [list(rule.triggers) for rule in self.rules if rule.triggers]
        return groups or None

    def extract(self, doc: Document) -> list[Extraction]:
        entity_mentions = (
            self.entity_dictionary.extract(doc) if self.entity_dictionary else []
        )
        out: list[Extraction] = []
        claimed: list[Span] = []
        for sentence_span in self._splitter.split(doc):
            sentence = sentence_span.text
            for rule in sorted(self.rules, key=lambda r: r.priority):
                if not rule.matches_context(sentence):
                    continue
                for rel_start, rel_end, raw in rule.find_values(sentence):
                    abs_start = sentence_span.start + rel_start
                    abs_end = sentence_span.start + rel_end
                    span = Span(doc.doc_id, abs_start, abs_end, raw)
                    if self.suppress_overlaps and any(
                        span.overlaps(c) for c in claimed
                    ):
                        continue
                    value: Any = raw
                    if rule.normalizer is not None:
                        value = rule.normalizer(raw)
                        if value is None:
                            continue
                    entity = self._nearest_entity(entity_mentions, sentence_span, span)
                    out.append(
                        Extraction(
                            entity=entity,
                            attribute=rule.attribute,
                            value=value,
                            span=span,
                            confidence=rule.confidence,
                            extractor=f"{self.name}:{rule.attribute}",
                        )
                    )
                    claimed.append(span)
        return out

    @staticmethod
    def _nearest_entity(mentions: list[Extraction], sentence: Span,
                        value_span: Span) -> str:
        in_sentence = [m for m in mentions if sentence.contains(m.span)]
        if not in_sentence:
            return ""
        nearest = min(
            in_sentence,
            key=lambda m: abs(m.span.start - value_span.start),
        )
        return nearest.entity
