"""Incremental, best-effort extraction (DGE model, Section 3.2).

"Many applications may want to generate structured data *incrementally*,
in a best-effort fashion, as the user deems necessary (instead of
generating all of them in one shot)."

The manager maps attribute names to the extractors that can produce them.
When a user's information need grows (``demand`` is called with new
attributes), only the not-yet-run extractors execute; everything already
extracted is served from cache.  Work is accounted in characters scanned ×
extractor cost, so experiment E4 can compare incremental total cost against
one-shot extraction of everything.

The manager can additionally share a content-addressed
:class:`~repro.cache.store.ExtractionCache` with the executor: cached
rows use the executor's tuple form, so a document an xlog program already
extracted is served without re-scanning here (and vice versa), and
``work_done`` counts only extraction actually performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cache.fingerprint import extractor_fingerprint
from repro.cache.store import ExtractionCache, document_key, make_cache
from repro.docmodel.document import Document
from repro.extraction.base import Extraction, Extractor
from repro.lang.executor import extraction_to_tuple, tuple_to_extraction


@dataclass
class _ExtractorEntry:
    extractor: Extractor
    attributes: frozenset[str]
    has_run: bool = False


@dataclass
class IncrementalExtractionManager:
    """On-demand attribute extraction with cost accounting.

    Args:
        corpus: documents to extract from.
        cache: optional content-addressed extraction cache (same specs as
            :func:`~repro.cache.store.make_cache`); hits skip the scan and
            do not count toward ``work_done``.
    """

    corpus: Sequence[Document] = ()
    cache: ExtractionCache | str | None = None
    _entries: dict[str, _ExtractorEntry] = field(default_factory=dict)
    _cache: list[Extraction] = field(default_factory=list)
    work_done: float = 0.0  # cost-weighted characters scanned

    def __post_init__(self) -> None:
        self._extraction_cache = make_cache(self.cache)

    def register(self, name: str, extractor: Extractor,
                 attributes: Sequence[str]) -> None:
        """Declare that ``extractor`` produces the given attributes.

        Raises:
            ValueError: duplicate name or empty attribute list.
        """
        if name in self._entries:
            raise ValueError(f"extractor {name!r} already registered")
        if not attributes:
            raise ValueError("attributes must be non-empty")
        self._entries[name] = _ExtractorEntry(
            extractor=extractor, attributes=frozenset(attributes)
        )

    def demanded_attributes(self) -> set[str]:
        """Attributes whose extractors have already run."""
        out: set[str] = set()
        for entry in self._entries.values():
            if entry.has_run:
                out |= entry.attributes
        return out

    def demand(self, attributes: Sequence[str]) -> list[Extraction]:
        """Ensure the given attributes are extracted; return their facts.

        Runs only extractors that (a) cover at least one newly demanded
        attribute and (b) have not run yet.  Returns all cached extractions
        whose attribute is in the demanded set.

        Raises:
            KeyError: an attribute no registered extractor produces.
        """
        wanted = set(attributes)
        covered: set[str] = set()
        for entry in self._entries.values():
            covered |= entry.attributes
        missing = wanted - covered
        if missing:
            raise KeyError(
                f"no extractor produces attribute(s) {sorted(missing)}"
            )
        for entry in self._entries.values():
            if entry.has_run or not (entry.attributes & wanted):
                continue
            self._run(entry)
        return [e for e in self._cache if e.attribute in wanted]

    def extract_all(self) -> list[Extraction]:
        """One-shot mode: run every registered extractor now."""
        for entry in self._entries.values():
            if not entry.has_run:
                self._run(entry)
        return list(self._cache)

    def cached(self) -> list[Extraction]:
        return list(self._cache)

    def _run(self, entry: _ExtractorEntry) -> None:
        store = self._extraction_cache
        fingerprint = (
            extractor_fingerprint(entry.extractor) if store is not None else ""
        )
        for doc in self.corpus:
            rows = None
            if store is not None:
                rows = store.get(document_key(doc), fingerprint)
            if rows is None:
                extractions = entry.extractor.extract(doc)
                self.work_done += entry.extractor.cost_per_char * len(doc.text)
                if store is not None:
                    # The *full* output is cached (pre-filter), so the
                    # same entry serves any attribute subset — and the
                    # executor, which shares the tuple form.
                    store.put(document_key(doc), fingerprint,
                              [extraction_to_tuple(e) for e in extractions])
            else:
                extractions = [tuple_to_extraction(r) for r in rows]
            self._cache.extend(
                e for e in extractions if e.attribute in entry.attributes
            )
        entry.has_run = True
