"""Admission control and graceful drain for the query serving path.

The system is pitched as an always-on service (Impliance's
"information appliance"); under overload it must degrade *predictably*
— bounded concurrency, bounded queueing, typed load-shedding — instead
of piling every caller onto the lock manager and letting timeouts sort
them out.  :class:`ServingGate` implements the standard bounded-
semaphore-plus-overflow-queue pattern:

* up to ``max_concurrent`` queries execute at once;
* up to ``max_queue`` more wait (FIFO via the condition variable) for at
  most ``queue_timeout`` seconds;
* everything beyond that is shed immediately with a typed
  :class:`~repro.errors.AdmissionRejected` (``reason="saturated"``).

Shutdown is a two-state machine: ``drain()`` flips the gate to
*draining* (new arrivals are rejected with ``reason="draining"``), then
waits up to its timeout for in-flight queries to finish.  Queries that
outlive the drain window are cancelled cooperatively by the caller
(the serving layer sets a shutdown event their guards poll).

Counters: ``serving.admitted`` / ``serving.rejected`` /
``serving.timed_out`` (bumped by the serving layer) / ``serving.drained``.
"""

from __future__ import annotations

import threading
import time

from repro.errors import AdmissionRejected
from repro.telemetry import metrics


class ServingGate:
    """Bounded admission for concurrent queries, with graceful drain.

    Use as a context manager per query::

        with gate.admit(sql):
            ... execute ...

    Args:
        max_concurrent: queries allowed to execute simultaneously.
        max_queue: arrivals allowed to wait for a slot; beyond this the
            gate sheds load immediately.
        queue_timeout: seconds a queued arrival waits before giving up
            (``reason="queue-timeout"``).
    """

    def __init__(self, max_concurrent: int = 8, max_queue: int = 16,
                 queue_timeout: float = 5.0) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self.max_queue = max(0, max_queue)
        self.queue_timeout = queue_timeout
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._draining = False

    # ----------------------------------------------------------- admission

    def admit(self, sql: str | None = None) -> "_Admission":
        """Block until a slot is free; raise when shed. Returns a context
        manager whose exit releases the slot.

        Raises:
            AdmissionRejected: the gate is draining, the overflow queue
                is full, or the queue wait timed out.
        """
        registry = metrics.get_registry()
        with self._cond:
            if self._draining:
                registry.inc("serving.rejected")
                raise AdmissionRejected(
                    "server is draining", reason="draining", sql=sql)
            if (self._active >= self.max_concurrent
                    and self._waiting >= self.max_queue):
                registry.inc("serving.rejected")
                raise AdmissionRejected(
                    f"server saturated ({self._active} active, "
                    f"{self._waiting} queued)", reason="saturated", sql=sql)
            deadline = time.monotonic() + self.queue_timeout
            self._waiting += 1
            try:
                while self._active >= self.max_concurrent:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._draining:
                        registry.inc("serving.rejected")
                        if self._draining:
                            raise AdmissionRejected(
                                "server is draining", reason="draining",
                                sql=sql)
                        raise AdmissionRejected(
                            f"queued {self.queue_timeout:.1f}s without a "
                            f"free slot", reason="queue-timeout", sql=sql)
                    self._cond.wait(timeout=remaining)
            finally:
                self._waiting -= 1
            self._active += 1
        registry.inc("serving.admitted")
        return _Admission(self)

    def _release(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify_all()

    # --------------------------------------------------------------- drain

    def drain(self, timeout: float = 10.0) -> bool:
        """Stop admitting and wait for in-flight queries to finish.

        Idempotent.  Returns True when the gate emptied within
        ``timeout`` seconds; False when queries were still running (the
        caller should cancel them cooperatively and proceed).
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            self._draining = True
            self._cond.notify_all()  # wake queued waiters to reject them
            while self._active > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
            return True

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def stats(self) -> dict[str, int]:
        with self._cond:
            return {"active": self._active, "waiting": self._waiting,
                    "draining": int(self._draining)}


class _Admission:
    """Context manager releasing one admitted slot on exit."""

    __slots__ = ("_gate",)

    def __init__(self, gate: ServingGate) -> None:
        self._gate = gate

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._gate._release()
