"""The StructureManagementSystem facade."""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Sequence

from repro.cache.store import ExtractionCache, make_cache
from repro.core.serving import ServingGate
from repro.errors import CancellationToken, QueryTimeoutError
from repro.cluster.backends import ExecutionBackend, make_backend
from repro.cluster.simulator import ClusterConfig, SimulatedCluster
from repro.debugger.semantic import SemanticDebugger, SystemMonitor
from repro.docmodel.corpus import Corpus, InMemoryCorpus
from repro.docmodel.document import Document
from repro.faults.deadletter import DeadLetterEntry, DeadLetterStore
from repro.faults.retry import RetryPolicy
from repro.lang.executor import ExecutionResult, Executor
from repro.lang.optimizer import Optimizer
from repro.lang.parser import parse_program
from repro.lang.plan import LogicalPlan
from repro.lang.registry import OperatorRegistry
from repro.storage.manager import StorageManager
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.qcache import QueryResultCache
from repro.storage.rdbms.sql import execute_sql
from repro.storage.rdbms.types import (
    Column,
    ColumnType,
    SchemaError,
    TableSchema,
)
from repro.telemetry import current_session, metrics
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.tracing import get_tracer
from repro.uncertainty.provenance import ProvenanceGraph
from repro.userlayer.accounts import UserManager
from repro.userlayer.builtin_forms import register_builtin_forms
from repro.userlayer.forms import FormCatalog
from repro.userlayer.monitoring import ContinuousQueryManager
from repro.userlayer.search import KeywordSearchEngine
from repro.userlayer.session import ExplorationSession
from repro.userlayer.translate import QueryTranslator

FACTS_TABLE = "facts"


def facts_schema() -> TableSchema:
    """The EAV schema of the final structured store.

    Numeric values land in ``value_num``; everything else in ``value_text``
    (one of the two is NULL per row).
    """
    return TableSchema(
        name=FACTS_TABLE,
        columns=(
            Column("fact_id", ColumnType.INT, nullable=False),
            Column("entity", ColumnType.TEXT, nullable=False),
            Column("attribute", ColumnType.TEXT, nullable=False),
            Column("value_text", ColumnType.TEXT),
            Column("value_num", ColumnType.FLOAT),
            Column("confidence", ColumnType.FLOAT),
            Column("doc_id", ColumnType.TEXT),
        ),
        primary_key="fact_id",
    )


@dataclass
class GenerationReport:
    """Outcome of one data-generation run.

    ``cluster_makespan`` is *simulated* time (the E7 cost model);
    ``backend_name`` / ``real_parallel_seconds`` report *real* wall-clock
    parallel execution when an execution backend is configured.
    """

    facts_stored: int
    facts_flagged: int
    intermediate_records: int
    hi_questions: int
    chars_scanned: int
    cluster_makespan: float
    plan_rendering: str
    backend_name: str = "inline"
    real_parallel_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    failed_docs: int = 0
    failed_doc_ids: list[str] = field(default_factory=list)


@dataclass
class StructureManagementSystem:
    """End-to-end system object.

    Args:
        workspace: directory for all stores; None keeps everything
            in memory (no raw snapshot store in that case).
        registry: extractors/resolvers/crowd used by programs.
        use_cluster: run extraction waves on a simulated cluster.
        cluster_config: cluster shape when ``use_cluster``.
        backend: real execution backend for extraction — ``"serial"``,
            ``"thread"``, ``"process"``, an :class:`ExecutionBackend`
            instance, or None (inline, the default).  Independent of
            ``use_cluster``: the cluster simulates cost/failure, the
            backend adds real wall-clock parallelism; output is identical
            either way.
        backend_workers: pool size for thread/process backends
            (default: CPU count, capped at 8).
        cache: extraction cache — ``None`` (off), ``"memory"`` (in-process
            LRU), any other string (directory for a persistent on-disk
            cache; survives across system instances), or an
            :class:`~repro.cache.store.ExtractionCache` instance.  With a
            cache, ``generate()`` re-runs only extract documents whose
            text (or extractor configuration) changed since the cached
            run; output is byte-identical either way.
        retry: per-document extraction retry policy (defaults to three
            quick attempts).  Documents that still fail are quarantined
            in the dead-letter store instead of failing the run.
        fail_fast: abort ``generate()`` on the first extraction failure
            (pre-PR-4 semantics) instead of retrying and quarantining.
        auto_compact_rows: freeze a table's committed rows into columnar
            segments whenever its row-store tail exceeds this many rows
            (None disables auto-compaction; ``compact()`` still works).
        slow_query_seconds: statements taking at least this long (wall
            time, cache hits included) are captured in the slow-query
            log — persisted to ``<workspace>/slowlog.jsonl`` when a
            workspace is configured, in memory otherwise.  None disables
            slow-query logging entirely (no timing on the query path).
        max_concurrent_queries: queries allowed to execute at once
            through :meth:`query`; excess arrivals queue.
        max_queued_queries: arrivals allowed to wait for a slot; beyond
            this :meth:`query` sheds load with
            :class:`~repro.errors.AdmissionRejected`.
        admission_timeout_seconds: longest a queued query waits for a
            slot before being rejected.
        query_deadline_seconds: default per-query deadline (cooperative
            cancellation, :class:`~repro.errors.QueryTimeoutError`).
            None disables; :meth:`query` accepts a per-call override.
        drain_timeout_seconds: how long :meth:`close` waits for
            in-flight queries before cancelling the stragglers.
    """

    workspace: str | None = None
    registry: OperatorRegistry = field(default_factory=OperatorRegistry)
    use_cluster: bool = False
    cluster_config: ClusterConfig = field(default_factory=ClusterConfig)
    backend: str | ExecutionBackend | None = None
    backend_workers: int | None = None
    cache: ExtractionCache | str | None = None
    retry: RetryPolicy | None = None
    fail_fast: bool = False
    auto_compact_rows: int | None = None
    slow_query_seconds: float | None = 1.0
    max_concurrent_queries: int = 8
    max_queued_queries: int = 16
    admission_timeout_seconds: float = 5.0
    query_deadline_seconds: float | None = None
    drain_timeout_seconds: float = 10.0

    def __post_init__(self) -> None:
        # Serving state first: the reopened-workspace path below issues a
        # query, which must pass through the admission gate.
        self.gate = ServingGate(
            max_concurrent=self.max_concurrent_queries,
            max_queue=self.max_queued_queries,
            queue_timeout=self.admission_timeout_seconds,
        )
        self._shutdown = threading.Event()
        self._closed = False
        if self.workspace is not None:
            self.storage = StorageManager(self.workspace)
            self.db: Database = self.storage.final
        else:
            self.storage = None  # type: ignore[assignment]
            self.db = Database()
        self.db.auto_compact_rows = self.auto_compact_rows
        self.search = KeywordSearchEngine()
        self.debugger = SemanticDebugger()
        self.monitor = SystemMonitor()
        self.provenance = self._load_provenance()
        self.users = UserManager()
        self.forms = FormCatalog()
        register_builtin_forms(self.forms, table=FACTS_TABLE)
        self.monitoring = ContinuousQueryManager(self.db)
        # Serving-path result cache: SELECTs repeated between commits are
        # answered from memory; any commit or schema change to a table a
        # cached statement reads evicts it (same listener stream as the
        # planner's statistics).  The cache is also the observability
        # funnel: the slow-query log times every statement flowing
        # through it (None disables timing entirely).
        if self.slow_query_seconds is not None:
            self.slowlog: SlowQueryLog | None = SlowQueryLog(
                path=os.path.join(self.workspace, "slowlog.jsonl")
                if self.workspace is not None else None,
                threshold_seconds=self.slow_query_seconds,
            )
        else:
            self.slowlog = None
        self.query_cache = QueryResultCache(self.db, slowlog=self.slowlog)
        # Standing queries fire on *any* committed write — the manager
        # subscribes to the row-level commit delta stream on its first
        # registration and evaluates changed rows only, so direct
        # db.run(insert_many)/run_batch writes that never pass through
        # generate()/contribute() notify too, without a full re-run.
        self._corpus = InMemoryCorpus()
        self._fact_counter = 0
        self._cluster = (
            SimulatedCluster(self.cluster_config) if self.use_cluster else None
        )
        backend_retry = RetryPolicy(max_attempts=1) if self.fail_fast \
            else None
        self._backend = make_backend(self.backend,
                                     max_workers=self.backend_workers,
                                     retry=backend_retry)
        # The SQL planner fans sharded-table scans/aggregates/joins out
        # on the same backend the extraction pipeline uses (DESIGN.md
        # §14); None keeps every plan single-threaded.
        self.db.exec_backend = self._backend
        self._cache = make_cache(self.cache)
        self.deadletter = DeadLetterStore(
            os.path.join(self.workspace, "deadletter")
            if self.workspace is not None else None
        )
        if FACTS_TABLE not in self.db.table_names():
            self.db.create_table(facts_schema())
            self.db.create_index(FACTS_TABLE, "entity")
            self.db.create_index(FACTS_TABLE, "attribute")
        else:
            # Reopened workspace: secondary indexes are in-memory only
            # (recovery replays rows, not indexes), so rebuild the facts
            # indexes the planner relies on before serving queries.
            for column in ("entity", "attribute"):
                try:
                    self.db.create_index(FACTS_TABLE, column)
                except SchemaError:
                    pass  # already present (in-memory reuse of the engine)
            # continue fact ids after the stored max
            existing = self.query(
                f"SELECT MAX(fact_id) AS m FROM {FACTS_TABLE}"
            )[0]["m"]
            self._fact_counter = (existing + 1) if existing is not None else 0

    # ------------------------------------------------------------ ingestion

    def ingest(self, corpus: Corpus | Sequence[Document]) -> int:
        """Take in (a snapshot of) unstructured data.

        Pages are committed to the raw snapshot store (when a workspace is
        configured) and indexed for keyword search.  The dedup check and
        index build are batched: one pass decides which pages are new, one
        ``index_corpus`` call indexes them all (O(n) total rather than a
        per-document index call).  Returns page count.
        """
        with get_tracer().span("system.ingest") as span:
            docs = list(corpus)
            new_docs: list[Document] = []
            seen_in_batch: set[str] = set()
            for doc in docs:
                self._corpus.add(doc)
                if self.storage is not None:
                    self.storage.raw.commit(doc)
                # reingest-safe: skip pages already indexed, and index only
                # the first occurrence of a doc_id repeated within this batch
                if doc.doc_id not in seen_in_batch \
                        and not self.search.has_document(doc.doc_id):
                    seen_in_batch.add(doc.doc_id)
                    new_docs.append(doc)
            if new_docs:
                self.search.index_corpus(new_docs)
            metrics.get_registry().inc("system.pages.ingested", len(docs))
            span.set_attribute("pages", len(docs))
            span.set_attribute("new_pages", len(new_docs))
            return len(docs)

    @property
    def corpus(self) -> InMemoryCorpus:
        return self._corpus

    # ----------------------------------------------------------- generation

    def generate(self, program_source: str, optimize: bool = True,
                 learn_constraints_first: bool = True) -> GenerationReport:
        """Run a declarative IE+II+HI program and store its output facts.

        The pipeline result is staged in the intermediate file store,
        screened by the semantic debugger (facts it flags are *kept* but
        flagged — a human decides; their confidence is halved), written to
        the final RDBMS, provenance-recorded, and fact-indexed for search.
        """
        with get_tracer().span("system.generate") as span:
            docs = list(self._corpus)
            ops, output = parse_program(program_source)
            plan = LogicalPlan.from_ops(ops, output)
            if optimize:
                plan = Optimizer(self.registry).optimize(plan, docs[:50])
            executor = Executor(self.registry, cluster=self._cluster,
                                backend=self._backend, cache=self._cache,
                                retry=self.retry, fail_fast=self.fail_fast)
            result: ExecutionResult = executor.execute(plan, docs)
            if result.failed_docs:
                self.deadletter.add_many(
                    DeadLetterEntry(
                        doc_id=f["doc_id"],
                        extractor=f.get("extractor", ""),
                        error=f.get("error", ""),
                        error_type=f.get("error_type", ""),
                        attempts=int(f.get("attempts", 1)),
                    )
                    for f in result.failed_docs
                )

            rows = [r for r in result.rows if r.get("attribute")]
            if self.storage is not None:
                self.storage.intermediate.append_many(
                    [dict(r) for r in rows]
                )
            if learn_constraints_first and rows \
                    and not self.debugger.constraints:
                trusted = [
                    {r["attribute"]: r["value"]}
                    for r in rows
                    if r.get("confidence", 0.0) >= 0.9
                ]
                if trusted:
                    self.debugger.learn(trusted)

            flagged_count = 0
            staged: list[tuple[dict[str, Any], dict[str, Any], float]] = []
            for row in rows:
                violations = self.debugger.check(
                    {row["attribute"]: row["value"]},
                    context=f"doc {row.get('doc_id', '?')}",
                )
                confidence = float(row.get("confidence", 1.0))
                if violations:
                    flagged_count += 1
                    confidence *= 0.5
                staged.append(
                    (row, self._fact_values(row, confidence), confidence)
                )
            # Batched write path: one transaction, one insert_many WAL
            # record and one table-lock acquisition for the whole run (vs
            # one transaction per fact on the old loop).  The commit delta
            # notifies monitoring, so standing queries fire here too.
            if staged:
                batch = [values for _, values, _ in staged]
                self.db.run(lambda t: t.insert_many(FACTS_TABLE, batch))
                for row, values, confidence in staged:
                    self._record_fact_provenance(row, values, confidence)
            stored = len(staged)
            self.monitor.record_batch(processed=max(len(rows), 1),
                                      errors=flagged_count)
            self.search.index_facts(
                [
                    {"entity": r["entity"], "attribute": r["attribute"],
                     "value": r["value"]}
                    for r in rows
                ]
            )
            registry = metrics.get_registry()
            registry.inc("system.facts.stored", stored)
            registry.inc("system.facts.flagged", flagged_count)
            span.set_attribute("facts_stored", stored)
            span.set_attribute("facts_flagged", flagged_count)
            span.set_attribute("intermediate_records", len(rows))
            span.set_attribute("failed_docs", len(result.failed_docs))
            return GenerationReport(
                facts_stored=stored,
                facts_flagged=flagged_count,
                intermediate_records=len(rows),
                hi_questions=result.stats.hi_questions,
                chars_scanned=result.stats.total_chars_scanned,
                cluster_makespan=result.stats.cluster_makespan,
                plan_rendering=result.plan.render(),
                backend_name=result.stats.backend_name,
                real_parallel_seconds=result.stats.real_parallel_seconds,
                cache_hits=result.stats.cache_hits,
                cache_misses=result.stats.cache_misses,
                failed_docs=len(result.failed_docs),
                failed_doc_ids=sorted(f["doc_id"]
                                      for f in result.failed_docs),
            )

    def retry_deadletter(self, program_source: str,
                         optimize: bool = True) -> tuple[int, int]:
        """Re-drive quarantined documents through a program.

        Quarantined documents still present in the corpus are re-run
        through ``generate()`` (over just those documents).  Documents
        that now succeed leave the dead-letter store and their facts are
        stored; documents that fail again are re-quarantined.  Entries
        whose documents are no longer in the corpus are left untouched.

        Returns:
            ``(retried, still_failed)`` counts.
        """
        ids = set(self.deadletter.doc_ids())
        docs = [d for d in self._corpus if d.doc_id in ids]
        if not docs:
            return (0, 0)
        # generate() re-adds whatever fails again, so clear the attempted
        # entries first — a success must not linger in quarantine.
        self.deadletter.remove([d.doc_id for d in docs])
        saved_corpus = self._corpus
        subset = InMemoryCorpus()
        for doc in docs:
            subset.add(doc)
        self._corpus = subset
        try:
            report = self.generate(program_source, optimize=optimize)
        finally:
            self._corpus = saved_corpus
        return (len(docs), report.failed_docs)

    def _store_fact(self, row: dict[str, Any], confidence: float) -> None:
        """Store one fact (single-row path; generate() batches instead)."""
        values = self._fact_values(row, confidence)
        self.db.run(lambda t: t.insert(FACTS_TABLE, values))
        self._record_fact_provenance(row, values, confidence)

    def _fact_values(self, row: dict[str, Any], confidence: float) -> dict[str, Any]:
        """Build the facts-table row for a pipeline tuple (assigns an id)."""
        value = row.get("value")
        is_num = isinstance(value, (int, float)) and not isinstance(value, bool)
        fact_id = self._fact_counter
        self._fact_counter += 1
        return {
            "fact_id": fact_id,
            "entity": str(row.get("entity", "")),
            "attribute": str(row["attribute"]),
            "value_text": None if is_num else str(value),
            "value_num": float(value) if is_num else None,
            "confidence": confidence,
            "doc_id": str(row.get("doc_id", "")),
        }

    def _record_fact_provenance(self, row: dict[str, Any],
                                values: dict[str, Any],
                                confidence: float) -> None:
        value = row.get("value")
        span_detail = row.get("span_text")
        if span_detail is not None and row.get("doc_id"):
            from repro.docmodel.document import Span
            from repro.extraction.base import Extraction

            extraction = Extraction(
                entity=values["entity"],
                attribute=values["attribute"],
                value=value,
                span=Span(row["doc_id"], row.get("span_start", 0),
                          row.get("span_end", 0), span_detail),
                confidence=min(max(row.get("confidence", 1.0), 0.0), 1.0),
                extractor=row.get("extractor", "pipeline"),
            )
            node = self.provenance.record_extraction(extraction)
            self.provenance.record_fact(
                values["entity"], values["attribute"], value, confidence, [node]
            )

    # ------------------------------------------------------------- queries

    def query(self, sql: str,
              deadline_seconds: float | None = None) -> list[dict[str, Any]]:
        """Structured querying (sophisticated-user path).

        SELECTs run lock-free on an MVCC snapshot and are served through
        the snapshot-coherent result cache; everything else executes
        directly (and, by committing, invalidates whatever it touched).
        Every call passes the admission gate (bounded concurrency +
        overflow queue) and runs under a cooperative deadline.

        Args:
            deadline_seconds: per-call deadline override; defaults to
                ``query_deadline_seconds`` (None = no deadline).

        Raises:
            AdmissionRejected: the server is saturated or draining.
            QueryTimeoutError: the deadline passed (or shutdown cancelled
                the query) mid-execution.
        """
        if deadline_seconds is None:
            deadline_seconds = self.query_deadline_seconds
        with get_tracer().span("system.query") as span:
            with self.gate.admit(sql):
                guard = CancellationToken.after(
                    deadline_seconds, event=self._shutdown, sql=sql)
                try:
                    rows = self.query_cache.execute(sql, guard=guard)
                except QueryTimeoutError:
                    metrics.get_registry().inc("serving.timed_out")
                    raise
            metrics.get_registry().inc("system.queries")
            span.set_attribute("rows", len(rows))
            return rows

    def compact(self, table: str = FACTS_TABLE) -> dict[str, Any]:
        """Freeze ``table``'s committed rows into columnar segments.

        Equivalent to ``ALTER TABLE <table> COMPACT``; scans and query
        results are unchanged, aggregate scans get the vectorized
        executor.  Returns the compaction summary.

        Raises:
            KeyError: unknown table.
        """
        return self.db.compact(table)

    def reshard(self, table: str, shard_key: str | None,
                shard_count: int = 1) -> dict[str, Any]:
        """Change ``table``'s hash-partitioning layout (DESIGN.md §14).

        Equivalent to ``ALTER TABLE <table> RESHARD BY (key) SHARDS n``;
        ``shard_key=None`` removes sharding.  With a backend configured,
        sharded tables get parallel scans/aggregates/joins.  Returns the
        reshard summary.

        Raises:
            KeyError: unknown table.
            SchemaError: unknown shard key column.
        """
        return self.db.reshard(table, shard_key, shard_count)

    def explain_sql(self, sql: str) -> str:
        """The planner's physical plan for a SELECT, as text.

        Accepts either ``EXPLAIN SELECT ...`` or a bare ``SELECT ...``.

        Raises:
            SqlError: on parse errors or non-SELECT input.
        """
        stripped = sql.lstrip()
        if not stripped.lower().startswith("explain"):
            sql = f"EXPLAIN {sql}"
        rows = execute_sql(self.db, sql)
        return "\n".join(r["plan"] for r in rows)

    def slow_queries(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Captured slow-query entries, oldest first.

        Empty when slow-query logging is disabled
        (``slow_query_seconds=None``) or nothing crossed the threshold.
        """
        if self.slowlog is None:
            return []
        return self.slowlog.entries(limit=limit)

    def keyword(self, query: str, k: int = 5):
        """Keyword search over pages (ordinary-user starting point)."""
        return self.search.search(query, k=k)

    def keyword_facts(self, query: str, k: int = 5) -> list[dict[str, Any]]:
        """Keyword search over the derived structure."""
        return self.search.search_facts(query, k=k)

    def translator(self) -> QueryTranslator:
        """A translator reflecting the currently stored structure."""
        attributes = sorted(
            {r["attribute"] for r in self.query(
                f"SELECT attribute FROM {FACTS_TABLE}"
            )}
        )
        entities = sorted(
            {r["entity"] for r in self.query(
                f"SELECT entity FROM {FACTS_TABLE}"
            )}
        )
        return QueryTranslator(
            table=FACTS_TABLE,
            entity_column="entity",
            attributes=attributes,
            entities=entities,
            attribute_column="attribute",
            value_column="value_num",
            catalog=self.forms,
        )

    def session(self, user: str = "anonymous") -> ExplorationSession:
        """Start an iterative exploration session."""
        return ExplorationSession(
            search=self.search, translator=self.translator(), db=self.db,
            user=user, cache=self.query_cache,
            deadline_seconds=self.query_deadline_seconds,
            shutdown=self._shutdown,
        )

    def explain(self, entity: str, attribute: str) -> str:
        """Provenance explanation for stored facts about (entity, attr)."""
        nodes = self.provenance.find_facts(entity=entity, attribute=attribute)
        if not nodes:
            return f"no recorded provenance for {entity}.{attribute}"
        return "\n\n".join(
            self.provenance.explain(n.node_id).render() for n in nodes
        )

    def contribute(self, user: str, entity: str, attribute: str,
                   value: Any) -> int:
        """Store a user-contributed fact (Web 2.0 data generation).

        Ordinary users participate in generation directly; a contribution
        is screened by the semantic debugger like any extracted fact, its
        confidence scales with the contributor's reputation, and its
        provenance records the user as the source.

        Returns:
            The stored fact's id.

        Raises:
            ValueError: unknown user (register via ``system.users`` first).
        """
        if not self.users.exists(user):
            raise ValueError(f"unknown user {user!r}; register first")
        reputation = self.users.user_reputation(user)
        confidence = 0.5 + 0.5 * reputation  # rep 0.5 -> 0.75, rep 1 -> 1.0
        violations = self.debugger.check({attribute: value},
                                         context=f"contribution by {user}")
        if violations:
            confidence *= 0.5
        fact_id = self._fact_counter
        is_num = isinstance(value, (int, float)) and not isinstance(value, bool)
        self._fact_counter += 1
        values = {
            "fact_id": fact_id,
            "entity": entity,
            "attribute": attribute,
            "value_text": None if is_num else str(value),
            "value_num": float(value) if is_num else None,
            "confidence": confidence,
            "doc_id": f"user:{user}",
        }
        self.db.run(lambda t: t.insert(FACTS_TABLE, values))
        fact_node = self.provenance.add_node(
            "fact",
            f"{entity}.{attribute} = {value!r} (conf {confidence:.2f})",
            detail={"entity": entity, "attribute": attribute,
                    "value": value, "confidence": confidence},
        )
        self.provenance.record_feedback(f"contributed by user {user}",
                                        fact_node)
        self.search.index_facts(
            [{"entity": entity, "attribute": attribute, "value": value}]
        )
        return fact_id

    def unify_attributes(self, left_attributes: Sequence[str],
                         right_attributes: Sequence[str],
                         name_weight: float = 0.75,
                         threshold: float = 0.45) -> list[tuple[str, str, int]]:
        """Schema-match two attribute families and fold the left into the
        right (the II step as a system operation).

        Value samples come from the stored facts; each accepted
        correspondence rewrites the left attribute's facts to the right
        name.

        Returns:
            (left, right, facts rewritten) per accepted correspondence.
        """
        from repro.integration.schema_matching import SchemaMatcher

        rows = self.query(
            f"SELECT attribute, value_num, value_text FROM {FACTS_TABLE}"
        )
        samples: dict[str, list[Any]] = {}
        for row in rows:
            value = row["value_num"] if row["value_num"] is not None \
                else row["value_text"]
            if value is not None:
                samples.setdefault(row["attribute"], []).append(value)
        left = {a: samples[a] for a in left_attributes if a in samples}
        right = {a: samples[a] for a in right_attributes if a in samples}
        matcher = SchemaMatcher(threshold=threshold, name_weight=name_weight,
                                instance_weight=1.0 - name_weight)
        out: list[tuple[str, str, int]] = []
        for match in matcher.match(left, right):
            # Parameterized rewrite through the transaction API (the SQL
            # string path would need quote-escaping for attribute names
            # containing ', and this also uses the attribute index).
            def rewrite(t, source=match.left, target=match.right):
                hits = t.lookup(FACTS_TABLE, "attribute", source)
                for hit in hits:
                    t.update(FACTS_TABLE, hit.rid, {"attribute": target})
                return len(hits)

            out.append((match.left, match.right, self.db.run(rewrite)))
        return out

    def explain_program(self, program_source: str) -> str:
        """EXPLAIN for xlog programs: naive and optimized plans with the
        cost model's estimates (developer-facing, Figure 1 Part II)."""
        docs = list(islice(self._corpus, 50))
        ops, output = parse_program(program_source)
        naive = LogicalPlan.from_ops(ops, output)
        optimizer = Optimizer(self.registry)
        optimized = optimizer.optimize(naive, docs)
        naive_cost = optimizer.estimate_cost(naive, docs)
        optimized_cost = optimizer.estimate_cost(optimized, docs)
        return (
            f"-- naive plan (estimated cost {naive_cost.total:.0f})\n"
            f"{naive.render()}\n\n"
            f"-- optimized plan (estimated cost {optimized_cost.total:.0f})\n"
            f"{optimized.render()}"
        )

    def fact_count(self) -> int:
        rows = self.query(f"SELECT COUNT(*) AS n FROM {FACTS_TABLE}")
        return int(rows[0]["n"])

    @property
    def extraction_cache(self) -> ExtractionCache | None:
        """The resolved extraction cache (None when caching is off)."""
        return self._cache

    def streaming_pipeline(self, extractor_names: Sequence[str] | None = None,
                           strategy: str = "weighted_vote",
                           queue_size: int = 64,
                           token: "CancellationToken | None" = None):
        """Build the streaming DGE loop over this system's components.

        Uses the registered extractors (or the named subset), the shared
        extraction cache, the dead-letter store, and this system's
        database — so fused rows land where continuous queries watch.
        """
        from repro.core.streaming import StreamingPipeline
        if extractor_names is None:
            extractors = dict(self.registry.extractors)
        else:
            extractors = {name: self.registry.extractor(name)
                          for name in extractor_names}
        return StreamingPipeline(
            self.db, extractors,
            strategy=strategy,
            cache=self._cache,
            deadletter=self.deadletter,
            token=token,
            queue_size=queue_size,
        )

    def close(self) -> None:
        """Graceful shutdown: drain, cancel stragglers, flush, close.

        Idempotent.  State machine (DESIGN.md §15): (1) the gate stops
        admitting — new queries get ``AdmissionRejected(reason=
        "draining")``; (2) in-flight queries get ``drain_timeout_seconds``
        to finish; (3) stragglers are cancelled cooperatively via the
        shared shutdown event their guards poll; (4) telemetry flushes
        and stores close (the WAL is already durable per commit).
        """
        if self._closed:
            return
        self._closed = True
        if not self.gate.drain(timeout=self.drain_timeout_seconds):
            # Stragglers outlived the drain window: flip the shutdown
            # event their cancellation guards poll and wait once more.
            self._shutdown.set()
            self.gate.drain(timeout=self.drain_timeout_seconds)
        self._shutdown.set()
        metrics.get_registry().inc("serving.drained")
        if self._backend is not None:
            self._backend.close()
        if self._cache is not None:
            self._cache.close()
        if self.slowlog is not None:
            self.slowlog.close()
        session = current_session()
        if session is not None:
            session.flush()
        if self.storage is not None:
            self.provenance.save(self._provenance_path())
            self.storage.close()
        else:
            self.db.close()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM to a graceful drain (call from the main thread).

        The handler runs :meth:`close` — stop admitting, drain or cancel
        in-flight queries, flush telemetry — then re-raises the default
        exit via :class:`SystemExit`.
        """

        def _terminate(signum: int, _frame: Any) -> None:
            self.close()
            raise SystemExit(128 + signum)

        signal.signal(signal.SIGTERM, _terminate)

    def _provenance_path(self) -> str:
        assert self.workspace is not None
        return os.path.join(self.workspace, "provenance.json")

    def _load_provenance(self) -> ProvenanceGraph:
        if self.workspace is not None:
            path = self._provenance_path()
            if os.path.exists(path):
                return ProvenanceGraph.load(path)
        return ProvenanceGraph()
