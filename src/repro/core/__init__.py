"""The end-to-end system — the paper's primary contribution (Figure 1).

:class:`StructureManagementSystem` wires every layer together:

* physical — optional simulated cluster for extraction waves;
* storage — snapshot store (raw), record files (intermediate), mini-RDBMS
  (final structure + user contributions);
* processing — the xlog IE+II+HI language with optimizer, the semantic
  debugger screening generated facts, uncertainty + provenance recording;
* user — keyword search over pages *and* facts, SQL, keyword→structured
  query guidance, exploration sessions, accounts/reputation.

:class:`IncrementalExtractionManager` implements the DGE model's
"incremental, best-effort" generation: extract only the attributes users
have demanded so far, extending on demand (experiment E4).
"""

from repro.core.system import GenerationReport, StructureManagementSystem
from repro.core.incremental import IncrementalExtractionManager

__all__ = [
    "StructureManagementSystem",
    "GenerationReport",
    "IncrementalExtractionManager",
]
