"""Streaming DGE: the connected incremental loop as a long-running pipeline.

Corpus delta (snapshot-store / corpus diffs) -> incremental extraction
(content-addressed cache) -> incremental entity resolution
(:class:`~repro.integration.entity_resolution.IncrementalEntityResolver`)
-> fusion under retraction
(:class:`~repro.integration.fusion.FusionState`) -> delta-driven
continuous-query push (fused rows are upserted into an RDBMS table, whose
commit delta stream drives the
:class:`~repro.userlayer.monitoring.ContinuousQueryManager`).

Every stage's cost follows the *delta*, not the corpus: a changed document
re-extracts one document, re-scores only pairs in its blocking-key
neighborhoods, re-fuses only the (entity, attribute) groups its mentions
touch, and re-evaluates standing queries against the changed fused rows
only.  :meth:`StreamingPipeline.process` runs the stages synchronously;
:meth:`StreamingPipeline.start` wires them over bounded queues with
backpressure (a producer faster than the consumer blocks in
:meth:`~StreamingPipeline.submit` — deltas are never dropped and memory
stays bounded), cooperative cancellation via
:class:`~repro.errors.CancellationToken`, and dead-letter capture for
poison documents.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

from repro.cache.fingerprint import extractor_fingerprint
from repro.cache.store import ExtractionCache, document_key
from repro.docmodel.document import Document
from repro.errors import CancellationToken
from repro.extraction.base import Extraction, Extractor
from repro.faults.deadletter import DeadLetterEntry, DeadLetterStore
from repro.integration.entity_resolution import (
    EntityCluster,
    EntityResolver,
    IncrementalEntityResolver,
    MatchConstraints,
    Mention,
)
from repro.integration.fusion import (
    FusedValue,
    FusionState,
    canonical_extraction_sort_key,
    fuse_extractions,
)
from repro.lang.executor import extraction_to_tuple, tuple_to_extraction
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.types import Column, ColumnType, TableSchema
from repro.storage.snapshots import SnapshotStore
from repro.telemetry import metrics

FUSED_TABLE = "fused_facts"

#: Queue sentinel telling a stage thread to exit.
_STOP = object()


@dataclass(frozen=True)
class DocDelta:
    """One corpus delta batch: the unit of work flowing down the pipeline."""

    added: tuple[Document, ...] = ()
    changed: tuple[Document, ...] = ()
    removed: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.added) + len(self.changed) + len(self.removed)

    def doc_ids(self) -> list[str]:
        return ([d.doc_id for d in self.added]
                + [d.doc_id for d in self.changed]
                + list(self.removed))


class CorpusDeltaSource:
    """Turns successive corpus states into :class:`DocDelta` batches.

    Tracks each document's *content hash* rather than its snapshot
    version — the snapshot store commits a new version on every re-ingest
    even when the text is unchanged, so version numbers overstate churn.
    """

    def __init__(self) -> None:
        self._hashes: dict[str, str] = {}

    def diff(self, docs: Iterable[Document]) -> DocDelta:
        """Delta from the last observed state to ``docs`` (the full view)."""
        added: list[Document] = []
        changed: list[Document] = []
        present: set[str] = set()
        for doc in sorted(docs, key=lambda d: d.doc_id):
            present.add(doc.doc_id)
            digest = doc.content_hash()
            old = self._hashes.get(doc.doc_id)
            if old is None:
                added.append(doc)
            elif old != digest:
                changed.append(doc)
            self._hashes[doc.doc_id] = digest
        removed = sorted(set(self._hashes) - present)
        for doc_id in removed:
            del self._hashes[doc_id]
        return DocDelta(tuple(added), tuple(changed), tuple(removed))

    def diff_store(self, store: SnapshotStore) -> DocDelta:
        """Delta against the latest version of every document in ``store``."""
        return self.diff(store.checkout(doc_id) for doc_id in store.doc_ids())

    def state(self) -> dict[str, str]:
        """Serializable tracked state (doc id -> content hash)."""
        return dict(self._hashes)

    def restore(self, state: dict[str, str]) -> None:
        """Resume from a previously saved :meth:`state` snapshot."""
        self._hashes = dict(state)


@dataclass(frozen=True)
class _ExtractedDelta:
    """Stage-1 output: per-document extraction results for one delta."""

    added: tuple[tuple[str, tuple[Extraction, ...]], ...] = ()
    changed: tuple[tuple[str, tuple[Extraction, ...]], ...] = ()
    removed: tuple[str, ...] = ()


@dataclass
class PipelineStats:
    """Cumulative work counters (mirrored into ``dge.*`` metrics)."""

    deltas_in: int = 0
    docs_in: int = 0
    pairs_scored: int = 0
    clusters_split: int = 0
    fused_rows_written: int = 0
    docs_deadlettered: int = 0
    max_queue_depth: int = 0


class StreamingPipeline:
    """The connected incremental DGE loop over one database.

    Args:
        db: database receiving fused rows (its delta stream feeds any
            registered continuous queries).
        extractors: named extractors run per document.
        resolver: entity-resolver configuration (thresholds, blocking).
        constraints: shared must/cannot-link state (HI feedback).
        strategy: fusion strategy for conflicting values.
        cache: optional content-addressed extraction cache; re-ingesting
            an unchanged document costs a lookup, not a scan.
        deadletter: where poison documents (extractor crashes) go.
        token: cooperative cancellation for the stage threads.
        queue_size: bound of each inter-stage queue (the backpressure
            knob): a full queue blocks the upstream stage.
        fused_table: table receiving one row per fused (entity, attribute).
    """

    def __init__(
        self,
        db: Database,
        extractors: dict[str, Extractor],
        *,
        resolver: EntityResolver | None = None,
        constraints: MatchConstraints | None = None,
        strategy: str = "weighted_vote",
        cache: ExtractionCache | None = None,
        deadletter: DeadLetterStore | None = None,
        token: CancellationToken | None = None,
        queue_size: int = 64,
        fused_table: str = FUSED_TABLE,
    ) -> None:
        self.db = db
        self.extractors = dict(extractors)
        self.resolver = IncrementalEntityResolver(
            resolver if resolver is not None else EntityResolver(),
            constraints)
        self.fusion = FusionState(strategy)
        self.cache = cache
        self.deadletter = deadletter
        self.token = token
        self.queue_size = queue_size
        self.fused_table = fused_table
        self.stats = PipelineStats()
        self._ensure_table()
        #: doc_id -> mention ids currently live for that document.
        self._doc_mentions: dict[str, tuple[int, ...]] = {}
        #: mention id -> raw (untagged) extractions backing it.
        self._raw: dict[int, tuple[Extraction, ...]] = {}
        #: mention id -> canonical-entity-tagged extractions now in fusion.
        self._tagged: dict[int, tuple[Extraction, ...]] = {}
        #: mention id -> canonical entity last pushed to fusion.
        self._canon: dict[int, str] = {}
        #: (entity, attribute) -> rid of its fused row in ``fused_table``.
        self._rids: dict[tuple[str, str], int] = {}
        self._next_mention_id = 0
        self._lock = threading.RLock()
        self._threads: list[threading.Thread] = []
        self._queues: list[queue.Queue] = []

    # ------------------------------------------------------------ plumbing

    def _ensure_table(self) -> None:
        if self.fused_table in self.db.table_names():
            # A fresh pipeline owns the table's contents: its in-memory
            # derived state starts empty, so stale rows from an earlier
            # process would otherwise double up once deltas flow.
            def clear(txn: Any) -> None:
                for row in list(txn.scan(self.fused_table)):
                    txn.delete(self.fused_table, row.rid)
            self.db.run(clear)
            return
        self.db.create_table(TableSchema(self.fused_table, (
            Column("entity", ColumnType.TEXT),
            Column("attribute", ColumnType.TEXT),
            Column("value_text", ColumnType.TEXT),
            Column("value_num", ColumnType.FLOAT),
            Column("confidence", ColumnType.FLOAT),
            Column("support", ColumnType.INT),
            Column("conflict", ColumnType.INT),
        )))

    def _check_cancelled(self) -> None:
        if self.token is not None:
            self.token.check()

    def _dead_letter(self, doc_id: str, stage: str, exc: Exception) -> None:
        self.stats.docs_deadlettered += 1
        metrics.get_registry().inc("dge.docs_deadlettered")
        if self.deadletter is not None:
            self.deadletter.add(DeadLetterEntry(
                doc_id=doc_id, extractor=stage, error=str(exc),
                error_type=type(exc).__name__, attempts=1,
            ))

    # ------------------------------------------------------ stage 1: extract

    def _extract_doc(self, doc: Document) -> tuple[Extraction, ...] | None:
        """All extractors over one document, through the cache.

        Returns None when every extractor failed outright (the document is
        dead-lettered and drops out of the derived state).
        """
        out: list[Extraction] = []
        produced = False
        for name in sorted(self.extractors):
            extractor = self.extractors[name]
            rows = None
            if self.cache is not None:
                fingerprint = extractor_fingerprint(extractor)
                rows = self.cache.get(document_key(doc), fingerprint)
            if rows is not None:
                out.extend(tuple_to_extraction(r) for r in rows)
                produced = True
                continue
            try:
                extractions = extractor.extract(doc)
            except Exception as exc:
                self._dead_letter(doc.doc_id, name, exc)
                continue
            produced = True
            if self.cache is not None:
                self.cache.put(document_key(doc), extractor_fingerprint(extractor),
                               [extraction_to_tuple(e) for e in extractions])
            out.extend(extractions)
        if not produced and self.extractors:
            return None
        # Entity-less extractions belong to the document itself — the same
        # fallback the xlog executor applies before resolution.
        return tuple(
            e if e.entity else replace(e, entity=e.span.doc_id) for e in out)

    def _extract(self, delta: DocDelta) -> _ExtractedDelta:
        self.stats.deltas_in += 1
        registry = metrics.get_registry()
        registry.inc("dge.deltas_in")
        added: list[tuple[str, tuple[Extraction, ...]]] = []
        changed: list[tuple[str, tuple[Extraction, ...]]] = []
        removed = list(delta.removed)
        for doc, bucket in [(d, added) for d in delta.added] \
                + [(d, changed) for d in delta.changed]:
            self._check_cancelled()
            self.stats.docs_in += 1
            registry.inc("dge.docs_in")
            extractions = self._extract_doc(doc)
            if extractions is None:
                # Poison document: excise it from the derived state.
                if doc.doc_id in self._doc_mentions:
                    removed.append(doc.doc_id)
                continue
            bucket.append((doc.doc_id, extractions))
        return _ExtractedDelta(tuple(added), tuple(changed), tuple(removed))

    # --------------------------------------------- stage 2: resolve + fuse

    def _build_mentions(
        self, doc_id: str, extractions: tuple[Extraction, ...],
    ) -> list[tuple[Mention, tuple[Extraction, ...]]]:
        """Group one document's extractions into mentions.

        One mention per distinct raw entity string; its attributes are the
        first value per attribute in canonical extraction order (a
        deterministic function of the extraction set, so an unchanged
        document always rebuilds the same mention shape).
        """
        ordered = sorted(extractions, key=canonical_extraction_sort_key)
        by_entity: dict[str, list[Extraction]] = {}
        for extraction in ordered:
            by_entity.setdefault(extraction.entity, []).append(extraction)
        out: list[tuple[Mention, tuple[Extraction, ...]]] = []
        for entity in sorted(by_entity):
            members = by_entity[entity]
            attrs: dict[str, Any] = {}
            for extraction in members:
                attrs.setdefault(extraction.attribute, extraction.value)
            with self._lock:
                mention_id = self._next_mention_id
                self._next_mention_id += 1
            mention = Mention(mention_id, entity,
                              tuple(sorted(attrs.items())))
            out.append((mention, tuple(members)))
        return out

    def _integrate(self, extracted: _ExtractedDelta) -> dict[
            tuple[str, str], FusedValue | None]:
        registry = metrics.get_registry()
        # Retract mentions of departed/changed documents from ER + fusion.
        gone_ids: list[int] = []
        for doc_id in (*extracted.removed,
                       *(d for d, _ in extracted.changed)):
            for mention_id in self._doc_mentions.pop(doc_id, ()):
                gone_ids.append(mention_id)
        for mention_id in gone_ids:
            tagged = self._tagged.pop(mention_id, ())
            if tagged:
                self.fusion.retract(tagged)
            self._raw.pop(mention_id, None)
            self._canon.pop(mention_id, None)
        # Build mentions for incoming documents (fresh ids).
        new_mentions: list[Mention] = []
        for doc_id, extractions in (*extracted.added, *extracted.changed):
            self._check_cancelled()
            built = self._build_mentions(doc_id, extractions)
            self._doc_mentions[doc_id] = tuple(m.mention_id for m, _ in built)
            for mention, members in built:
                self._raw[mention.mention_id] = members
                new_mentions.append(mention)
        # One incremental resolution for the whole batch.
        stats = self.resolver.apply(added=new_mentions, removed=gone_ids)
        self.stats.pairs_scored += stats.pairs_scored
        self.stats.clusters_split += stats.clusters_split
        registry.inc("dge.pairs_scored", stats.pairs_scored)
        registry.inc("dge.clusters_split", stats.clusters_split)
        # Re-tag extractions whose canonical entity moved, then re-fuse.
        dirty = self.resolver.last_dirty | {m.mention_id for m in new_mentions}
        for mention_id in sorted(dirty):
            if mention_id not in self._raw:
                continue
            canonical = self.resolver.canonical_of(mention_id)
            if self._canon.get(mention_id) == canonical:
                continue
            old_tagged = self._tagged.get(mention_id, ())
            if old_tagged:
                self.fusion.retract(old_tagged)
            tagged = tuple(replace(e, entity=canonical)
                           for e in self._raw[mention_id])
            self.fusion.add(tagged)
            self._tagged[mention_id] = tagged
            self._canon[mention_id] = canonical
        return self.fusion.refresh()

    # --------------------------------------------------- stage 3: push

    def _push(self, changed: dict[tuple[str, str], FusedValue | None]) -> int:
        """Upsert changed fused values; one transaction per batch.

        The commit's row delta is what drives registered continuous
        queries — the pipeline never calls ``poke()``.
        """
        if not changed:
            return 0
        new_rids: dict[tuple[str, str], int] = {}

        def write(txn: Any) -> None:
            new_rids.clear()
            for key in sorted(changed):
                fused = changed[key]
                rid = self._rids.get(key)
                if rid is not None:
                    txn.delete(self.fused_table, rid)
                if fused is not None:
                    value = fused.value
                    numeric = (isinstance(value, (int, float))
                               and not isinstance(value, bool))
                    row = txn.insert(self.fused_table, {
                        "entity": fused.entity,
                        "attribute": fused.attribute,
                        "value_text": None if numeric else str(value),
                        "value_num": float(value) if numeric else None,
                        "confidence": fused.confidence,
                        "support": fused.support,
                        "conflict": fused.conflict,
                    })
                    new_rids[key] = row.rid

        self.db.run(write)
        for key in changed:
            self._rids.pop(key, None)
        self._rids.update(new_rids)
        written = len(changed)
        self.stats.fused_rows_written += written
        metrics.get_registry().inc("dge.fused_rows_written", written)
        return written

    # ------------------------------------------------------- synchronous API

    def process(self, delta: DocDelta) -> int:
        """Run one delta through all stages synchronously.

        Returns the number of fused rows written.  This is the unit the
        threaded mode pipelines; benches and tests drive it directly for
        per-batch identity checks.
        """
        with self._lock:
            return self._push(self._integrate(self._extract(delta)))

    def add_must(self, a: int, b: int) -> int:
        """HI feedback: must-link two mentions; propagates through fusion."""
        return self._constraint(self.resolver.add_must, a, b)

    def add_cannot(self, a: int, b: int) -> int:
        """HI feedback: cannot-link two mentions; propagates through fusion."""
        return self._constraint(self.resolver.add_cannot, a, b)

    def _constraint(self, op: Any, a: int, b: int) -> int:
        with self._lock:
            stats = op(a, b)
            self.stats.clusters_split += stats.clusters_split
            for mention_id in sorted(self.resolver.last_dirty):
                if mention_id not in self._raw:
                    continue
                canonical = self.resolver.canonical_of(mention_id)
                if self._canon.get(mention_id) == canonical:
                    continue
                old_tagged = self._tagged.get(mention_id, ())
                if old_tagged:
                    self.fusion.retract(old_tagged)
                tagged = tuple(replace(e, entity=canonical)
                               for e in self._raw[mention_id])
                self.fusion.add(tagged)
                self._tagged[mention_id] = tagged
                self._canon[mention_id] = canonical
            return self._push(self.fusion.refresh())

    # ---------------------------------------------------------- threaded API

    def start(self) -> None:
        """Start the stage threads (extract | integrate+push) over bounded
        queues.  Submit work with :meth:`submit`; stop with :meth:`stop`."""
        if self._threads:
            raise RuntimeError("pipeline already started")
        in_q: queue.Queue = queue.Queue(self.queue_size)
        mid_q: queue.Queue = queue.Queue(self.queue_size)
        self._queues = [in_q, mid_q]

        def run_stage(source: queue.Queue, work: Any) -> None:
            while True:
                item = source.get()
                try:
                    if item is _STOP:
                        return
                    work(item)
                except Exception:
                    metrics.get_registry().inc("dge.stage_errors")
                finally:
                    source.task_done()

        def extract_stage(delta: DocDelta) -> None:
            extracted = self._extract(delta)
            self._observe_depth(mid_q)
            mid_q.put(extracted)

        def integrate_stage(extracted: _ExtractedDelta) -> None:
            with self._lock:
                self._push(self._integrate(extracted))

        self._threads = [
            threading.Thread(target=run_stage, args=(in_q, extract_stage),
                             name="dge-extract", daemon=True),
            threading.Thread(target=run_stage, args=(mid_q, integrate_stage),
                             name="dge-integrate", daemon=True),
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, delta: DocDelta) -> None:
        """Enqueue a delta; blocks when the pipeline is saturated
        (backpressure — deltas are never dropped)."""
        if not self._threads:
            raise RuntimeError("pipeline not started")
        self._observe_depth(self._queues[0])
        self._queues[0].put(delta)

    def drain(self) -> None:
        """Block until every submitted delta has fully flowed through."""
        for q in self._queues:
            q.join()

    def stop(self) -> None:
        """Drain, then stop the stage threads."""
        if not self._threads:
            return
        self.drain()
        for q, thread in zip(self._queues, self._threads):
            q.put(_STOP)
            thread.join()
        self._threads = []
        self._queues = []

    def _observe_depth(self, q: queue.Queue) -> None:
        depth = q.qsize()
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        metrics.get_registry().set_gauge("dge.queue_depth", depth)

    # ------------------------------------------------------------- oracles

    def oracle_clusters(self) -> list[EntityCluster]:
        """Batch re-resolution of the live mention set (identity gate)."""
        batch = EntityResolver(
            threshold=self.resolver.resolver.threshold,
            blocking_key=self.resolver.resolver.blocking_key,
            attribute_weight=self.resolver.resolver.attribute_weight,
            scorer=self.resolver.resolver.scorer,
        )
        return batch.resolve(self.resolver.mentions(),
                             self.resolver.constraints)

    def oracle_fused(self) -> list[FusedValue]:
        """From-scratch re-extraction-to-fusion over the live state."""
        canonical: dict[int, str] = {}
        for cluster in self.oracle_clusters():
            for mention_id in cluster.mention_ids:
                canonical[mention_id] = cluster.canonical_name
        tagged: list[Extraction] = []
        for mention_id, raw in self._raw.items():
            tagged.extend(replace(e, entity=canonical[mention_id])
                          for e in raw)
        tagged.sort(key=canonical_extraction_sort_key)
        return fuse_extractions(tagged, self.fusion.strategy)

    def fused_values(self) -> list[FusedValue]:
        """The incrementally-maintained fused values."""
        with self._lock:
            return self.fusion.fused()
