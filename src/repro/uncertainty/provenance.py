"""Provenance: the lineage graph behind every derived fact.

Figure 1's Part V "provides the provenance and explanation for the derived
structured data".  The graph has typed nodes — ``document``, ``span``,
``extraction``, ``operator``, ``fact`` (fused value / stored tuple),
``feedback`` (an HI decision) — and ``derived_from`` edges.  The
:meth:`ProvenanceGraph.explain` method renders the derivation tree of any
node, which is what the user layer shows when a user asks "why is this
value here?".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.docmodel.document import Span
from repro.extraction.base import Extraction


@dataclass(frozen=True)
class ProvenanceNode:
    """One node in the lineage graph."""

    node_id: str
    kind: str  # document | span | extraction | operator | fact | feedback
    label: str
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class Explanation:
    """A rendered derivation tree for one node."""

    node: ProvenanceNode
    sources: list["Explanation"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        """Human-readable multi-line rendering."""
        pad = "  " * indent
        lines = [f"{pad}[{self.node.kind}] {self.node.label}"]
        for source in self.sources:
            lines.append(source.render(indent + 1))
        return "\n".join(lines)

    def leaf_spans(self) -> list[ProvenanceNode]:
        """All span-kind leaves — the raw evidence for this node."""
        if not self.sources:
            return [self.node] if self.node.kind == "span" else []
        leaves: list[ProvenanceNode] = []
        for source in self.sources:
            leaves.extend(source.leaf_spans())
        if self.node.kind == "span":
            leaves.append(self.node)
        return leaves


class ProvenanceGraph:
    """Append-only DAG of derivations."""

    def __init__(self) -> None:
        self._nodes: dict[str, ProvenanceNode] = {}
        self._edges: dict[str, list[str]] = {}  # node -> its sources
        self._counter = 0

    # ----------------------------------------------------------- node adds

    def add_node(self, kind: str, label: str,
                 detail: dict[str, Any] | None = None,
                 node_id: str | None = None) -> ProvenanceNode:
        """Add (or fetch, when the id exists with same kind) a node."""
        if node_id is None:
            self._counter += 1
            node_id = f"{kind}:{self._counter}"
        existing = self._nodes.get(node_id)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"node {node_id} already exists with kind {existing.kind!r}"
                )
            return existing
        node = ProvenanceNode(node_id, kind, label, detail or {})
        self._nodes[node_id] = node
        self._edges.setdefault(node_id, [])
        return node

    def add_edge(self, node_id: str, source_id: str) -> None:
        """Record that ``node_id`` was derived from ``source_id``.

        Raises:
            KeyError: unknown node.
            ValueError: the edge would create a cycle.
        """
        if node_id not in self._nodes or source_id not in self._nodes:
            raise KeyError("both nodes must exist before adding an edge")
        if node_id == source_id or self._reachable(source_id, node_id):
            raise ValueError(f"edge {node_id} -> {source_id} would create a cycle")
        self._edges[node_id].append(source_id)

    # -------------------------------------------------- high-level helpers

    def record_span(self, span: Span) -> ProvenanceNode:
        """Register a source span (and its document) as evidence nodes."""
        doc_node = self.add_node("document", span.doc_id,
                                 node_id=f"document:{span.doc_id}")
        span_id = f"span:{span.doc_id}:{span.start}:{span.end}"
        span_node = self.add_node(
            "span", f"{span.doc_id}[{span.start}:{span.end}] {span.text[:40]!r}",
            detail={"doc_id": span.doc_id, "start": span.start, "end": span.end},
            node_id=span_id,
        )
        if doc_node.node_id not in self._edges[span_node.node_id]:
            self.add_edge(span_node.node_id, doc_node.node_id)
        return span_node

    def record_extraction(self, extraction: Extraction) -> ProvenanceNode:
        """Register an extraction, its operator, and its source span."""
        span_node = self.record_span(extraction.span)
        op_node = self.add_node("operator", extraction.extractor or "extractor",
                                node_id=f"operator:{extraction.extractor}")
        node = self.add_node(
            "extraction",
            f"{extraction.entity or '?'}.{extraction.attribute} = "
            f"{extraction.value!r} (conf {extraction.confidence:.2f})",
            detail={"confidence": extraction.confidence},
        )
        self.add_edge(node.node_id, span_node.node_id)
        self.add_edge(node.node_id, op_node.node_id)
        return node

    def record_fact(self, entity: str, attribute: str, value: Any,
                    confidence: float,
                    sources: list[ProvenanceNode]) -> ProvenanceNode:
        """Register a fused/stored fact derived from earlier nodes."""
        node = self.add_node(
            "fact",
            f"{entity}.{attribute} = {value!r} (conf {confidence:.2f})",
            detail={"entity": entity, "attribute": attribute,
                    "value": value, "confidence": confidence},
        )
        for source in sources:
            self.add_edge(node.node_id, source.node_id)
        return node

    def record_feedback(self, description: str,
                        applied_to: ProvenanceNode) -> ProvenanceNode:
        """Register an HI decision that shaped a derived node."""
        node = self.add_node("feedback", description)
        self.add_edge(applied_to.node_id, node.node_id)
        return node

    # -------------------------------------------------------------- queries

    def node(self, node_id: str) -> ProvenanceNode:
        return self._nodes[node_id]

    def sources_of(self, node_id: str) -> list[ProvenanceNode]:
        return [self._nodes[s] for s in self._edges.get(node_id, ())]

    def explain(self, node_id: str, max_depth: int = 10) -> Explanation:
        """Derivation tree of a node, depth-limited.

        Raises:
            KeyError: unknown node.
        """
        node = self._nodes[node_id]
        if max_depth <= 0:
            return Explanation(node)
        return Explanation(
            node,
            [self.explain(s, max_depth - 1) for s in self._edges.get(node_id, ())],
        )

    def facts(self) -> Iterator[ProvenanceNode]:
        for node in self._nodes.values():
            if node.kind == "fact":
                yield node

    def find_facts(self, entity: str | None = None,
                   attribute: str | None = None) -> list[ProvenanceNode]:
        out = []
        for node in self.facts():
            if entity is not None and node.detail.get("entity") != entity:
                continue
            if attribute is not None and node.detail.get("attribute") != attribute:
                continue
            out.append(node)
        return out

    def __len__(self) -> int:
        return len(self._nodes)

    # ---------------------------------------------------------- durability

    def save(self, path: str) -> None:
        """Persist the graph as JSON (the storage layer keeps derived
        data's lineage alongside the data itself)."""
        payload = {
            "counter": self._counter,
            "nodes": [
                {"id": n.node_id, "kind": n.kind, "label": n.label,
                 "detail": n.detail}
                for n in self._nodes.values()
            ],
            "edges": {k: v for k, v in self._edges.items() if v},
        }
        with open(path, "w", encoding="utf-8") as f:
            json.dump(payload, f)

    @staticmethod
    def load(path: str) -> "ProvenanceGraph":
        """Rebuild a graph saved by :meth:`save`."""
        graph = ProvenanceGraph()
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
        graph._counter = payload["counter"]
        for node in payload["nodes"]:
            graph._nodes[node["id"]] = ProvenanceNode(
                node["id"], node["kind"], node["label"], node["detail"]
            )
            graph._edges.setdefault(node["id"], [])
        for node_id, sources in payload["edges"].items():
            graph._edges[node_id] = list(sources)
        return graph

    def _reachable(self, start: str, target: str) -> bool:
        stack = [start]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current == target:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._edges.get(current, ()))
        return False
