"""Uncertainty management and provenance — Figure 1, Part V.

IE, II, and HI are all imperfect, so every derived fact carries a
confidence; this subpackage gives that confidence algebra (combinators,
thresholds, possible-worlds semantics for small fact sets) and the lineage
graph that lets the system *explain* any derived value by tracing back
through operators to source spans.
"""

from repro.uncertainty.probabilistic import (
    ProbabilisticValue,
    combine_independent_and,
    combine_noisy_or,
    expected_value,
    possible_worlds,
)
from repro.uncertainty.provenance import (
    ProvenanceGraph,
    ProvenanceNode,
    Explanation,
)

__all__ = [
    "ProbabilisticValue",
    "combine_independent_and",
    "combine_noisy_or",
    "expected_value",
    "possible_worlds",
    "ProvenanceGraph",
    "ProvenanceNode",
    "Explanation",
]
