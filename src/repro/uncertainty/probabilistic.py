"""Probabilistic values and the confidence algebra.

A :class:`ProbabilisticValue` is a discrete distribution over mutually
exclusive alternatives for one fact (an x-tuple in U-relation terms), with
an implicit "none of these" residual when the probabilities sum below 1.
Combinators implement the standard independence assumptions used when
propagating confidence through derivations: AND for conjunctive derivation
steps, noisy-OR for corroborating independent evidence.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Sequence


@dataclass(frozen=True)
class ProbabilisticValue:
    """A discrete distribution over alternatives for one fact.

    Attributes:
        alternatives: (value, probability) pairs; probabilities are > 0 and
            sum to at most 1 (the residual is "no value").
    """

    alternatives: tuple[tuple[Any, float], ...]

    def __post_init__(self) -> None:
        total = 0.0
        for value, prob in self.alternatives:
            if prob <= 0.0 or prob > 1.0:
                raise ValueError(f"probability {prob} for {value!r} outside (0, 1]")
            total += prob
        if total > 1.0 + 1e-9:
            raise ValueError(f"alternative probabilities sum to {total} > 1")

    @staticmethod
    def certain(value: Any) -> "ProbabilisticValue":
        return ProbabilisticValue(((value, 1.0),))

    @staticmethod
    def from_confidences(pairs: Sequence[tuple[Any, float]]) -> "ProbabilisticValue":
        """Build from raw (value, confidence) pairs, normalizing only when
        the confidences over-commit (sum > 1)."""
        total = sum(c for _, c in pairs)
        if total > 1.0:
            pairs = [(v, c / total) for v, c in pairs]
        return ProbabilisticValue(tuple((v, c) for v, c in pairs if c > 0))

    def most_likely(self) -> tuple[Any, float]:
        """(value, probability) of the mode.

        Raises:
            ValueError: empty distribution.
        """
        if not self.alternatives:
            raise ValueError("empty distribution")
        return max(self.alternatives, key=lambda vp: vp[1])

    def probability_of(self, value: Any) -> float:
        for v, p in self.alternatives:
            if v == value:
                return p
        return 0.0

    def residual(self) -> float:
        """Probability that no listed alternative is the truth."""
        return max(0.0, 1.0 - sum(p for _, p in self.alternatives))

    def threshold(self, minimum: float) -> "ProbabilisticValue":
        """Drop alternatives below ``minimum`` probability."""
        return ProbabilisticValue(
            tuple((v, p) for v, p in self.alternatives if p >= minimum)
        )

    def map_values(self, fn) -> "ProbabilisticValue":
        """Apply ``fn`` to every alternative value, merging collisions."""
        merged: dict[Any, float] = {}
        for value, prob in self.alternatives:
            new_value = fn(value)
            merged[new_value] = merged.get(new_value, 0.0) + prob
        return ProbabilisticValue(tuple(merged.items()))


def combine_independent_and(*confidences: float) -> float:
    """P(all hold) under independence: the product."""
    result = 1.0
    for c in confidences:
        if not 0.0 <= c <= 1.0:
            raise ValueError(f"confidence {c} outside [0, 1]")
        result *= c
    return result


def combine_noisy_or(*confidences: float) -> float:
    """P(at least one independent witness is right): 1 - prod(1 - c).

    Used when several independent extractions corroborate one fact.
    """
    result = 1.0
    for c in confidences:
        if not 0.0 <= c <= 1.0:
            raise ValueError(f"confidence {c} outside [0, 1]")
        result *= 1.0 - c
    return 1.0 - result


def expected_value(dist: ProbabilisticValue) -> float:
    """Expectation of a numeric distribution (residual mass ignored).

    Raises:
        ValueError: non-numeric alternatives or empty distribution.
    """
    if not dist.alternatives:
        raise ValueError("empty distribution")
    total_p = sum(p for _, p in dist.alternatives)
    acc = 0.0
    for value, prob in dist.alternatives:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"non-numeric alternative {value!r}")
        acc += float(value) * prob
    return acc / total_p


def possible_worlds(
    facts: Sequence[tuple[str, ProbabilisticValue]],
) -> Iterator[tuple[dict[str, Any], float]]:
    """Enumerate possible worlds of independent uncertain facts.

    Each fact is (name, distribution); a world assigns one alternative (or
    None, with residual probability) to every fact.  Yields (assignment,
    world probability) with probability > 0.  Exponential in the number of
    facts — intended for explanation and testing on small sets.
    """
    choice_lists: list[list[tuple[Any, float]]] = []
    for _, dist in facts:
        choices = list(dist.alternatives)
        residual = dist.residual()
        if residual > 1e-12:
            choices.append((None, residual))
        choice_lists.append(choices)
    names = [name for name, _ in facts]
    for combo in itertools.product(*choice_lists):
        prob = 1.0
        assignment: dict[str, Any] = {}
        for name, (value, p) in zip(names, combo):
            prob *= p
            assignment[name] = value
        if prob > 0.0:
            yield assignment, prob
