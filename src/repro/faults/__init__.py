"""Fault injection, retry policies, and poison-document quarantine.

The physical layer of the paper's architecture is explicitly
best-effort — extraction is computation-intensive and partial failure is
the normal case.  This package holds the three shared primitives that
let the rest of the stack bend instead of break:

* :class:`FaultInjector` — deterministic, seedable fault source for
  tests and benchmarks (error / crash / slow / corrupt modes);
* :class:`RetryPolicy` — exponential backoff with deterministic jitter
  and optional deadlines, used by backends, the executor, and mapreduce;
* :class:`DeadLetterStore` — persistent quarantine for documents that
  still fail after the retry budget.
"""

from repro.faults.deadletter import DeadLetterEntry, DeadLetterStore
from repro.faults.injector import FaultInjector, FaultyExtractor, InjectedFault
from repro.faults.retry import DEFAULT_RETRY, RetryPolicy

__all__ = [
    "DEFAULT_RETRY",
    "DeadLetterEntry",
    "DeadLetterStore",
    "FaultInjector",
    "FaultyExtractor",
    "InjectedFault",
    "RetryPolicy",
]
