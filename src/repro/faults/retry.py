"""Retry with exponential backoff, deterministic jitter, and deadlines.

The paper's physical layer is best-effort *by design* — "IE is computation
intensive", so partial failure is the normal case, not the exceptional
one.  :class:`RetryPolicy` is the one retry vocabulary every layer shares:
execution backends resubmit crashed or failed task chunks under it, the
executor re-attempts extraction on a poison document before quarantining
it, and Map-Reduce waves re-run under it when a pool dies mid-wave.

Jitter is *deterministic*: the backoff factor for attempt ``k`` is derived
from ``crc32(salt:k)``, not from a live RNG, so two runs of the same
workload sleep the same schedule and the determinism contract (identical
output bytes across serial/thread/process backends) extends to the fault
path.  Every performed retry bumps the ``tasks.retried`` counter in the
ambient metrics registry.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.telemetry import metrics


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-attempt a task, and how long to wait between.

    Attributes:
        max_attempts: total attempts (first try included); ``1`` disables
            retrying entirely.
        base_delay: backoff before the first retry, in seconds.
        max_delay: backoff ceiling, in seconds.
        multiplier: exponential growth factor per retry.
        jitter: fraction of the raw delay added as deterministic jitter
            (``0.25`` means up to +25%, derived from ``crc32``, never a
            live RNG).
        deadline: optional per-task wall-clock budget in seconds; a retry
            whose backoff would overrun the deadline is not attempted and
            the last error is raised instead.
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    max_delay: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.25
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")

    def delay_for(self, attempt: int, salt: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered.

        Deterministic: the same (attempt, salt) pair always yields the
        same delay, so retried runs remain reproducible.
        """
        raw = min(self.base_delay * self.multiplier ** (attempt - 1),
                  self.max_delay)
        frac = (zlib.crc32(f"{salt}:{attempt}".encode("utf-8")) % 1000) / 1000
        return raw * (1.0 + self.jitter * frac)

    def run(self, fn: Callable[[], Any], salt: str = "",
            retry_on: tuple[type[BaseException], ...] = (Exception,),
            sleep: Callable[[float], None] = time.sleep) -> Any:
        """Call ``fn`` until it succeeds or the budget is exhausted.

        Args:
            fn: zero-argument callable (close over task arguments).
            salt: stirred into the jitter so distinct tasks don't sleep in
                lockstep; use a task/document id.
            retry_on: exception types worth retrying; anything else
                propagates immediately.
            sleep: injectable for tests.

        Raises:
            The last exception, once ``max_attempts`` or ``deadline`` is
            exhausted.
        """
        started = time.monotonic()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on:
                if attempt >= self.max_attempts:
                    raise
                delay = self.delay_for(attempt, salt)
                if self.deadline is not None \
                        and time.monotonic() - started + delay > self.deadline:
                    raise
                metrics.get_registry().inc("tasks.retried")
                sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


#: Shared default for task execution: three quick attempts, capped backoff.
DEFAULT_RETRY = RetryPolicy()
