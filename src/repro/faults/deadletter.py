"""Persistent dead-letter store for poison documents.

A document whose extraction still fails after the retry budget is
*quarantined* rather than allowed to fail the whole ``generate()`` run:
the executor emits a poison marker, the system appends a
:class:`DeadLetterEntry` here, and the run completes for every other
document.  The store is a single JSONL file under the workspace
(``<workspace>/deadletter/entries.jsonl``) so quarantined documents
survive process restarts and can be inspected / re-driven later via
``repro deadletter list|retry|clear``.

The reader uses the same tolerant tail-scan contract as the WAL: a
truncated final line (crash mid-append) is dropped silently instead of
poisoning the poison store.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Iterable

from repro.telemetry import metrics

_FILENAME = "entries.jsonl"


@dataclass
class DeadLetterEntry:
    """One quarantined document."""

    doc_id: str
    extractor: str
    error: str
    error_type: str = ""
    attempts: int = 1

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "DeadLetterEntry":
        payload = json.loads(line)
        return cls(
            doc_id=payload["doc_id"],
            extractor=payload.get("extractor", ""),
            error=payload.get("error", ""),
            error_type=payload.get("error_type", ""),
            attempts=int(payload.get("attempts", 1)),
        )


@dataclass
class DeadLetterStore:
    """Append-only quarantine log, persistent when given a directory.

    Args:
        root: directory for the JSONL file; ``None`` keeps entries in
            memory only (workspace-less systems still get quarantine,
            just not across restarts).
    """

    root: str | None = None
    _memory: list[DeadLetterEntry] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.root is not None:
            os.makedirs(self.root, exist_ok=True)

    @property
    def _path(self) -> str | None:
        if self.root is None:
            return None
        return os.path.join(self.root, _FILENAME)

    # --------------------------------------------------------------- writes

    def add(self, entry: DeadLetterEntry) -> None:
        self.add_many([entry])

    def add_many(self, entries: Iterable[DeadLetterEntry]) -> None:
        entries = list(entries)
        if not entries:
            return
        path = self._path
        if path is None:
            self._memory.extend(entries)
        else:
            with open(path, "a", encoding="utf-8") as f:
                for entry in entries:
                    f.write(entry.to_json() + "\n")
                f.flush()
                os.fsync(f.fileno())
        registry = metrics.get_registry()
        registry.inc("deadletter.quarantined", len(entries))
        registry.set_gauge("deadletter.size", float(len(self.entries())))

    def clear(self) -> int:
        """Drop all entries; returns how many were dropped."""
        count = len(self.entries())
        if self._path is None:
            self._memory.clear()
        elif os.path.exists(self._path):
            os.remove(self._path)
        metrics.get_registry().set_gauge("deadletter.size", 0.0)
        return count

    def remove(self, doc_ids: Iterable[str]) -> int:
        """Drop entries for ``doc_ids`` (used after a successful retry)."""
        drop = set(doc_ids)
        kept = [e for e in self.entries() if e.doc_id not in drop]
        removed = len(self.entries()) - len(kept)
        if removed:
            if self._path is None:
                self._memory = kept
            else:
                tmp = self._path + ".tmp"
                with open(tmp, "w", encoding="utf-8") as f:
                    for entry in kept:
                        f.write(entry.to_json() + "\n")
                    f.flush()
                    os.fsync(f.fileno())
                os.replace(tmp, self._path)
            metrics.get_registry().set_gauge("deadletter.size", float(len(kept)))
        return removed

    # ---------------------------------------------------------------- reads

    def entries(self) -> list[DeadLetterEntry]:
        path = self._path
        if path is None:
            return list(self._memory)
        if not os.path.exists(path):
            return []
        out: list[DeadLetterEntry] = []
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(DeadLetterEntry.from_json(line))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    # Torn final append during a crash; drop it.
                    continue
        return out

    def doc_ids(self) -> list[str]:
        return [entry.doc_id for entry in self.entries()]

    def __len__(self) -> int:
        return len(self.entries())
