"""Deterministic, seedable fault injection.

Tests and benchmarks plug a :class:`FaultInjector` into extraction
payloads, execution backends, or file stores to exercise the
fault-tolerance machinery without any nondeterminism: whether a given
document faults — and whether it keeps faulting on retry — is a pure
function of ``(seed, key)``, so a faulty run is reproducible across
serial, thread, and process backends, and the set of documents that end
up quarantined can be predicted exactly (E18's acceptance gate).

Modes:

* ``error`` — raise :class:`InjectedFault` (an ordinary exception; the
  executor's per-document retry/quarantine path handles it);
* ``crash`` — ``os._exit(1)`` the current process (kills a pool worker;
  the backend's broken-pool rebuild/resubmission path handles it);
* ``slow`` — sleep ``delay`` seconds (exercises deadlines/stragglers);
* ``corrupt`` — no-op on :meth:`check`; use :meth:`corrupt` to
  deterministically flip a byte of data on its way to disk.

Fault selection composes two triggers: *per-key* (a ``crc32``-hashed
fraction ``rate`` of keys fault, of which ``persistent_share`` fault on
every attempt and the rest only on their first ``fail_attempts``
attempts) and *per-call* (``every_n`` faults every Nth ``check()``, the
classic raise-on-Nth-call harness).  Per-key attempt counts live in
memory; give a ``state_dir`` to persist them on disk, which is what makes
*transient* worker crashes work — the count survives the process the
fault just killed.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from typing import Iterable

from repro.docmodel.document import Document
from repro.extraction.base import Extraction, Extractor
from repro.telemetry import metrics

_MODES = ("error", "crash", "slow", "corrupt")


class InjectedFault(RuntimeError):
    """The exception raised by ``error``-mode injection."""


class FaultInjector:
    """Deterministic fault source (see module docstring).

    Args:
        mode: ``error`` / ``crash`` / ``slow`` / ``corrupt``.
        rate: fraction of keys that fault, selected by seeded hash.
        keys: explicit fault keys (unioned with ``rate`` selection).
        persistent_share: fraction of *faulting* keys that fault on every
            attempt (these are the poison documents quarantine catches).
        fail_attempts: how many attempts a *transient* faulting key fails
            before succeeding.
        every_n: additionally fault every Nth :meth:`check` call (0 = off).
        delay: sleep seconds for ``slow`` mode.
        seed: hash seed; same seed, same faults.
        state_dir: directory for per-key attempt counts; required for
            transient ``crash`` faults to heal across process boundaries.
    """

    def __init__(self, mode: str = "error", rate: float = 0.0,
                 keys: Iterable[str] = (), persistent_share: float = 0.0,
                 fail_attempts: int = 1, every_n: int = 0,
                 delay: float = 0.0, seed: int = 0,
                 state_dir: str | None = None) -> None:
        if mode not in _MODES:
            raise ValueError(f"unknown fault mode {mode!r}; one of {_MODES}")
        if not 0.0 <= rate <= 1.0 or not 0.0 <= persistent_share <= 1.0:
            raise ValueError("rate and persistent_share must be in [0, 1]")
        self.mode = mode
        self.rate = rate
        self.keys = frozenset(keys)
        self.persistent_share = persistent_share
        self.fail_attempts = fail_attempts
        self.every_n = every_n
        self.delay = delay
        self.seed = seed
        self.state_dir = state_dir
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
        self.injected = 0
        self._calls = 0
        self._attempts: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- selection

    def _score(self, salt: str, key: str) -> float:
        token = f"{self.seed}:{salt}:{key}".encode("utf-8")
        return (zlib.crc32(token) % 100_000) / 100_000

    def selects(self, key: str) -> bool:
        """Would this key ever fault?  Pure function of (seed, key)."""
        if key in self.keys:
            return True
        return bool(self.rate) and self._score("fault", key) < self.rate

    def is_persistent(self, key: str) -> bool:
        """Does this key fault on *every* attempt (poison document)?"""
        return self.selects(key) \
            and self._score("persist", key) < self.persistent_share

    def faulted_keys(self, keys: Iterable[str]) -> set[str]:
        """Subset of ``keys`` that fault at least once."""
        return {k for k in keys if self.selects(k)}

    def persistent_keys(self, keys: Iterable[str]) -> set[str]:
        """Subset of ``keys`` that fault on every attempt."""
        return {k for k in keys if self.is_persistent(k)}

    # ------------------------------------------------------------- injection

    def check(self, key: str = "") -> None:
        """Maybe inject a fault for ``key`` (call at the top of a payload).

        Raises:
            InjectedFault: ``error`` mode decided to fault.
        """
        with self._lock:
            self._calls += 1
            calls = self._calls
        trigger = bool(self.every_n) and calls % self.every_n == 0
        if not trigger and key and self.selects(key):
            if self.is_persistent(key):
                trigger = True
            else:
                trigger = self._next_attempt(key) <= self.fail_attempts
        if not trigger:
            return
        self.injected += 1
        registry = metrics.get_registry()
        registry.inc("faults.injected")
        registry.inc(f"faults.injected.{self.mode}")
        if self.mode == "slow":
            time.sleep(self.delay)
            return
        if self.mode == "crash":
            os._exit(1)
        if self.mode == "error":
            raise InjectedFault(
                f"injected fault for key {key!r} (seed {self.seed})"
            )
        # corrupt mode faults data, not control flow — check() is a no-op.

    def corrupt(self, data: bytes, key: str = "") -> bytes:
        """Deterministically flip one byte of ``data`` (any mode)."""
        if not data:
            return data
        position = zlib.crc32(
            f"{self.seed}:corrupt:{key}".encode("utf-8")
        ) % len(data)
        mutated = bytearray(data)
        mutated[position] ^= 0xFF
        return bytes(mutated)

    # ------------------------------------------------------------- internals

    def _next_attempt(self, key: str) -> int:
        """Increment and return this key's attempt count (1-based).

        With a ``state_dir`` the count is durable — it survives the very
        process a ``crash`` fault is about to kill, which is what lets a
        transient crash succeed when the rebuilt pool retries it.
        """
        if self.state_dir is None:
            with self._lock:
                count = self._attempts.get(key, 0) + 1
                self._attempts[key] = count
            return count
        path = os.path.join(
            self.state_dir, f"{zlib.crc32(key.encode('utf-8')):08x}.attempts"
        )
        try:
            with open(path, "r", encoding="utf-8") as f:
                count = int(f.read().strip() or 0) + 1
        except (FileNotFoundError, ValueError):
            count = 1
        with open(path, "w", encoding="utf-8") as f:
            f.write(str(count))
            f.flush()
            os.fsync(f.fileno())
        return count

    # ---------------------------------------------------------- pickling etc

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # stable: feeds extractor fingerprints
        return (f"FaultInjector(mode={self.mode!r}, rate={self.rate}, "
                f"keys={sorted(self.keys)}, "
                f"persistent_share={self.persistent_share}, "
                f"fail_attempts={self.fail_attempts}, "
                f"every_n={self.every_n}, seed={self.seed})")


class FaultyExtractor(Extractor):
    """Wraps an extractor with a fault-injection checkpoint per document.

    Picklable as long as the inner extractor is (all shipped extractors
    are), so it runs unchanged on thread and process backends.
    """

    def __init__(self, inner: Extractor, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector
        self.name = f"faulty:{inner.name}"

    @property
    def cost_per_char(self) -> float:  # type: ignore[override]
        return self.inner.cost_per_char

    @property
    def version(self) -> int:  # type: ignore[override]
        return self.inner.version

    def prefilter_terms(self) -> list[list[str]] | None:
        return self.inner.prefilter_terms()

    def extract(self, doc: Document) -> list[Extraction]:
        self.injector.check(doc.doc_id)
        return self.inner.extract(doc)
