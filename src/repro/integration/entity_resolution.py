"""Entity resolution: deciding which mentions denote the same real entity.

Pipeline: *blocking* (group mentions by a cheap key so only within-block
pairs are scored), *pairwise scoring* (name similarity plus optional
attribute agreement), and *clustering* (union-find transitive closure over
pairs above threshold).  Human feedback enters as must-link / cannot-link
constraints (:class:`MatchConstraints`) which override scores — the II+HI
combination the DGE model calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

from repro.integration.similarity import name_similarity


@dataclass(frozen=True)
class Mention:
    """One entity mention: a surface name plus optional attributes."""

    mention_id: int
    name: str
    attributes: tuple[tuple[str, Any], ...] = ()

    def attr_dict(self) -> dict[str, Any]:
        return dict(self.attributes)


@dataclass(frozen=True)
class MentionPair:
    """A scored candidate pair."""

    left: int
    right: int
    score: float


@dataclass
class MatchConstraints:
    """HI feedback: pairs that must or must not co-refer.

    Constraint pairs are stored order-normalized.
    """

    must_link: set[tuple[int, int]] = field(default_factory=set)
    cannot_link: set[tuple[int, int]] = field(default_factory=set)

    def add_must(self, a: int, b: int) -> None:
        self.must_link.add(_norm(a, b))
        self.cannot_link.discard(_norm(a, b))

    def add_cannot(self, a: int, b: int) -> None:
        self.cannot_link.add(_norm(a, b))
        self.must_link.discard(_norm(a, b))

    def __len__(self) -> int:
        return len(self.must_link) + len(self.cannot_link)


def _norm(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class EntityCluster:
    """One resolved entity: member mention IDs and a canonical name."""

    cluster_id: int
    mention_ids: tuple[int, ...]
    canonical_name: str


class _UnionFind:
    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._rank = [0] * n

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1


def default_blocking_key(mention: Mention) -> Hashable:
    """Default blocking: first letter of the surname.

    Handles both "First Last" and "Last, First" orders (the surname is the
    token before the comma when one is present).  Catches
    "David Smith" / "D. Smith" / "Smith, David" — all block on ``s`` —
    while keeping blocks small.
    """
    name = mention.name
    if "," in name:
        surname = name.split(",", 1)[0].strip()
    else:
        tokens = [t for t in name.split() if t]
        surname = tokens[-1] if tokens else ""
    return surname[:1].lower()


@dataclass
class EntityResolver:
    """Blocking + scoring + transitive clustering entity resolver.

    Args:
        threshold: pair score at/above which two mentions are linked.
        blocking_key: mention → block key; ``None`` disables blocking
            (all-pairs scoring — the ablation in experiment E2's harness).
        attribute_weight: how much agreeing/conflicting shared attributes
            shift the name score (agreement adds, conflict subtracts).
        scorer: override the pairwise scoring function entirely.
    """

    threshold: float = 0.82
    blocking_key: Callable[[Mention], Hashable] | None = default_blocking_key
    attribute_weight: float = 0.1
    scorer: Callable[[Mention, Mention], float] | None = None

    def score_pair(self, a: Mention, b: Mention) -> float:
        """Pairwise co-reference score in [0, 1]."""
        return self._score_with_attrs(a, b, a.attr_dict(), b.attr_dict())

    def _score_with_attrs(
        self, a: Mention, b: Mention,
        attrs_a: dict[str, Any], attrs_b: dict[str, Any],
    ) -> float:
        """Score with pre-materialized attribute dicts.

        The O(pairs) scoring loops (batch and incremental) materialize each
        mention's attribute dict once and pass it here, instead of paying
        two ``attr_dict()`` constructions per scored pair.  Shared keys are
        visited in sorted order — with score clamping the fold is not
        commutative, so set iteration order would make scores
        hash-seed-dependent.
        """
        if self.scorer is not None:
            return self.scorer(a, b)
        score = name_similarity(a.name, b.name)
        shared = set(attrs_a) & set(attrs_b)
        for key in sorted(shared):
            if attrs_a[key] == attrs_b[key]:
                score = min(1.0, score + self.attribute_weight)
            else:
                score = max(0.0, score - self.attribute_weight)
        return score

    def candidate_pairs(self, mentions: Sequence[Mention]) -> list[MentionPair]:
        """Scored within-block pairs (all pairs when blocking is off).

        Sorted by descending score with the order-normalized id pair as a
        tie break, so equal-score merges happen in one canonical order —
        required for the incremental resolver's localized re-clustering to
        reproduce batch output exactly under cannot-link constraints.
        """
        pairs: list[MentionPair] = []
        if self.blocking_key is None:
            blocks: dict[Hashable, list[Mention]] = {"": list(mentions)}
        else:
            blocks = {}
            for mention in mentions:
                blocks.setdefault(self.blocking_key(mention), []).append(mention)
        for members in blocks.values():
            attrs = [m.attr_dict() for m in members]
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    score = self._score_with_attrs(
                        members[i], members[j], attrs[i], attrs[j])
                    pairs.append(
                        MentionPair(members[i].mention_id,
                                    members[j].mention_id, score)
                    )
        pairs.sort(key=lambda p: (-p.score, _norm(p.left, p.right)))
        return pairs

    def resolve(
        self,
        mentions: Sequence[Mention],
        constraints: MatchConstraints | None = None,
    ) -> list[EntityCluster]:
        """Cluster mentions into entities.

        Constraints override scores (constrained clustering): must-link
        pairs are merged first; a score-driven merge is *skipped entirely*
        when the union would bring any cannot-link pair into one cluster —
        so human "not the same" answers sever transitive bridges, which is
        precisely how HI feedback repairs over-merging.
        """
        constraints = constraints or MatchConstraints()
        index_of = {m.mention_id: i for i, m in enumerate(mentions)}
        uf = _UnionFind(len(mentions))
        cannot_indexed = [
            (index_of[a], index_of[b])
            for a, b in constraints.cannot_link
            if a in index_of and b in index_of
        ]

        def would_violate(i: int, j: int) -> bool:
            ri, rj = uf.find(i), uf.find(j)
            if ri == rj:
                return False
            for a, b in cannot_indexed:
                ra, rb = uf.find(a), uf.find(b)
                if {ra, rb} == {ri, rj}:
                    return True
            return False

        for a, b in constraints.must_link:
            if a in index_of and b in index_of:
                uf.union(index_of[a], index_of[b])
        for pair in self.candidate_pairs(mentions):
            key = _norm(pair.left, pair.right)
            if key in constraints.must_link:
                continue  # already merged
            if pair.score < self.threshold:
                continue
            i, j = index_of[pair.left], index_of[pair.right]
            if key in constraints.cannot_link or would_violate(i, j):
                continue
            uf.union(i, j)
        groups: dict[int, list[Mention]] = {}
        for mention in mentions:
            groups.setdefault(uf.find(index_of[mention.mention_id]), []).append(mention)
        clusters: list[EntityCluster] = []
        for cluster_id, members in enumerate(
            sorted(groups.values(), key=lambda ms: min(m.mention_id for m in ms))
        ):
            canonical = max(members, key=lambda m: (len(m.name), m.name)).name
            clusters.append(
                EntityCluster(
                    cluster_id=cluster_id,
                    mention_ids=tuple(sorted(m.mention_id for m in members)),
                    canonical_name=canonical,
                )
            )
        return clusters

    def uncertain_pairs(self, mentions: Sequence[Mention],
                        band: float = 0.15, limit: int | None = None) -> list[MentionPair]:
        """Pairs near the threshold — the most informative HI questions.

        Returns pairs with ``|score - threshold| <= band``, most uncertain
        first; these are what the system routes to the human task queue.
        """
        pairs = [
            p for p in self.candidate_pairs(mentions)
            if abs(p.score - self.threshold) <= band
        ]
        pairs.sort(key=lambda p: (abs(p.score - self.threshold),
                                  _norm(p.left, p.right)))
        return pairs[:limit] if limit is not None else pairs


@dataclass(frozen=True)
class DeltaResolveStats:
    """What one incremental delta application cost and changed."""

    pairs_scored: int = 0
    dirty_mentions: int = 0
    clusters_rebuilt: int = 0
    clusters_split: int = 0


class IncrementalEntityResolver:
    """Persistent-state entity resolution with O(delta) updates.

    Maintains the blocking index, the scored-pair set, and the cluster
    partition across calls.  :meth:`apply` takes a document delta
    (added / changed / removed mentions) and

    1. re-scores only the pairs inside the touched blocks (a new or
       changed mention scores against its block co-members; nothing else
       is rescored),
    2. re-clusters only the affected connected components — the transitive
       closure, over score-above-threshold and must-link edges, of every
       mention whose pairs or constraints changed, in both the old and the
       new link graph (the old-graph closure is what makes *splits* exact:
       when a removed mention or edge disconnects a component, every
       stranded member is re-closed locally).

    Exactness argument: batch :meth:`EntityResolver.resolve` processes all
    candidate pairs in one canonical order (descending score, then the
    normalized id pair), and a merge of mentions *i, j* can only be vetoed
    by a cannot-link pair whose two endpoints already share a cluster with
    *i* or *j* — i.e. lie inside the same link-graph components.  Merges
    therefore never interact across component boundaries, so replaying the
    canonical order restricted to a union of whole components yields
    exactly the batch partition of those components.  ``clusters()`` is
    byte-identical to ``EntityResolver.resolve`` over the same live
    mentions and constraints.
    """

    def __init__(self, resolver: EntityResolver | None = None,
                 constraints: MatchConstraints | None = None) -> None:
        self.resolver = resolver if resolver is not None else EntityResolver()
        self.constraints = constraints if constraints is not None else MatchConstraints()
        self._mentions: dict[int, Mention] = {}
        self._attrs: dict[int, dict[str, Any]] = {}
        self._blocks: dict[Hashable, set[int]] = {}
        self._block_of: dict[int, Hashable] = {}
        #: All scored within-block pairs, keyed order-normalized.
        self._scores: dict[tuple[int, int], float] = {}
        #: Link graph: score >= threshold edges plus must-link edges.
        self._adj: dict[int, set[int]] = {}
        #: Constraint indexes (mention id -> peers), mirrors ``constraints``.
        self._must_of: dict[int, set[int]] = {}
        self._cannot_of: dict[int, set[int]] = {}
        for a, b in self.constraints.must_link:
            self._must_of.setdefault(a, set()).add(b)
            self._must_of.setdefault(b, set()).add(a)
        for a, b in self.constraints.cannot_link:
            self._cannot_of.setdefault(a, set()).add(b)
            self._cannot_of.setdefault(b, set()).add(a)
        #: Cluster partition: mention -> representative (min member id),
        #: representative -> members / cached canonical name.
        self._cluster_of: dict[int, int] = {}
        self._members: dict[int, set[int]] = {}
        self._canonical: dict[int, str] = {}
        #: Cumulative pair-scoring work (the E24 O(delta) gate reads this).
        self.total_pairs_scored = 0
        #: Mentions whose clusters the last apply/constraint call rebuilt —
        #: the set downstream fusion must re-tag canonical entities for.
        self.last_dirty: frozenset[int] = frozenset()

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._mentions)

    def mentions(self) -> list[Mention]:
        """Live mentions, ordered by mention id (the oracle's input)."""
        return [self._mentions[mid] for mid in sorted(self._mentions)]

    def canonical_of(self, mention_id: int) -> str:
        """Canonical entity name of the cluster holding ``mention_id``."""
        return self._canonical[self._cluster_of[mention_id]]

    def clusters(self) -> list[EntityCluster]:
        """Current partition, identical to a from-scratch ``resolve``."""
        out: list[EntityCluster] = []
        for cluster_id, rep in enumerate(sorted(self._members)):
            out.append(EntityCluster(
                cluster_id=cluster_id,
                mention_ids=tuple(sorted(self._members[rep])),
                canonical_name=self._canonical[rep],
            ))
        return out

    # ------------------------------------------------------------- deltas

    def apply(self, added: Sequence[Mention] = (),
              changed: Sequence[Mention] = (),
              removed: Sequence[int] = ()) -> DeltaResolveStats:
        """Apply one mention delta; returns per-call work stats.

        ``changed`` mentions replace the live mention with the same id
        (the blocking key may change); ``removed`` ids must be live.
        """
        touched = ({m.mention_id for m in changed} | set(removed))
        touched &= set(self._mentions)
        # Old-graph closure first: a removal can split a component, and
        # the stranded remainder is only reachable through the old edges.
        old_dirty = self._closure(touched)
        for mid in sorted(touched):
            self._remove_mention(mid)
        pairs_scored = 0
        incoming = sorted((*added, *changed), key=lambda m: m.mention_id)
        for mention in incoming:
            pairs_scored += self._add_mention(mention)
        affected = ({m.mention_id for m in incoming} | old_dirty)
        affected &= set(self._mentions)
        dirty = self._closure(affected)
        splits = self._recluster(dirty, gone=touched)
        self.total_pairs_scored += pairs_scored
        return DeltaResolveStats(
            pairs_scored=pairs_scored,
            dirty_mentions=len(dirty),
            clusters_rebuilt=len({self._cluster_of[m] for m in dirty}),
            clusters_split=splits,
        )

    def add_must(self, a: int, b: int) -> DeltaResolveStats:
        """Record a must-link answer and re-close the affected components."""
        seed = self._closure({a, b} & set(self._mentions))
        self.constraints.add_must(a, b)
        self._cannot_of.get(a, set()).discard(b)
        self._cannot_of.get(b, set()).discard(a)
        self._must_of.setdefault(a, set()).add(b)
        self._must_of.setdefault(b, set()).add(a)
        if a in self._mentions and b in self._mentions:
            self._adj.setdefault(a, set()).add(b)
            self._adj.setdefault(b, set()).add(a)
        dirty = self._closure(seed | ({a, b} & set(self._mentions)))
        splits = self._recluster(dirty, gone=set())
        return DeltaResolveStats(dirty_mentions=len(dirty),
                                 clusters_split=splits)

    def add_cannot(self, a: int, b: int) -> DeltaResolveStats:
        """Record a cannot-link answer and re-close the affected components."""
        seed = self._closure({a, b} & set(self._mentions))
        had_must = _norm(a, b) in self.constraints.must_link
        self.constraints.add_cannot(a, b)
        self._must_of.get(a, set()).discard(b)
        self._must_of.get(b, set()).discard(a)
        self._cannot_of.setdefault(a, set()).add(b)
        self._cannot_of.setdefault(b, set()).add(a)
        if had_must and self._scores.get(_norm(a, b), -1.0) < self.resolver.threshold:
            self._adj.get(a, set()).discard(b)
            self._adj.get(b, set()).discard(a)
        dirty = self._closure(seed | ({a, b} & set(self._mentions)))
        splits = self._recluster(dirty, gone=set())
        return DeltaResolveStats(dirty_mentions=len(dirty),
                                 clusters_split=splits)

    # ------------------------------------------------------------ plumbing

    def _block_key(self, mention: Mention) -> Hashable:
        key_fn = self.resolver.blocking_key
        return key_fn(mention) if key_fn is not None else ""

    def _remove_mention(self, mid: int) -> None:
        block = self._block_of.pop(mid)
        members = self._blocks[block]
        members.discard(mid)
        if not members:
            del self._blocks[block]
        for other in members:
            self._scores.pop(_norm(mid, other), None)
        for neighbor in self._adj.pop(mid, ()):  # must edges too
            self._adj[neighbor].discard(mid)
        del self._mentions[mid]
        del self._attrs[mid]

    def _add_mention(self, mention: Mention) -> int:
        mid = mention.mention_id
        if mid in self._mentions:
            raise ValueError(f"mention {mid} already present")
        attrs = mention.attr_dict()
        block = self._block_key(mention)
        members = self._blocks.setdefault(block, set())
        threshold = self.resolver.threshold
        adj = self._adj.setdefault(mid, set())
        scored = 0
        for other in members:
            score = self.resolver._score_with_attrs(
                mention, self._mentions[other], attrs, self._attrs[other])
            self._scores[_norm(mid, other)] = score
            scored += 1
            if score >= threshold:
                adj.add(other)
                self._adj[other].add(mid)
        members.add(mid)
        self._block_of[mid] = block
        self._mentions[mid] = mention
        self._attrs[mid] = attrs
        for peer in self._must_of.get(mid, ()):
            if peer in self._mentions:
                adj.add(peer)
                self._adj[peer].add(mid)
        return scored

    def _closure(self, seed: set[int]) -> set[int]:
        """Transitive closure of ``seed`` over the current link graph."""
        out = set(seed)
        frontier = list(seed)
        while frontier:
            node = frontier.pop()
            for neighbor in self._adj.get(node, ()):
                if neighbor not in out:
                    out.add(neighbor)
                    frontier.append(neighbor)
        return out

    def _recluster(self, dirty: set[int], gone: set[int]) -> int:
        """Replay the canonical merge order restricted to ``dirty``.

        Drops every cluster that intersects ``dirty`` or a departed
        mention, re-runs the batch merge procedure over the dirty set
        only, and installs the resulting clusters.  Returns how many old
        clusters split into multiple new ones.
        """
        old_groups: list[set[int]] = []
        stale = {self._cluster_of[m] for m in dirty if m in self._cluster_of}
        stale |= {self._cluster_of[m] for m in gone if m in self._cluster_of}
        for rep in stale:
            group = self._members.pop(rep)
            old_groups.append(group)
            self._canonical.pop(rep, None)
            for member in group:
                self._cluster_of.pop(member, None)
        self.last_dirty = frozenset(dirty)
        if not dirty:
            return 0

        ids = sorted(dirty)
        index_of = {mid: i for i, mid in enumerate(ids)}
        uf = _UnionFind(len(ids))
        must = self.constraints.must_link
        cannot = self.constraints.cannot_link
        cannot_indexed = [
            (index_of[a], index_of[b]) for a, b in cannot
            if a in index_of and b in index_of
        ]

        def would_violate(i: int, j: int) -> bool:
            ri, rj = uf.find(i), uf.find(j)
            if ri == rj:
                return False
            for a, b in cannot_indexed:
                ra, rb = uf.find(a), uf.find(b)
                if {ra, rb} == {ri, rj}:
                    return True
            return False

        for a, b in must:
            if a in index_of and b in index_of:
                uf.union(index_of[a], index_of[b])
        threshold = self.resolver.threshold
        candidates = []
        for mid in ids:
            for neighbor in self._adj.get(mid, ()):
                if neighbor <= mid:
                    continue
                key = (mid, neighbor)
                score = self._scores.get(key)
                if score is not None and score >= threshold:
                    candidates.append((-score, key))
        candidates.sort()
        for _, key in candidates:
            if key in must:
                continue  # already merged
            i, j = index_of[key[0]], index_of[key[1]]
            if key in cannot or would_violate(i, j):
                continue
            uf.union(i, j)

        roots: dict[int, set[int]] = {}
        for mid in ids:
            roots.setdefault(uf.find(index_of[mid]), set()).add(mid)
        new_reps: dict[int, int] = {}
        for group in roots.values():
            rep = min(group)
            self._members[rep] = group
            best = max((self._mentions[m] for m in group),
                       key=lambda m: (len(m.name), m.name))
            self._canonical[rep] = best.name
            for member in group:
                self._cluster_of[member] = rep
                new_reps[member] = rep
        splits = 0
        for group in old_groups:
            survivors = {new_reps[m] for m in group if m in new_reps}
            if len(survivors) > 1:
                splits += 1
        return splits
