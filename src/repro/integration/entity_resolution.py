"""Entity resolution: deciding which mentions denote the same real entity.

Pipeline: *blocking* (group mentions by a cheap key so only within-block
pairs are scored), *pairwise scoring* (name similarity plus optional
attribute agreement), and *clustering* (union-find transitive closure over
pairs above threshold).  Human feedback enters as must-link / cannot-link
constraints (:class:`MatchConstraints`) which override scores — the II+HI
combination the DGE model calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

from repro.integration.similarity import name_similarity


@dataclass(frozen=True)
class Mention:
    """One entity mention: a surface name plus optional attributes."""

    mention_id: int
    name: str
    attributes: tuple[tuple[str, Any], ...] = ()

    def attr_dict(self) -> dict[str, Any]:
        return dict(self.attributes)


@dataclass(frozen=True)
class MentionPair:
    """A scored candidate pair."""

    left: int
    right: int
    score: float


@dataclass
class MatchConstraints:
    """HI feedback: pairs that must or must not co-refer.

    Constraint pairs are stored order-normalized.
    """

    must_link: set[tuple[int, int]] = field(default_factory=set)
    cannot_link: set[tuple[int, int]] = field(default_factory=set)

    def add_must(self, a: int, b: int) -> None:
        self.must_link.add(_norm(a, b))
        self.cannot_link.discard(_norm(a, b))

    def add_cannot(self, a: int, b: int) -> None:
        self.cannot_link.add(_norm(a, b))
        self.must_link.discard(_norm(a, b))

    def __len__(self) -> int:
        return len(self.must_link) + len(self.cannot_link)


def _norm(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class EntityCluster:
    """One resolved entity: member mention IDs and a canonical name."""

    cluster_id: int
    mention_ids: tuple[int, ...]
    canonical_name: str


class _UnionFind:
    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._rank = [0] * n

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1


def default_blocking_key(mention: Mention) -> Hashable:
    """Default blocking: first letter of the surname.

    Handles both "First Last" and "Last, First" orders (the surname is the
    token before the comma when one is present).  Catches
    "David Smith" / "D. Smith" / "Smith, David" — all block on ``s`` —
    while keeping blocks small.
    """
    name = mention.name
    if "," in name:
        surname = name.split(",", 1)[0].strip()
    else:
        tokens = [t for t in name.split() if t]
        surname = tokens[-1] if tokens else ""
    return surname[:1].lower()


@dataclass
class EntityResolver:
    """Blocking + scoring + transitive clustering entity resolver.

    Args:
        threshold: pair score at/above which two mentions are linked.
        blocking_key: mention → block key; ``None`` disables blocking
            (all-pairs scoring — the ablation in experiment E2's harness).
        attribute_weight: how much agreeing/conflicting shared attributes
            shift the name score (agreement adds, conflict subtracts).
        scorer: override the pairwise scoring function entirely.
    """

    threshold: float = 0.82
    blocking_key: Callable[[Mention], Hashable] | None = default_blocking_key
    attribute_weight: float = 0.1
    scorer: Callable[[Mention, Mention], float] | None = None

    def score_pair(self, a: Mention, b: Mention) -> float:
        """Pairwise co-reference score in [0, 1]."""
        if self.scorer is not None:
            return self.scorer(a, b)
        score = name_similarity(a.name, b.name)
        attrs_a, attrs_b = a.attr_dict(), b.attr_dict()
        shared = set(attrs_a) & set(attrs_b)
        for key in shared:
            if attrs_a[key] == attrs_b[key]:
                score = min(1.0, score + self.attribute_weight)
            else:
                score = max(0.0, score - self.attribute_weight)
        return score

    def candidate_pairs(self, mentions: Sequence[Mention]) -> list[MentionPair]:
        """Scored within-block pairs (all pairs when blocking is off)."""
        pairs: list[MentionPair] = []
        if self.blocking_key is None:
            blocks: dict[Hashable, list[Mention]] = {"": list(mentions)}
        else:
            blocks = {}
            for mention in mentions:
                blocks.setdefault(self.blocking_key(mention), []).append(mention)
        for members in blocks.values():
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    score = self.score_pair(members[i], members[j])
                    pairs.append(
                        MentionPair(members[i].mention_id,
                                    members[j].mention_id, score)
                    )
        pairs.sort(key=lambda p: -p.score)
        return pairs

    def resolve(
        self,
        mentions: Sequence[Mention],
        constraints: MatchConstraints | None = None,
    ) -> list[EntityCluster]:
        """Cluster mentions into entities.

        Constraints override scores (constrained clustering): must-link
        pairs are merged first; a score-driven merge is *skipped entirely*
        when the union would bring any cannot-link pair into one cluster —
        so human "not the same" answers sever transitive bridges, which is
        precisely how HI feedback repairs over-merging.
        """
        constraints = constraints or MatchConstraints()
        index_of = {m.mention_id: i for i, m in enumerate(mentions)}
        uf = _UnionFind(len(mentions))
        cannot_indexed = [
            (index_of[a], index_of[b])
            for a, b in constraints.cannot_link
            if a in index_of and b in index_of
        ]

        def would_violate(i: int, j: int) -> bool:
            ri, rj = uf.find(i), uf.find(j)
            if ri == rj:
                return False
            for a, b in cannot_indexed:
                ra, rb = uf.find(a), uf.find(b)
                if {ra, rb} == {ri, rj}:
                    return True
            return False

        for a, b in constraints.must_link:
            if a in index_of and b in index_of:
                uf.union(index_of[a], index_of[b])
        for pair in self.candidate_pairs(mentions):
            key = _norm(pair.left, pair.right)
            if key in constraints.must_link:
                continue  # already merged
            if pair.score < self.threshold:
                continue
            i, j = index_of[pair.left], index_of[pair.right]
            if key in constraints.cannot_link or would_violate(i, j):
                continue
            uf.union(i, j)
        groups: dict[int, list[Mention]] = {}
        for mention in mentions:
            groups.setdefault(uf.find(index_of[mention.mention_id]), []).append(mention)
        clusters: list[EntityCluster] = []
        for cluster_id, members in enumerate(
            sorted(groups.values(), key=lambda ms: min(m.mention_id for m in ms))
        ):
            canonical = max(members, key=lambda m: (len(m.name), m.name)).name
            clusters.append(
                EntityCluster(
                    cluster_id=cluster_id,
                    mention_ids=tuple(sorted(m.mention_id for m in members)),
                    canonical_name=canonical,
                )
            )
        return clusters

    def uncertain_pairs(self, mentions: Sequence[Mention],
                        band: float = 0.15, limit: int | None = None) -> list[MentionPair]:
        """Pairs near the threshold — the most informative HI questions.

        Returns pairs with ``|score - threshold| <= band``, most uncertain
        first; these are what the system routes to the human task queue.
        """
        pairs = [
            p for p in self.candidate_pairs(mentions)
            if abs(p.score - self.threshold) <= band
        ]
        pairs.sort(key=lambda p: abs(p.score - self.threshold))
        return pairs[:limit] if limit is not None else pairs
