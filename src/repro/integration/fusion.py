"""Value fusion: resolving conflicting extractions.

After extraction and entity resolution, several extractions may claim
different values for the same (entity, attribute) — e.g. an infobox says a
temperature is 70 while a noisy free-text extractor read 7.  Fusion picks a
single value per (entity, attribute) and assigns it a fused confidence.

Strategies:

* ``max_confidence`` — take the highest-confidence extraction;
* ``weighted_vote`` — sum confidences per distinct value, take the winner;
* ``numeric_median`` — for numeric values, the confidence-weighted median
  (robust to single corrupted readings).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.docmodel.document import Span
from repro.extraction.base import Extraction

_STRATEGIES = ("max_confidence", "weighted_vote", "numeric_median")


@dataclass(frozen=True)
class FusedValue:
    """The fusion result for one (entity, attribute).

    Attributes:
        entity / attribute: the key.
        value: the chosen value.
        confidence: fused belief in the chosen value, in [0, 1].
        support: number of extractions agreeing with the chosen value.
        conflict: number of extractions disagreeing.
        spans: provenance spans of the supporting extractions.
    """

    entity: str
    attribute: str
    value: Any
    confidence: float
    support: int
    conflict: int
    spans: tuple[Span, ...]


def _weighted_median(pairs: list[tuple[float, float]]) -> float:
    """Median of values weighted by confidence; pairs are (value, weight)."""
    ordered = sorted(pairs)
    total = sum(w for _, w in ordered)
    acc = 0.0
    for value, weight in ordered:
        acc += weight
        if acc >= total / 2.0:
            return value
    return ordered[-1][0]


def canonical_extraction_sort_key(extraction: Extraction) -> tuple:
    """A deterministic total order over extractions.

    Fusion output depends on member order inside a group (max-confidence
    ties, vote ties, span tuples), so incremental maintenance and its
    from-scratch oracle must both feed members in one canonical order.
    """
    span = extraction.span
    return (
        extraction.entity,
        extraction.attribute,
        -extraction.confidence,
        span.doc_id, span.start, span.end,
        extraction.extractor,
        repr(extraction.value),
    )


def _fuse_group(entity: str, attribute: str, members: Sequence[Extraction],
                strategy: str) -> FusedValue:
    """Fuse one (entity, attribute) group; member order is significant."""
    if strategy == "max_confidence":
        chosen_value = max(members, key=lambda e: e.confidence).value
    elif strategy == "numeric_median" and all(
        isinstance(m.value, (int, float)) and not isinstance(m.value, bool)
        for m in members
    ):
        chosen_value = _weighted_median(
            [(float(m.value), m.confidence) for m in members]
        )
    else:
        votes: dict[Any, float] = {}
        for member in members:
            votes[member.value] = votes.get(member.value, 0.0) + member.confidence
        chosen_value = max(votes.items(), key=lambda kv: (kv[1], str(kv[0])))[0]
    supporters = [m for m in members if _agrees(m.value, chosen_value, strategy)]
    conflicters = len(members) - len(supporters)
    support_conf = sum(m.confidence for m in supporters)
    total_conf = sum(m.confidence for m in members)
    confidence = support_conf / total_conf if total_conf else 0.0
    # Independent agreeing sources increase belief beyond any single one.
    best_single = max((m.confidence for m in supporters), default=0.0)
    confidence = max(confidence * best_single + (1 - best_single) * confidence,
                     best_single * confidence)
    return FusedValue(
        entity=entity,
        attribute=attribute,
        value=chosen_value,
        confidence=min(confidence, 1.0),
        support=len(supporters),
        conflict=conflicters,
        spans=tuple(m.span for m in supporters),
    )


def fuse_extractions(extractions: Sequence[Extraction],
                     strategy: str = "weighted_vote") -> list[FusedValue]:
    """Fuse extractions into one value per (entity, attribute).

    Args:
        extractions: input extractions (any order).
        strategy: ``max_confidence`` | ``weighted_vote`` | ``numeric_median``.

    Raises:
        ValueError: unknown strategy.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown fusion strategy {strategy!r}")
    groups: dict[tuple[str, str], list[Extraction]] = {}
    for extraction in extractions:
        groups.setdefault((extraction.entity, extraction.attribute), []).append(
            extraction
        )
    return [
        _fuse_group(entity, attribute, members, strategy)
        for (entity, attribute), members in sorted(groups.items())
    ]


def _agrees(value: Any, chosen: Any, strategy: str) -> bool:
    if strategy == "numeric_median" and isinstance(value, (int, float)) and isinstance(
        chosen, (int, float)
    ):
        scale = max(abs(float(chosen)), 1.0)
        return abs(float(value) - float(chosen)) <= 0.05 * scale
    return value == chosen


@dataclass
class _GroupState:
    """Retractable per-group accumulators for one (entity, attribute).

    The exactly-invertible folds — member count, per-value vote counts,
    the confidence multiset backing max-confidence — update in place on
    add *and* retract (integer arithmetic, no drift).  The float folds
    (weighted vote sums, fused confidence) are **not** invertible under
    floating-point subtraction: retracting a confidence can leave the
    accumulator a few ULPs away from the value a fresh fold would
    produce, breaking byte-identity with the from-scratch oracle.  Those
    are rebuilt per dirty group from ``members`` in canonical order — the
    per-entity rebuild fallback, O(group size), not O(corpus).
    """

    members: Counter = field(default_factory=Counter)
    count: int = 0
    value_votes: Counter = field(default_factory=Counter)
    conf_multiset: Counter = field(default_factory=Counter)

    def add(self, extraction: Extraction) -> None:
        self.members[extraction] += 1
        self.count += 1
        self.value_votes[_value_key(extraction.value)] += 1
        self.conf_multiset[extraction.confidence] += 1

    def retract(self, extraction: Extraction) -> None:
        have = self.members.get(extraction, 0)
        if not have:
            raise KeyError(f"cannot retract absent extraction {extraction!r}")
        if have == 1:
            del self.members[extraction]
        else:
            self.members[extraction] = have - 1
        self.count -= 1
        vkey = _value_key(extraction.value)
        self.value_votes[vkey] -= 1
        if not self.value_votes[vkey]:
            del self.value_votes[vkey]
        self.conf_multiset[extraction.confidence] -= 1
        if not self.conf_multiset[extraction.confidence]:
            del self.conf_multiset[extraction.confidence]

    def max_confidence(self) -> float:
        return max(self.conf_multiset) if self.conf_multiset else 0.0

    def sorted_members(self) -> list[Extraction]:
        out: list[Extraction] = []
        for member, n in self.members.items():
            out.extend([member] * n)
        out.sort(key=canonical_extraction_sort_key)
        return out


def _value_key(value: Any) -> tuple[str, str]:
    return (type(value).__name__, repr(value))


class FusionState:
    """Fusion under retraction: fused values maintained across deltas.

    Holds the extraction multiset per (entity, attribute) group with
    retractable accumulators (:class:`_GroupState`), marks a group dirty
    on every add/retract, and on :meth:`refresh` re-fuses *only the dirty
    groups* — O(changed mentions), never O(corpus).  :meth:`fused` is
    byte-identical to ``fuse_extractions`` over the same live extractions
    fed in canonical order (``canonical_extraction_sort_key``).
    """

    def __init__(self, strategy: str = "weighted_vote") -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown fusion strategy {strategy!r}")
        self.strategy = strategy
        self._groups: dict[tuple[str, str], _GroupState] = {}
        self._fused: dict[tuple[str, str], FusedValue] = {}
        self._dirty: set[tuple[str, str]] = set()
        self.adds = 0
        self.retracts = 0
        self.groups_refreshed = 0

    def __len__(self) -> int:
        return sum(g.count for g in self._groups.values())

    def add(self, extractions: Iterable[Extraction]) -> None:
        """Fold new extractions in; their groups go dirty."""
        for extraction in extractions:
            key = (extraction.entity, extraction.attribute)
            self._groups.setdefault(key, _GroupState()).add(extraction)
            self._dirty.add(key)
            self.adds += 1

    def retract(self, extractions: Iterable[Extraction]) -> None:
        """Remove previously-added extractions; their groups go dirty.

        Raises:
            KeyError: an extraction was never added (or already retracted).
        """
        for extraction in extractions:
            key = (extraction.entity, extraction.attribute)
            group = self._groups.get(key)
            if group is None:
                raise KeyError(f"cannot retract from absent group {key!r}")
            group.retract(extraction)
            self._dirty.add(key)
            self.retracts += 1
            if not group.count:
                del self._groups[key]

    def refresh(self) -> dict[tuple[str, str], FusedValue | None]:
        """Re-fuse dirty groups; returns what changed.

        The result maps each group whose fused value changed to the new
        :class:`FusedValue`, or ``None`` when the group emptied out (its
        fused value is retracted downstream).
        """
        changed: dict[tuple[str, str], FusedValue | None] = {}
        for key in sorted(self._dirty):
            group = self._groups.get(key)
            if group is None or not group.count:
                if key in self._fused:
                    del self._fused[key]
                    changed[key] = None
                continue
            fresh = _fuse_group(key[0], key[1], group.sorted_members(),
                                self.strategy)
            self.groups_refreshed += 1
            if self._fused.get(key) != fresh:
                self._fused[key] = fresh
                changed[key] = fresh
        self._dirty.clear()
        return changed

    def fused(self) -> list[FusedValue]:
        """Current fused values, sorted by (entity, attribute).

        Implicitly refreshes so the view is never stale.
        """
        self.refresh()
        return [self._fused[key] for key in sorted(self._fused)]
