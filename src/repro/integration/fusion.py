"""Value fusion: resolving conflicting extractions.

After extraction and entity resolution, several extractions may claim
different values for the same (entity, attribute) — e.g. an infobox says a
temperature is 70 while a noisy free-text extractor read 7.  Fusion picks a
single value per (entity, attribute) and assigns it a fused confidence.

Strategies:

* ``max_confidence`` — take the highest-confidence extraction;
* ``weighted_vote`` — sum confidences per distinct value, take the winner;
* ``numeric_median`` — for numeric values, the confidence-weighted median
  (robust to single corrupted readings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.docmodel.document import Span
from repro.extraction.base import Extraction


@dataclass(frozen=True)
class FusedValue:
    """The fusion result for one (entity, attribute).

    Attributes:
        entity / attribute: the key.
        value: the chosen value.
        confidence: fused belief in the chosen value, in [0, 1].
        support: number of extractions agreeing with the chosen value.
        conflict: number of extractions disagreeing.
        spans: provenance spans of the supporting extractions.
    """

    entity: str
    attribute: str
    value: Any
    confidence: float
    support: int
    conflict: int
    spans: tuple[Span, ...]


def _weighted_median(pairs: list[tuple[float, float]]) -> float:
    """Median of values weighted by confidence; pairs are (value, weight)."""
    ordered = sorted(pairs)
    total = sum(w for _, w in ordered)
    acc = 0.0
    for value, weight in ordered:
        acc += weight
        if acc >= total / 2.0:
            return value
    return ordered[-1][0]


def fuse_extractions(extractions: Sequence[Extraction],
                     strategy: str = "weighted_vote") -> list[FusedValue]:
    """Fuse extractions into one value per (entity, attribute).

    Args:
        extractions: input extractions (any order).
        strategy: ``max_confidence`` | ``weighted_vote`` | ``numeric_median``.

    Raises:
        ValueError: unknown strategy.
    """
    if strategy not in ("max_confidence", "weighted_vote", "numeric_median"):
        raise ValueError(f"unknown fusion strategy {strategy!r}")
    groups: dict[tuple[str, str], list[Extraction]] = {}
    for extraction in extractions:
        groups.setdefault((extraction.entity, extraction.attribute), []).append(
            extraction
        )
    fused: list[FusedValue] = []
    for (entity, attribute), members in sorted(groups.items()):
        if strategy == "max_confidence":
            chosen_value = max(members, key=lambda e: e.confidence).value
        elif strategy == "numeric_median" and all(
            isinstance(m.value, (int, float)) and not isinstance(m.value, bool)
            for m in members
        ):
            chosen_value = _weighted_median(
                [(float(m.value), m.confidence) for m in members]
            )
        else:
            votes: dict[Any, float] = {}
            for member in members:
                votes[member.value] = votes.get(member.value, 0.0) + member.confidence
            chosen_value = max(votes.items(), key=lambda kv: (kv[1], str(kv[0])))[0]
        supporters = [m for m in members if _agrees(m.value, chosen_value, strategy)]
        conflicters = len(members) - len(supporters)
        support_conf = sum(m.confidence for m in supporters)
        total_conf = sum(m.confidence for m in members)
        confidence = support_conf / total_conf if total_conf else 0.0
        # Independent agreeing sources increase belief beyond any single one.
        best_single = max((m.confidence for m in supporters), default=0.0)
        confidence = max(confidence * best_single + (1 - best_single) * confidence,
                         best_single * confidence)
        fused.append(
            FusedValue(
                entity=entity,
                attribute=attribute,
                value=chosen_value,
                confidence=min(confidence, 1.0),
                support=len(supporters),
                conflict=conflicters,
                spans=tuple(m.span for m in supporters),
            )
        )
    return fused


def _agrees(value: Any, chosen: Any, strategy: str) -> bool:
    if strategy == "numeric_median" and isinstance(value, (int, float)) and isinstance(
        chosen, (int, float)
    ):
        scale = max(abs(float(chosen)), 1.0)
        return abs(float(value) - float(chosen)) <= 0.05 * scale
    return value == chosen
