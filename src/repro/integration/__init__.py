"""Information integration (II) — Figure 1, processing layer Part I.

Extracted structure is semantically heterogeneous: "David Smith" and
"D. Smith" may be one person; ``location`` and ``address`` may be one
attribute.  This subpackage resolves that heterogeneity:

* :mod:`repro.integration.similarity` — string/set similarity measures;
* :mod:`repro.integration.schema_matching` — attribute correspondences
  between extracted schemas (name + instance based);
* :mod:`repro.integration.entity_resolution` — blocking, pairwise scoring,
  and transitive clustering of entity mentions, with support for must-link
  / cannot-link constraints contributed by humans (HI);
* :mod:`repro.integration.fusion` — conflict resolution when multiple
  extractions disagree on one (entity, attribute).
"""

from repro.integration.similarity import (
    jaccard,
    jaro_winkler,
    levenshtein,
    name_similarity,
    token_cosine,
)
from repro.integration.schema_matching import AttributeMatch, SchemaMatcher
from repro.integration.entity_resolution import (
    EntityCluster,
    EntityResolver,
    MatchConstraints,
    Mention,
    MentionPair,
)
from repro.integration.fusion import FusedValue, fuse_extractions

__all__ = [
    "jaccard",
    "levenshtein",
    "jaro_winkler",
    "token_cosine",
    "name_similarity",
    "SchemaMatcher",
    "AttributeMatch",
    "EntityResolver",
    "EntityCluster",
    "Mention",
    "MentionPair",
    "MatchConstraints",
    "fuse_extractions",
    "FusedValue",
]
