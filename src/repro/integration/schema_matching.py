"""Schema matching: attribute correspondences between extracted schemas.

The paper's example: ``location`` extracted from one infobox and
``address`` from another may denote the same attribute.  The matcher scores
candidate attribute pairs by a weighted blend of

* *name similarity* (Jaro–Winkler over the attribute names, plus a
  synonym table for common cases), and
* *instance similarity* (how alike the observed value distributions are:
  type agreement, value overlap, and numeric-range overlap),

then returns correspondences above a threshold, optionally constrained to a
1:1 mapping by greedy stable selection.  Human feedback (HI) can pin or
forbid specific pairs before matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.integration.similarity import jaro_winkler

_DEFAULT_SYNONYMS: dict[frozenset[str], float] = {
    frozenset({"location", "address"}): 0.9,
    frozenset({"location", "place"}): 0.85,
    frozenset({"population", "pop"}): 0.95,
    frozenset({"temperature", "temp"}): 0.95,
    frozenset({"name", "title"}): 0.8,
    frozenset({"birth_date", "born"}): 0.85,
    frozenset({"employer", "affiliation"}): 0.8,
    frozenset({"phone", "telephone"}): 0.95,
}


def _abbreviation_token_similarity(tokens_a: list[str],
                                   tokens_b: list[str]) -> float:
    """Token-alignment similarity where an abbreviation matches its
    expansion: ``sep`` ~ ``september``, ``temp`` ~ ``temperature``.

    Greedy best-pair alignment; per-pair score is 1.0 for equality, 0.92
    for a prefix/abbreviation pair (at least 3 shared leading chars), else
    Jaro–Winkler if above 0.85.  The result is the mean aligned score over
    the longer token list, so ``august_temperature`` vs ``oct_temp`` scores
    far below ``august_temperature`` vs ``aug_temp``.
    """
    if not tokens_a or not tokens_b:
        return 1.0 if tokens_a == tokens_b else 0.0
    if len(tokens_a) > len(tokens_b):
        tokens_a, tokens_b = tokens_b, tokens_a
    used = [False] * len(tokens_b)
    total = 0.0
    for ta in tokens_a:
        best, best_j = 0.0, -1
        for j, tb in enumerate(tokens_b):
            if used[j]:
                continue
            if ta == tb:
                score = 1.0
            elif len(ta) >= 3 and tb.startswith(ta):
                score = 0.92
            elif len(tb) >= 3 and ta.startswith(tb):
                score = 0.92
            else:
                score = jaro_winkler(ta, tb)
                if score < 0.85:
                    score = 0.0
            if score > best:
                best, best_j = score, j
        if best_j >= 0:
            used[best_j] = True
            total += best
    return total / max(len(tokens_a), len(tokens_b))


@dataclass(frozen=True)
class AttributeMatch:
    """One proposed correspondence between two attributes."""

    left: str
    right: str
    score: float
    name_score: float
    instance_score: float


def _value_type(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    return "text"


def _instance_similarity(values_a: Sequence[Any], values_b: Sequence[Any]) -> float:
    """Similarity of two observed value samples, in [0, 1]."""
    if not values_a or not values_b:
        return 0.0
    types_a = {_value_type(v) for v in values_a}
    types_b = {_value_type(v) for v in values_b}
    if not types_a & types_b:
        return 0.0
    if types_a == {"number"} and types_b == {"number"}:
        nums_a = [float(v) for v in values_a]
        nums_b = [float(v) for v in values_b]
        lo = max(min(nums_a), min(nums_b))
        hi = min(max(nums_a), max(nums_b))
        span = max(max(nums_a), max(nums_b)) - min(min(nums_a), min(nums_b))
        if span <= 0:
            return 1.0 if nums_a[0] == nums_b[0] else 0.5
        overlap = max(0.0, hi - lo)
        return overlap / span
    set_a = {str(v).lower() for v in values_a}
    set_b = {str(v).lower() for v in values_b}
    inter = len(set_a & set_b)
    union = len(set_a | set_b)
    return inter / union if union else 0.0


@dataclass
class SchemaMatcher:
    """Weighted name+instance attribute matcher.

    Args:
        name_weight / instance_weight: blend weights (normalized at use).
        threshold: minimum blended score to report a correspondence.
        synonyms: extra (pair → score) name-similarity overrides.
        one_to_one: enforce an injective mapping greedily by score.
    """

    name_weight: float = 0.5
    instance_weight: float = 0.5
    threshold: float = 0.5
    synonyms: dict[frozenset[str], float] = field(
        default_factory=lambda: dict(_DEFAULT_SYNONYMS)
    )
    one_to_one: bool = True

    def match(
        self,
        left: dict[str, Sequence[Any]],
        right: dict[str, Sequence[Any]],
        must_match: set[tuple[str, str]] | None = None,
        cannot_match: set[tuple[str, str]] | None = None,
    ) -> list[AttributeMatch]:
        """Match two schemas given per-attribute value samples.

        Args:
            left / right: attribute → sample of observed values.
            must_match: HI-pinned pairs (always reported with score 1.0).
            cannot_match: HI-forbidden pairs (never reported).

        Returns:
            Correspondences sorted by descending score.
        """
        must_match = must_match or set()
        cannot_match = cannot_match or set()
        candidates: list[AttributeMatch] = []
        for attr_l, values_l in left.items():
            for attr_r, values_r in right.items():
                if (attr_l, attr_r) in cannot_match:
                    continue
                if (attr_l, attr_r) in must_match:
                    candidates.append(
                        AttributeMatch(attr_l, attr_r, 1.0, 1.0, 1.0)
                    )
                    continue
                name_score = self._name_score(attr_l, attr_r)
                instance_score = _instance_similarity(values_l, values_r)
                total_weight = self.name_weight + self.instance_weight
                score = (
                    self.name_weight * name_score
                    + self.instance_weight * instance_score
                ) / total_weight
                if score >= self.threshold:
                    candidates.append(
                        AttributeMatch(attr_l, attr_r, score, name_score,
                                       instance_score)
                    )
        candidates.sort(key=lambda m: (-m.score, m.left, m.right))
        if not self.one_to_one:
            return candidates
        chosen: list[AttributeMatch] = []
        used_left: set[str] = set()
        used_right: set[str] = set()
        for match in candidates:
            if match.left in used_left or match.right in used_right:
                continue
            chosen.append(match)
            used_left.add(match.left)
            used_right.add(match.right)
        return chosen

    def top_k_candidates(
        self,
        attribute: str,
        values: Sequence[Any],
        right: dict[str, Sequence[Any]],
        k: int = 5,
    ) -> list[AttributeMatch]:
        """Ranked candidate matches for one attribute (the HI narrowing
        interface of Section 3.3: show a human the top-k, let them pick)."""
        saved_threshold = self.threshold
        saved_one_to_one = self.one_to_one
        self.threshold = 0.0
        self.one_to_one = False
        try:
            matches = self.match({attribute: values}, right)
        finally:
            self.threshold = saved_threshold
            self.one_to_one = saved_one_to_one
        return matches[:k]

    def _name_score(self, a: str, b: str) -> float:
        clean_a = a.strip().lower().replace("-", "_")
        clean_b = b.strip().lower().replace("-", "_")
        if clean_a == clean_b:
            return 1.0
        synonym = self.synonyms.get(frozenset({clean_a, clean_b}))
        if synonym is not None:
            return synonym
        tokens_a = clean_a.replace("_", " ").split()
        tokens_b = clean_b.replace("_", " ").split()
        token_sim = _abbreviation_token_similarity(tokens_a, tokens_b)
        if len(tokens_a) == 1 and len(tokens_b) == 1:
            # Whole-string similarity only helps for single-word names;
            # for compound names it rewards shared suffixes like "_temp"
            # across unrelated attributes.
            return max(token_sim, jaro_winkler(clean_a, clean_b))
        return token_sim
