"""String and set similarity measures used across integration."""

from __future__ import annotations

import math
import re
from collections import Counter

_WORD_RE = re.compile(r"[A-Za-z0-9]+")


def tokens_of(text: str) -> list[str]:
    """Lowercased alphanumeric tokens of a string."""
    return [t.lower() for t in _WORD_RE.findall(text)]


def jaccard(a: str, b: str) -> float:
    """Jaccard similarity of the token sets of two strings, in [0, 1]."""
    set_a, set_b = set(tokens_of(a)), set(tokens_of(b))
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def levenshtein(a: str, b: str) -> int:
    """Edit distance (insert/delete/substitute, unit costs)."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1,
                               previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """1 - normalized edit distance, in [0, 1]."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))


def jaro(a: str, b: str) -> float:
    """Jaro similarity, in [0, 1]."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_matched[j] and b[j] == ca:
                a_matched[i] = b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len(a)):
        if a_matched[i]:
            while not b_matched[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    m = matches
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity (boosts shared prefixes), in [0, 1]."""
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca == cb:
            prefix += 1
        else:
            break
    return base + prefix * prefix_scale * (1.0 - base)


def token_cosine(a: str, b: str) -> float:
    """Cosine similarity of token-count vectors, in [0, 1]."""
    vec_a, vec_b = Counter(tokens_of(a)), Counter(tokens_of(b))
    if not vec_a or not vec_b:
        return 1.0 if not vec_a and not vec_b else 0.0
    dot = sum(vec_a[t] * vec_b[t] for t in vec_a.keys() & vec_b.keys())
    norm_a = math.sqrt(sum(c * c for c in vec_a.values()))
    norm_b = math.sqrt(sum(c * c for c in vec_b.values()))
    return dot / (norm_a * norm_b)


def _is_initial(token: str) -> bool:
    return len(token) == 1


def name_similarity(a: str, b: str) -> float:
    """Similarity specialized for person names, in [0, 1].

    Handles the paper's "David Smith" vs "D. Smith" example: an initial
    matches any full token with the same first letter.  Tokens are compared
    greedily; the score is the fraction of aligned tokens weighted by their
    per-token similarity (Jaro–Winkler for full tokens, 0.9 for
    initial-to-full matches).
    """
    tokens_a, tokens_b = tokens_of(a), tokens_of(b)
    if not tokens_a or not tokens_b:
        return 1.0 if tokens_a == tokens_b else 0.0
    if len(tokens_a) > len(tokens_b):
        tokens_a, tokens_b = tokens_b, tokens_a
    used = [False] * len(tokens_b)
    total = 0.0
    for ta in tokens_a:
        best_score, best_j = 0.0, -1
        for j, tb in enumerate(tokens_b):
            if used[j]:
                continue
            if ta == tb:
                score = 1.0
            elif _is_initial(ta) and tb.startswith(ta):
                score = 0.9
            elif _is_initial(tb) and ta.startswith(tb):
                score = 0.9
            else:
                score = jaro_winkler(ta, tb)
                if score < 0.8:
                    score = 0.0
            if score > best_score:
                best_score, best_j = score, j
        if best_j >= 0:
            used[best_j] = True
            total += best_score
    return total / max(len(tokens_a), len(tokens_b))
