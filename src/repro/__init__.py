"""repro — a structured approach to managing unstructured data.

A full implementation of the end-to-end system blueprint from
"The Case for a Structured Approach to Managing Unstructured Data"
(Doan, Naughton, et al., CIDR 2009): information extraction (IE),
information integration (II), and human intervention (HI) combined in a
declarative, optimized pipeline over a layered storage architecture, with
uncertainty, provenance, schema evolution, a semantic debugger, and a user
layer that guides keyword queries into structured ones.

Quick start::

    from repro import StructureManagementSystem, OperatorRegistry
    from repro.datagen import generate_city_corpus

    corpus, truth = generate_city_corpus()
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", ...)
    system.ingest(corpus)
    system.generate('pages = docs()\\n'
                    'facts = extract(pages, "infobox")\\n'
                    'output facts')
    system.query("SELECT AVG(value_num) FROM facts WHERE entity = 'Madison'")

See DESIGN.md for the architecture and EXPERIMENTS.md for the experiment
suite.
"""

from repro.core.system import GenerationReport, StructureManagementSystem
from repro.core.incremental import IncrementalExtractionManager
from repro.lang.registry import OperatorRegistry

__version__ = "0.1.0"

__all__ = [
    "StructureManagementSystem",
    "GenerationReport",
    "IncrementalExtractionManager",
    "OperatorRegistry",
    "__version__",
]
