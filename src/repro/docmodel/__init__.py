"""Unstructured-document substrate.

This subpackage provides the raw-data side of the DGE model: documents,
character spans, tokens, sentence segmentation, a small wiki-markup parser
(for infoboxes and tables, which the paper's motivating Wikipedia example
relies on), and corpus containers.

Everything downstream — extraction, integration, provenance — refers back to
:class:`Span` objects inside :class:`Document` instances, so that every piece
of derived structure can be traced to the exact characters it came from.
"""

from repro.docmodel.document import Document, DocumentMetadata, Span, Token
from repro.docmodel.tokenize import SentenceSplitter, Tokenizer, sentences, tokenize
from repro.docmodel.wikimarkup import Infobox, WikiPage, WikiTable, parse_wiki_page
from repro.docmodel.corpus import Corpus, InMemoryCorpus, DirectoryCorpus

__all__ = [
    "Document",
    "DocumentMetadata",
    "Span",
    "Token",
    "Tokenizer",
    "SentenceSplitter",
    "tokenize",
    "sentences",
    "Infobox",
    "WikiTable",
    "WikiPage",
    "parse_wiki_page",
    "Corpus",
    "InMemoryCorpus",
    "DirectoryCorpus",
]
