"""A small wiki-markup parser.

The paper's running example is extracting monthly temperatures from the
Wikipedia page for Madison, Wisconsin.  Wikipedia encodes such facts in
*infoboxes* (``{{Infobox city | name = Madison | jan_temp = 26 | ... }}``)
and in wiki tables.  This module parses a practical subset of that markup:

* ``{{Infobox <type> | key = value | ... }}`` templates (possibly nested
  one level deep; nested templates are kept as raw text values),
* ``{| ... |}`` tables with ``!`` header rows and ``|-`` row separators,
* ``== Section ==`` headings,
* ``[[link|label]]`` and ``[[link]]`` internal links (stripped to labels).

Every parsed element records the character span it came from so extraction
provenance reaches back into the raw page text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.docmodel.document import Document, Span

_INFOBOX_START_RE = re.compile(r"\{\{\s*Infobox\s+([^|}\n]+)", re.IGNORECASE)
_HEADING_RE = re.compile(r"^(={2,6})\s*(.*?)\s*\1\s*$", re.MULTILINE)
_LINK_RE = re.compile(r"\[\[([^\]|]+)(?:\|([^\]]+))?\]\]")


@dataclass(frozen=True)
class Infobox:
    """A parsed infobox template.

    Attributes:
        box_type: the word(s) after ``Infobox`` (e.g. ``city``).
        fields: mapping of parameter name to raw value text.
        field_spans: span of each value in the source document.
        span: span of the whole template.
    """

    box_type: str
    fields: dict[str, str]
    field_spans: dict[str, Span]
    span: Span


@dataclass(frozen=True)
class WikiTable:
    """A parsed wiki table: a header row plus data rows."""

    headers: list[str]
    rows: list[list[str]]
    span: Span


@dataclass(frozen=True)
class Heading:
    """A section heading with its nesting level (2 for ``==``)."""

    level: int
    title: str
    span: Span


@dataclass
class WikiPage:
    """The parse result for one wiki document."""

    doc: Document
    infoboxes: list[Infobox] = field(default_factory=list)
    tables: list[WikiTable] = field(default_factory=list)
    headings: list[Heading] = field(default_factory=list)
    plain_text: str = ""

    def infobox(self, box_type: str) -> Infobox | None:
        """First infobox of the given type (case-insensitive), or None."""
        wanted = box_type.strip().lower()
        for box in self.infoboxes:
            if box.box_type.strip().lower() == wanted:
                return box
        return None


def _find_template_end(text: str, start: int) -> int:
    """Index just past the ``}}`` closing the template opened at ``start``.

    Handles one-deep nesting by brace counting.  Returns -1 if unbalanced.
    """
    depth = 0
    i = start
    while i < len(text) - 1:
        pair = text[i : i + 2]
        if pair == "{{":
            depth += 1
            i += 2
        elif pair == "}}":
            depth -= 1
            i += 2
            if depth == 0:
                return i
        else:
            i += 1
    return -1


def _split_template_params(body: str) -> list[str]:
    """Split a template body on ``|`` at nesting depth zero."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    i = 0
    while i < len(body):
        pair = body[i : i + 2]
        if pair == "{{" or pair == "[[":
            depth += 1
            current.append(pair)
            i += 2
        elif pair == "}}" or pair == "]]":
            depth -= 1
            current.append(pair)
            i += 2
        elif body[i] == "|" and depth == 0:
            parts.append("".join(current))
            current = []
            i += 1
        else:
            current.append(body[i])
            i += 1
    parts.append("".join(current))
    return parts


def parse_infoboxes(doc: Document) -> list[Infobox]:
    """Parse every ``{{Infobox ...}}`` template in the document."""
    boxes: list[Infobox] = []
    text = doc.text
    for match in _INFOBOX_START_RE.finditer(text):
        open_pos = match.start()
        end = _find_template_end(text, open_pos)
        if end < 0:
            continue
        box_type = match.group(1).strip()
        body = text[match.end() : end - 2]
        body_offset = match.end()
        fields: dict[str, str] = {}
        field_spans: dict[str, Span] = {}
        params = _split_template_params(body)
        cursor = body_offset + len(params[0])  # position of the first '|'
        for param in params[1:]:
            param_start = cursor + 1  # skip the '|'
            cursor += 1 + len(param)
            if "=" not in param:
                continue
            key, _, value = param.partition("=")
            key_clean = key.strip().lower()
            value_clean = value.strip()
            if not key_clean:
                continue
            value_rel = param.index("=") + 1
            lead_ws = len(value) - len(value.lstrip())
            value_abs = param_start + value_rel + lead_ws
            fields[key_clean] = value_clean
            if value_clean:
                field_spans[key_clean] = Span(
                    doc.doc_id, value_abs, value_abs + len(value_clean),
                    text[value_abs : value_abs + len(value_clean)],
                )
        boxes.append(
            Infobox(
                box_type=box_type,
                fields=fields,
                field_spans=field_spans,
                span=Span(doc.doc_id, open_pos, end, text[open_pos:end]),
            )
        )
    return boxes


def parse_tables(doc: Document) -> list[WikiTable]:
    """Parse every ``{| ... |}`` wiki table in the document."""
    tables: list[WikiTable] = []
    text = doc.text
    pos = 0
    while True:
        start = text.find("{|", pos)
        if start < 0:
            break
        end = text.find("|}", start)
        if end < 0:
            break
        end += 2
        body = text[start + 2 : end - 2]
        headers: list[str] = []
        rows: list[list[str]] = []
        current_row: list[str] = []
        for raw_line in body.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("{|") or line.startswith("|+"):
                continue
            if line.startswith("|-"):
                if current_row:
                    rows.append(current_row)
                    current_row = []
            elif line.startswith("!"):
                cells = [c.strip() for c in line.lstrip("!").split("!!")]
                headers.extend(cells)
            elif line.startswith("|"):
                cells = [c.strip() for c in line.lstrip("|").split("||")]
                current_row.extend(cells)
        if current_row:
            rows.append(current_row)
        tables.append(
            WikiTable(headers=headers, rows=rows,
                      span=Span(doc.doc_id, start, end, text[start:end]))
        )
        pos = end
    return tables


def parse_headings(doc: Document) -> list[Heading]:
    """Parse ``== Heading ==`` style section headings."""
    headings: list[Heading] = []
    for match in _HEADING_RE.finditer(doc.text):
        level = len(match.group(1))
        headings.append(
            Heading(level=level, title=match.group(2),
                    span=Span(doc.doc_id, match.start(), match.end(), match.group()))
        )
    return headings


def strip_markup(text: str) -> str:
    """Produce a plain-text rendering: links to labels, templates removed."""
    out = text
    # Remove infobox/other templates entirely (they are structured, not prose).
    while True:
        start = out.find("{{")
        if start < 0:
            break
        end = _find_template_end(out, start)
        if end < 0:
            out = out[:start] + out[start + 2 :]
            continue
        out = out[:start] + out[end:]
    # Remove tables.
    while True:
        start = out.find("{|")
        if start < 0:
            break
        end = out.find("|}", start)
        if end < 0:
            break
        out = out[:start] + out[end + 2 :]
    out = _LINK_RE.sub(lambda m: m.group(2) or m.group(1), out)
    out = _HEADING_RE.sub(lambda m: m.group(2), out)
    out = out.replace("'''", "").replace("''", "")
    return out


def parse_wiki_page(doc: Document) -> WikiPage:
    """Full parse of a wiki document: infoboxes, tables, headings, prose."""
    return WikiPage(
        doc=doc,
        infoboxes=parse_infoboxes(doc),
        tables=parse_tables(doc),
        headings=parse_headings(doc),
        plain_text=strip_markup(doc.text),
    )
