"""Core document model: documents, spans, and tokens.

A :class:`Document` is an immutable piece of unstructured data (a wiki page,
an e-mail, a web page dump).  A :class:`Span` is a half-open character range
``[start, end)`` within a specific document; it is the atomic unit of
provenance — every extracted attribute value points back to the span(s) it
was read from.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Iterator, Mapping


@dataclass(frozen=True)
class DocumentMetadata:
    """Descriptive metadata attached to a document.

    Attributes:
        source: where the document came from (URL, file path, generator name).
        timestamp: seconds-since-epoch acquisition time; 0 when unknown.
        mime_type: coarse content type; defaults to plain text.
        extra: free-form key/value annotations (crawl depth, author, ...).
    """

    source: str = ""
    timestamp: float = 0.0
    mime_type: str = "text/plain"
    extra: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Document:
    """An immutable unstructured document.

    Attributes:
        doc_id: unique identifier within a corpus.
        text: the full raw text.
        metadata: acquisition metadata.
    """

    doc_id: str
    text: str
    metadata: DocumentMetadata = field(default_factory=DocumentMetadata)

    def __len__(self) -> int:
        return len(self.text)

    def span(self, start: int, end: int) -> "Span":
        """Create a validated span into this document."""
        return Span(doc_id=self.doc_id, start=start, end=end, text=self.text[start:end])

    @cached_property
    def _content_hash(self) -> str:
        return hashlib.sha256(self.text.encode("utf-8")).hexdigest()

    def content_hash(self) -> str:
        """Stable hash of the text (snapshot-store dedup, extraction cache).

        Computed once per document — the extraction cache hashes every
        document on every lookup, so this must not re-digest each call.
        """
        return self._content_hash

    @cached_property
    def text_lower(self) -> str:
        """The text lowercased, computed once.

        Keyword pre-filters (:func:`repro.lang.optimizer.
        doc_passes_keyword_groups`) and selectivity probes lowercase the
        same document repeatedly on the hot path; memoizing here turns an
        O(len) allocation per probe into one per document.
        """
        return self.text.lower()

    def lines(self) -> list[str]:
        """The document text split into lines (used by the diff store)."""
        return self.text.splitlines(keepends=True)


@dataclass(frozen=True, order=True)
class Span:
    """A half-open character range ``[start, end)`` inside one document.

    The covered text is carried along so spans remain meaningful even after
    the owning document has been evicted from memory; ``text`` must equal
    ``document.text[start:end]`` at creation time.
    """

    doc_id: str
    start: int
    end: int
    text: str = field(compare=False)

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span bounds [{self.start}, {self.end})")
        if len(self.text) != self.end - self.start:
            raise ValueError(
                f"span text length {len(self.text)} does not match bounds "
                f"[{self.start}, {self.end})"
            )

    def __len__(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        """True if the two spans share at least one character position."""
        return (
            self.doc_id == other.doc_id
            and self.start < other.end
            and other.start < self.end
        )

    def contains(self, other: "Span") -> bool:
        """True if ``other`` lies fully within this span."""
        return (
            self.doc_id == other.doc_id
            and self.start <= other.start
            and other.end <= self.end
        )

    def shifted(self, offset: int) -> "Span":
        """A copy moved by ``offset`` characters (used by markup strippers)."""
        return Span(self.doc_id, self.start + offset, self.end + offset, self.text)


@dataclass(frozen=True)
class Token:
    """A single token: a span plus a coarse lexical class.

    ``kind`` is one of ``word``, ``number``, ``punct``.
    """

    span: Span
    kind: str

    @property
    def text(self) -> str:
        return self.span.text

    def is_word(self) -> bool:
        return self.kind == "word"

    def is_number(self) -> bool:
        return self.kind == "number"


def merge_spans(spans: list[Span]) -> Span:
    """Merge contiguous-or-overlapping spans of one document into their hull.

    Raises:
        ValueError: if ``spans`` is empty or spans belong to different docs.
    """
    if not spans:
        raise ValueError("cannot merge an empty span list")
    doc_ids = {s.doc_id for s in spans}
    if len(doc_ids) != 1:
        raise ValueError(f"spans belong to multiple documents: {sorted(doc_ids)}")
    ordered = sorted(spans)
    start, end = ordered[0].start, max(s.end for s in ordered)
    # Reconstruct hull text from the pieces; gaps are filled from the pieces'
    # own text when adjacent, otherwise the caller should merge via document.
    pieces: list[str] = []
    cursor = start
    for s in ordered:
        if s.start > cursor:
            pieces.append(" " * (s.start - cursor))
            cursor = s.start
        if s.end > cursor:
            pieces.append(s.text[cursor - s.start :])
            cursor = s.end
    return Span(ordered[0].doc_id, start, end, "".join(pieces))


def iter_ngrams(tokens: list[Token], n: int) -> Iterator[tuple[Token, ...]]:
    """Yield all consecutive ``n``-grams over a token list."""
    if n <= 0:
        raise ValueError("n must be positive")
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i : i + n])
