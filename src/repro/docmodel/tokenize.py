"""Tokenization and sentence segmentation.

A small, deterministic, dependency-free tokenizer good enough for the kinds
of extraction the paper motivates (attribute–value pairs, names, numeric
facts).  Tokens carry spans so extraction results stay traceable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.docmodel.document import Document, Span, Token

_TOKEN_RE = re.compile(
    r"""
    (?P<number>[+-]?\d+(?:[.,]\d+)*(?:\.\d+)?)   # 1,234.5  -7  3.14
  | (?P<word>[A-Za-z][A-Za-z'\-]*)               # words, contractions, hyphens
  | (?P<punct>[^\sA-Za-z0-9])                    # single punctuation marks
    """,
    re.VERBOSE,
)

_ABBREVIATIONS = frozenset(
    {
        "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "vs", "etc",
        "e.g", "i.e", "jan", "feb", "mar", "apr", "jun", "jul", "aug",
        "sep", "sept", "oct", "nov", "dec", "no", "vol", "fig", "al",
    }
)

_SENTENCE_END_RE = re.compile(r"([.!?])(\s+)")


@dataclass
class Tokenizer:
    """Regex tokenizer producing :class:`Token` objects with spans.

    Attributes:
        lowercase_words: if True, a parallel lowercased form is available via
            :meth:`normalize`; token text itself is never altered.
    """

    lowercase_words: bool = True

    def tokenize(self, doc: Document) -> list[Token]:
        """Tokenize the whole document."""
        return self.tokenize_range(doc, 0, len(doc.text))

    def tokenize_range(self, doc: Document, start: int, end: int) -> list[Token]:
        """Tokenize only ``doc.text[start:end]``, keeping absolute offsets."""
        tokens: list[Token] = []
        for match in _TOKEN_RE.finditer(doc.text, start, end):
            kind = match.lastgroup or "punct"
            span = Span(doc.doc_id, match.start(), match.end(), match.group())
            tokens.append(Token(span=span, kind=kind))
        return tokens

    def normalize(self, token: Token) -> str:
        """Canonical matching form of a token (lowercased words)."""
        if token.kind == "word" and self.lowercase_words:
            return token.text.lower()
        return token.text


@dataclass
class SentenceSplitter:
    """Heuristic sentence splitter aware of common abbreviations.

    Splits on ``.``, ``!``, ``?`` followed by whitespace, unless the dot
    terminates a known abbreviation or a single capital letter (initials).
    """

    abbreviations: frozenset[str] = field(default_factory=lambda: _ABBREVIATIONS)

    def split(self, doc: Document) -> list[Span]:
        """Return sentence spans covering the non-blank content of ``doc``."""
        text = doc.text
        boundaries: list[int] = []
        for match in _SENTENCE_END_RE.finditer(text):
            punct_pos = match.start(1)
            if match.group(1) == "." and self._is_abbreviation(text, punct_pos):
                continue
            boundaries.append(match.end(1))
        spans: list[Span] = []
        prev = 0
        for boundary in boundaries + [len(text)]:
            chunk = text[prev:boundary]
            stripped = chunk.strip()
            if stripped:
                lead = len(chunk) - len(chunk.lstrip())
                start = prev + lead
                end = start + len(stripped)
                spans.append(Span(doc.doc_id, start, end, text[start:end]))
            prev = boundary
        return spans

    def _is_abbreviation(self, text: str, dot_pos: int) -> bool:
        word_start = dot_pos
        while word_start > 0 and (text[word_start - 1].isalpha() or text[word_start - 1] == "."):
            word_start -= 1
        word = text[word_start:dot_pos].lower().rstrip(".")
        if not word:
            return False
        if len(word) == 1 and word.isalpha():
            return True  # initials such as "J. Smith"
        return word in self.abbreviations


_DEFAULT_TOKENIZER = Tokenizer()
_DEFAULT_SPLITTER = SentenceSplitter()


def tokenize(doc: Document) -> list[Token]:
    """Module-level convenience wrapper using the default tokenizer."""
    return _DEFAULT_TOKENIZER.tokenize(doc)


def sentences(doc: Document) -> list[Span]:
    """Module-level convenience wrapper using the default splitter."""
    return _DEFAULT_SPLITTER.split(doc)
