"""Corpus containers.

A corpus is the unit the system ingests: an ordered collection of documents
with stable IDs.  Two implementations: an in-memory corpus (tests, synthetic
data) and a directory-backed corpus (one ``.txt`` file per document) for
workflows that stage crawled data on the file system, as the paper's storage
layer discussion envisions.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.docmodel.document import Document, DocumentMetadata


class Corpus(ABC):
    """Abstract ordered collection of documents with stable IDs."""

    @abstractmethod
    def __iter__(self) -> Iterator[Document]:
        """Iterate documents in a stable order."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of documents."""

    @abstractmethod
    def get(self, doc_id: str) -> Document:
        """Fetch a document by ID.

        Raises:
            KeyError: if no document has that ID.
        """

    def doc_ids(self) -> list[str]:
        """All document IDs, in iteration order."""
        return [doc.doc_id for doc in self]

    def __contains__(self, doc_id: str) -> bool:
        try:
            self.get(doc_id)
        except KeyError:
            return False
        return True


class InMemoryCorpus(Corpus):
    """Corpus held entirely in memory; insertion-ordered."""

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._docs: dict[str, Document] = {}
        for doc in documents:
            self.add(doc)

    def add(self, doc: Document) -> None:
        """Add or replace a document (same ID replaces in place)."""
        self._docs[doc.doc_id] = doc

    def remove(self, doc_id: str) -> None:
        """Remove a document.

        Raises:
            KeyError: if absent.
        """
        del self._docs[doc_id]

    def __iter__(self) -> Iterator[Document]:
        return iter(self._docs.values())

    def __len__(self) -> int:
        return len(self._docs)

    def get(self, doc_id: str) -> Document:
        return self._docs[doc_id]


class DirectoryCorpus(Corpus):
    """Corpus backed by a directory of ``<doc_id>.txt`` files.

    Documents are read lazily; writing is supported via :meth:`add`.  File
    names are the document IDs (IDs therefore must be valid file names).
    """

    def __init__(self, root: str) -> None:
        self._root = root
        os.makedirs(root, exist_ok=True)

    @property
    def root(self) -> str:
        return self._root

    def add(self, doc: Document) -> None:
        """Persist a document as ``<root>/<doc_id>.txt``."""
        path = self._path(doc.doc_id)
        with open(path, "w", encoding="utf-8") as f:
            f.write(doc.text)

    def __iter__(self) -> Iterator[Document]:
        for name in sorted(os.listdir(self._root)):
            if name.endswith(".txt"):
                yield self.get(name[: -len(".txt")])

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self._root) if name.endswith(".txt"))

    def get(self, doc_id: str) -> Document:
        path = self._path(doc_id)
        if not os.path.exists(path):
            raise KeyError(doc_id)
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        return Document(
            doc_id=doc_id,
            text=text,
            metadata=DocumentMetadata(source=path, timestamp=os.path.getmtime(path)),
        )

    def _path(self, doc_id: str) -> str:
        if os.sep in doc_id or doc_id in {".", ".."}:
            raise ValueError(f"doc_id {doc_id!r} is not a valid file name")
        return os.path.join(self._root, doc_id + ".txt")
