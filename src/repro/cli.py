"""Command-line interface — the user layer's sophisticated-user mode.

"The part 'User Services' contains all common data exploitation modes,
such as command-line interface (for sophisticated users), keyword search,
structured querying, etc."

Subcommands operate on a workspace directory (created on first use):

* ``ingest <dir>`` — ingest every ``*.txt`` page of a directory as a new
  snapshot of the corpus;
* ``generate <program.xlog>`` — run a declarative IE program (extractors
  must be registered programmatically or via the built-in set, see
  ``--builtin``);
* ``sql "<query>"`` — structured querying over the derived facts;
* ``search "<keywords>"`` — keyword search over the raw pages;
* ``suggest "<keywords>"`` — show structured reformulation candidates;
* ``explain "<select>"`` — the planner's physical plan for a query
  (``EXPLAIN ANALYZE SELECT ...`` via ``sql`` adds per-operator actuals);
* ``explain <entity> <attribute>`` — provenance of stored facts;
* ``stream [--query SQL] [--follow]`` — the streaming DGE loop: seed from
  the corpus, then (with ``--follow``) incrementally re-extract/re-resolve/
  re-fuse changed documents, pushing standing-query notifications from the
  fused-row deltas;
* ``slowlog list|show|clear`` — the workspace's slow-query log;
* ``top <telemetry.jsonl>`` — periodic operations view (qps, cache hit
  rates, WAL throughput, lock waits, slow-query tail);
* ``stats <telemetry.jsonl> [--prom|--json]`` — trace/metrics report,
  Prometheus text exposition, or the raw merged snapshot.

The ``--builtin`` extractor set registers the generic wiki extractors
(infobox, tables, links), which cover the common case of wiki-flavoured
corpora without any code.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from repro import telemetry
from repro.cache.store import DiskExtractionCache
from repro.cluster.backends import BackendError
from repro.cluster.simulator import TaskFailedError
from repro.core.system import FACTS_TABLE, StructureManagementSystem
from repro.docmodel.corpus import DirectoryCorpus
from repro.errors import QueryTimeoutError, ReproError
from repro.storage.rdbms.sql import SqlError
from repro.extraction.infobox import InfoboxExtractor
from repro.extraction.links import LinkExtractor
from repro.telemetry.report import load_telemetry, render_prometheus, \
    render_report, render_top, summarize_trace
from repro.telemetry.slowlog import SlowQueryLog
from repro.userlayer.visualize import table

#: Exit code for execution failures (dead backend, exhausted retries, a
#: failed simulated task) — distinct from argparse's 2 and success's 0.
EXIT_EXECUTION_FAILURE = 3

#: Exit code for queries that ran out of time (deadline, lock-wait
#: timeout, shutdown cancellation) — distinct from execution failure so
#: callers can retry timeouts without re-examining the statement.
EXIT_QUERY_TIMEOUT = 4


def _build_system(workspace: str, builtin: bool,
                  backend: str | None = None,
                  workers: int | None = None,
                  cache: str | None = None,
                  fail_fast: bool = False) -> StructureManagementSystem:
    system = StructureManagementSystem(workspace=workspace, backend=backend,
                                       backend_workers=workers, cache=cache,
                                       fail_fast=fail_fast)
    if builtin:
        system.registry.register_extractor("infobox", InfoboxExtractor())
        system.registry.register_extractor("links", LinkExtractor())
    return system


def _reingest_existing(system: StructureManagementSystem) -> None:
    """Reload the latest snapshot of every known page into memory."""
    store = system.storage.raw
    for doc_id in store.doc_ids():
        system.ingest([store.checkout(doc_id)])


def cmd_ingest(args: argparse.Namespace) -> int:
    """Ingest a directory of .txt pages into the workspace."""
    system = _build_system(args.workspace, args.builtin)
    corpus = DirectoryCorpus(args.directory)
    count = system.ingest(corpus)
    print(f"ingested {count} pages into {args.workspace}")
    system.close()
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Run (or EXPLAIN) a declarative IE program file."""
    system = _build_system(args.workspace, args.builtin,
                           backend=args.backend, workers=args.workers,
                           cache=args.cache, fail_fast=args.fail_fast)
    _reingest_existing(system)
    with open(args.program, "r", encoding="utf-8") as f:
        source = f.read()
    if args.explain:
        print(system.explain_program(source))
        system.close()
        return 0
    report = system.generate(source, optimize=not args.no_optimize)
    print(f"stored {report.facts_stored} facts "
          f"({report.facts_flagged} flagged); "
          f"scanned {report.chars_scanned} chars; "
          f"asked {report.hi_questions} HI questions")
    if report.failed_docs:
        print(f"quarantined {report.failed_docs} document(s) after "
              f"retries — inspect with 'repro deadletter list'")
    if report.backend_name != "inline":
        print(f"backend {report.backend_name}: "
              f"{report.real_parallel_seconds:.3f}s parallel extraction")
    if args.cache is not None:
        print(f"cache: {report.cache_hits} hits, "
              f"{report.cache_misses} misses")
    system.close()
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    """Run a SQL query over the derived facts and print a table."""
    system = _build_system(args.workspace, args.builtin,
                           backend=args.backend, workers=args.workers)
    rows = system.query(args.query)
    print(table(rows, limit=args.limit))
    system.close()
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    """Freeze a table's committed rows into columnar segments."""
    system = _build_system(args.workspace, args.builtin)
    try:
        summary = system.compact(args.table)
    except KeyError:
        print(f"unknown table {args.table!r}", file=sys.stderr)
        system.close()
        return 2
    print(f"compacted {summary['table']}: {summary['rows_frozen']} rows "
          f"frozen into {summary['segments_created']} new segment(s); "
          f"{summary['segment_count']} segment(s) total")
    system.close()
    return 0


def cmd_reshard(args: argparse.Namespace) -> int:
    """Change a table's hash-partitioning layout."""
    system = _build_system(args.workspace, args.builtin)
    try:
        if args.none:
            summary = system.reshard(args.table, None)
        else:
            if args.by is None:
                print("reshard requires --by <column> (or --none)",
                      file=sys.stderr)
                system.close()
                return 2
            summary = system.reshard(args.table, args.by, args.shards)
    except KeyError:
        print(f"unknown table {args.table!r}", file=sys.stderr)
        system.close()
        return 2
    if summary["shard_key"] is None:
        print(f"unsharded {summary['table']}: {summary['rows']} rows")
    else:
        print(f"resharded {summary['table']}: {summary['rows']} rows by "
              f"({summary['shard_key']}) into {summary['shard_count']} "
              f"shard(s)")
    system.close()
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    """Keyword-search the raw pages; print ranked hits."""
    system = _build_system(args.workspace, args.builtin)
    _reingest_existing(system)
    for hit in system.keyword(args.query, k=args.limit):
        print(f"{hit.score:8.3f}  {hit.doc_id}  {hit.snippet[:80]}")
    system.close()
    return 0


def cmd_suggest(args: argparse.Namespace) -> int:
    """Print ranked structured reformulations of keywords."""
    system = _build_system(args.workspace, args.builtin)
    translator = system.translator()
    candidates = translator.translate(args.query, k=args.limit)
    if not candidates:
        print("no structured reformulations found")
    for i, candidate in enumerate(candidates):
        print(f"[{i}] ({candidate.score:.2f}) {candidate.description}")
        print(f"    {candidate.sql}")
    system.close()
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """With one argument, print the planner's physical plan for a SELECT;
    with two, print the provenance of facts about (entity, attribute)."""
    if len(args.target) > 2:
        print("explain takes a SQL query or an entity + attribute pair",
              file=sys.stderr)
        return 2
    system = _build_system(args.workspace, args.builtin)
    if len(args.target) == 1:
        print(system.explain_sql(args.target[0]))
    else:
        print(system.explain(args.target[0], args.target[1]))
    system.close()
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Summarize a telemetry JSONL file (spans + metrics snapshot).

    ``--prom`` renders the merged metrics snapshot as Prometheus text
    exposition; ``--json`` dumps it raw for scripts.
    """
    spans, snapshot = load_telemetry(args.telemetry_file)
    if args.prom:
        sys.stdout.write(render_prometheus(snapshot))
        return 0
    if args.json:
        print(json.dumps(snapshot or {}, indent=2, sort_keys=True))
        return 0
    if not spans and snapshot is None:
        print(f"no telemetry records in {args.telemetry_file}")
        return 1
    print(render_report(summarize_trace(spans, top_k=args.top), snapshot))
    return 0


def _workspace_slowlog(workspace: str) -> SlowQueryLog:
    """A read-only handle on the workspace's slow-query log file."""
    return SlowQueryLog(path=os.path.join(workspace, "slowlog.jsonl"))


def cmd_slowlog(args: argparse.Namespace) -> int:
    """Inspect or clear the workspace's slow-query log."""
    log = _workspace_slowlog(args.workspace)
    try:
        if args.action == "clear":
            dropped = log.clear()
            print(f"cleared {dropped} slow-query entr"
                  f"{'y' if dropped == 1 else 'ies'}")
            return 0
        entries = log.entries()
        if not entries:
            print("slow-query log is empty")
            return 0
        if args.action == "list":
            print(table([
                {"#": i, "seconds": f"{e.get('seconds', 0.0):.3f}",
                 "rows": e.get("rows", 0),
                 "sql": e.get("sql", "?")[:60]}
                for i, e in enumerate(entries)
            ], limit=args.limit))
            return 0
        # show: one full entry, annotated plan included
        index = args.index if args.index is not None else len(entries) - 1
        if not 0 <= index < len(entries):
            print(f"no slow-query entry {index} "
                  f"(log has {len(entries)})", file=sys.stderr)
            return 2
        entry = dict(entries[index])
        plan = entry.pop("plan", None)
        metrics_delta = entry.pop("metrics_delta", None)
        for key in ("ts", "sql", "seconds", "rows", "threshold"):
            if key in entry:
                print(f"{key:<14} {entry[key]}")
        versions = entry.get("stats_versions")
        if versions:
            print(f"{'stats':<14} " + " ".join(
                f"{t}=v{v}" for t, v in sorted(versions.items())))
        if plan:
            print("plan:")
            for line in plan:
                print(f"  {line}")
        if metrics_delta:
            print("metrics delta during capture:")
            for name, value in sorted(metrics_delta.items()):
                print(f"  {name:<40} {value:.0f}")
        return 0
    finally:
        log.close()


def cmd_top(args: argparse.Namespace) -> int:
    """Periodic operations view over a telemetry JSONL file.

    Each frame re-reads the file's merged metrics snapshot and shows the
    delta since the previous frame (first frame: cumulative totals).
    With a workspace slow-query log present, the tail rides along.
    """
    previous = None
    slowlog_path = os.path.join(args.workspace, "slowlog.jsonl")
    for frame in range(args.count):
        if frame:
            time.sleep(args.interval)
        try:
            _, snapshot = load_telemetry(args.telemetry_file)
        except FileNotFoundError:
            print(f"no telemetry file at {args.telemetry_file}",
                  file=sys.stderr)
            return 1
        snapshot = snapshot or {}
        slow_entries = None
        if os.path.exists(slowlog_path):
            log = SlowQueryLog(path=slowlog_path)
            slow_entries = log.tail(limit=5)
            log.close()
        print(render_top(previous, snapshot,
                         interval_seconds=args.interval if frame else None,
                         slow_entries=slow_entries))
        if frame != args.count - 1:
            print()
        previous = snapshot
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the persistent extraction cache."""
    root = args.cache if args.cache is not None \
        else os.path.join(args.workspace, "cache")
    cache = DiskExtractionCache(root)
    if args.action == "stats":
        for key, value in cache.stats().items():
            print(f"{key:12} {value}")
    else:  # clear
        entries = len(cache)
        cache.clear()
        print(f"cleared {entries} cached entries under {root}")
    cache.close()
    return 0


def cmd_deadletter(args: argparse.Namespace) -> int:
    """Inspect, re-drive, or clear quarantined (poison) documents."""
    system = _build_system(args.workspace, args.builtin,
                           backend=args.backend, workers=args.workers,
                           cache=args.cache)
    try:
        if args.action == "list":
            entries = system.deadletter.entries()
            if not entries:
                print("dead-letter store is empty")
                return 0
            print(table([
                {"doc_id": e.doc_id, "extractor": e.extractor,
                 "error_type": e.error_type, "attempts": e.attempts,
                 "error": e.error[:60]}
                for e in entries
            ], limit=args.limit))
            return 0
        if args.action == "clear":
            dropped = system.deadletter.clear()
            print(f"cleared {dropped} dead-letter entr"
                  f"{'y' if dropped == 1 else 'ies'}")
            return 0
        # retry
        if args.program is None:
            print("deadletter retry needs --program <file.xlog>",
                  file=sys.stderr)
            return 2
        _reingest_existing(system)
        with open(args.program, "r", encoding="utf-8") as f:
            source = f.read()
        retried, still_failed = system.retry_deadletter(source)
        print(f"retried {retried} document(s); "
              f"{retried - still_failed} recovered, "
              f"{still_failed} still quarantined")
        return 0
    finally:
        system.close()


def cmd_stream(args: argparse.Namespace) -> int:
    """Run the streaming DGE loop over the workspace corpus.

    Each invocation cold-starts the pipeline: ``fused_facts`` is rebuilt
    from the current corpus (cheap — extraction hits the persistent cache),
    and any ``--query`` standing queries fire on the fused rows as they
    land.  With ``--follow``, the command then keeps diffing the snapshot
    store and pushes only the changed documents through incremental
    extraction -> entity resolution -> fusion, tailing notifications as
    they fire — the O(delta) path.
    """
    from repro.core.streaming import CorpusDeltaSource
    from repro.userlayer.monitoring import ContinuousQuery

    system = _build_system(args.workspace, args.builtin, cache=args.cache)
    try:
        pipeline = system.streaming_pipeline(queue_size=args.queue_size)
        source = CorpusDeltaSource()
        for i, sql in enumerate(args.query or []):
            system.monitoring.register(ContinuousQuery(
                f"stream-{i}", sql,
                callback=lambda qid, row: print(
                    f"[{qid}] {json.dumps(row, sort_keys=True, default=str)}"),
            ))
        rounds = args.rounds if args.follow else 1
        done = 0
        try:
            while rounds is None or done < rounds:
                if done:
                    time.sleep(args.interval)
                delta = source.diff_store(system.storage.raw)
                if len(delta):
                    written = pipeline.process(delta)
                    stats = pipeline.stats
                    label = "delta" if done else "seed"
                    print(f"{label}: +{len(delta.added)} "
                          f"~{len(delta.changed)} -{len(delta.removed)} "
                          f"doc(s) -> {written} fused row(s) changed "
                          f"({stats.pairs_scored} pairs scored, "
                          f"{stats.clusters_split} cluster splits)")
                elif not args.follow:
                    print("corpus empty; nothing to stream")
                done += 1
        except KeyboardInterrupt:
            pass
        return 0
    finally:
        system.close()


def cmd_facts(args: argparse.Namespace) -> int:
    """Browse stored facts as a table."""
    system = _build_system(args.workspace, args.builtin)
    rows = system.query(
        f"SELECT entity, attribute, value_text, value_num, confidence "
        f"FROM {FACTS_TABLE} ORDER BY entity LIMIT {args.limit}"
    )
    print(table(rows, limit=args.limit))
    system.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Structured management of unstructured data (CIDR'09)",
    )
    parser.add_argument("--workspace", default="./repro-workspace",
                        help="workspace directory (default ./repro-workspace)")
    parser.add_argument("--builtin", action="store_true", default=True,
                        help="register the built-in wiki extractors")
    parser.add_argument("--backend", choices=["serial", "thread", "process"],
                        default=None,
                        help="real parallel execution backend for extraction "
                             "(default: inline)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for --backend thread/process "
                             "(default: CPU count)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="persistent extraction cache directory; warm "
                             "re-runs only extract changed documents "
                             "(default: off)")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="record spans and a metrics snapshot to this "
                             "JSONL file (inspect with 'repro stats PATH')")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first extraction failure instead "
                             "of retrying and quarantining poison documents")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("ingest", help="ingest a directory of .txt pages")
    p.add_argument("directory")
    p.set_defaults(fn=cmd_ingest)

    p = sub.add_parser("generate", help="run a declarative IE program")
    p.add_argument("program", help="path to an .xlog program file")
    p.add_argument("--no-optimize", action="store_true")
    p.add_argument("--explain", action="store_true",
                   help="show plans instead of executing")
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("sql", help="run a SQL query over the facts")
    p.add_argument("query")
    p.add_argument("--limit", type=int, default=50)
    p.set_defaults(fn=cmd_sql)

    p = sub.add_parser("compact",
                       help="freeze committed rows into columnar segments")
    p.add_argument("table", nargs="?", default="facts",
                   help="table to compact (default: facts)")
    p.set_defaults(fn=cmd_compact)

    p = sub.add_parser("reshard",
                       help="hash-partition a table for parallel plans")
    p.add_argument("table", nargs="?", default="facts",
                   help="table to reshard (default: facts)")
    p.add_argument("--by", help="shard key column")
    p.add_argument("--shards", type=int, default=4,
                   help="shard count (default: 4)")
    p.add_argument("--none", action="store_true",
                   help="remove sharding instead")
    p.set_defaults(fn=cmd_reshard)

    p = sub.add_parser("search", help="keyword search over raw pages")
    p.add_argument("query")
    p.add_argument("--limit", type=int, default=10)
    p.set_defaults(fn=cmd_search)

    p = sub.add_parser("suggest", help="structured reformulations of keywords")
    p.add_argument("query")
    p.add_argument("--limit", type=int, default=5)
    p.set_defaults(fn=cmd_suggest)

    p = sub.add_parser(
        "explain",
        help="query plan for a SELECT, or provenance of facts",
    )
    p.add_argument(
        "target", nargs="+", metavar="SQL | ENTITY ATTRIBUTE",
        help="one arg: a SELECT to plan; two args: entity + attribute",
    )
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("stream",
                       help="run the streaming DGE loop over the workspace")
    p.add_argument("--query", action="append", metavar="SQL",
                   help="standing query over fused_facts; notifications "
                        "print as they fire (repeatable)")
    p.add_argument("--follow", action="store_true",
                   help="keep polling the corpus for new snapshots")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between --follow polls (default 2)")
    p.add_argument("--rounds", type=int, default=None,
                   help="stop --follow after N polls (default: until ^C)")
    p.add_argument("--queue-size", type=int, default=64,
                   help="bounded stage-queue size (default 64)")
    p.set_defaults(fn=cmd_stream)

    p = sub.add_parser("facts", help="browse stored facts")
    p.add_argument("--limit", type=int, default=25)
    p.set_defaults(fn=cmd_facts)

    p = sub.add_parser("cache", help="inspect or clear the extraction cache")
    p.add_argument("action", choices=["stats", "clear"])
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("deadletter",
                       help="inspect, retry, or clear quarantined documents")
    p.add_argument("action", choices=["list", "retry", "clear"])
    p.add_argument("--program", default=None,
                   help="xlog program file for 'retry'")
    p.add_argument("--limit", type=int, default=50)
    p.set_defaults(fn=cmd_deadletter)

    p = sub.add_parser("stats", help="summarize a telemetry JSONL file")
    p.add_argument("telemetry_file")
    p.add_argument("--top", type=int, default=10,
                   help="how many slowest spans to show")
    p.add_argument("--prom", action="store_true",
                   help="render the metrics snapshot as Prometheus text "
                        "exposition instead of the report")
    p.add_argument("--json", action="store_true",
                   help="dump the merged metrics snapshot as JSON")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("slowlog",
                       help="inspect or clear the slow-query log")
    p.add_argument("action", choices=["list", "show", "clear"])
    p.add_argument("index", nargs="?", type=int, default=None,
                   help="entry number for 'show' (default: latest)")
    p.add_argument("--limit", type=int, default=50)
    p.set_defaults(fn=cmd_slowlog)

    p = sub.add_parser("top",
                       help="periodic operations view over telemetry")
    p.add_argument("telemetry_file")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between frames (default 2)")
    p.add_argument("--count", type=int, default=1,
                   help="frames to print before exiting (default 1)")
    p.set_defaults(fn=cmd_top)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Execution failures (:class:`BackendError`, :class:`TaskFailedError`,
    SQL errors, deadlock-retry exhaustion) print a one-line message and
    exit :data:`EXIT_EXECUTION_FAILURE` instead of dumping a traceback —
    with ``--fail-fast`` this is the normal way a poisoned run ends.
    Query timeouts (deadline, lock-wait timeout, shutdown cancellation)
    exit :data:`EXIT_QUERY_TIMEOUT` so scripts can retry them blindly.
    """
    args = build_parser().parse_args(argv)
    try:
        if args.telemetry is None:
            return args.fn(args)
        session = telemetry.enable(jsonl_path=args.telemetry)
        try:
            return args.fn(args)
        finally:
            session.finish()
            telemetry.disable()
            print(f"telemetry written to {args.telemetry}", file=sys.stderr)
    except QueryTimeoutError as exc:
        print(f"repro: query timed out: {exc}", file=sys.stderr)
        return EXIT_QUERY_TIMEOUT
    except (SqlError, ReproError) as exc:
        print(f"repro: query failed: {exc}", file=sys.stderr)
        return EXIT_EXECUTION_FAILURE
    except (BackendError, TaskFailedError) as exc:
        print(f"repro: execution failed: {exc}", file=sys.stderr)
        return EXIT_EXECUTION_FAILURE


if __name__ == "__main__":
    sys.exit(main())
