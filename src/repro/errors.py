"""Typed, repro-level exception hierarchy for the serving path.

The engine's low-level failures (``DeadlockError``, lock-wait timeouts)
historically leaked out of ``system.query`` as builtin exceptions with no
context.  Serving callers need to distinguish three outcomes:

* the query **failed** (bad SQL, execution error) — :class:`QueryError`;
* the query **ran out of time** (its deadline passed, a lock wait timed
  out, or the system is shutting down) — :class:`QueryTimeoutError`;
* the query was **never admitted** (the server is saturated or
  draining) — :class:`AdmissionRejected`.

Every query-scoped error carries the offending SQL text.  The CLI maps
the classes to distinct exit codes (timeout = 4, execution failure = 3).

:class:`CancellationToken` is the cooperative-cancellation handle threaded
from the serving layer down into the streaming operators: readers check it
every few hundred rows, writers at every operation boundary.
"""

from __future__ import annotations

import threading
import time
from typing import Optional


class ReproError(Exception):
    """Base class for all repro-level errors."""


class QueryError(ReproError):
    """A query-scoped failure; carries the SQL text that caused it."""

    def __init__(self, message: str, *, sql: str | None = None) -> None:
        super().__init__(message)
        self.sql = sql

    def __str__(self) -> str:
        base = super().__str__()
        if self.sql:
            return f"{base} (sql: {self.sql!r})"
        return base


class QueryTimeoutError(QueryError):
    """The query exceeded its deadline or was cancelled by shutdown."""


class QueryLockTimeoutError(QueryTimeoutError):
    """A writer's lock wait timed out (after retries, if any).

    Subclasses :class:`QueryTimeoutError`: a lock-wait timeout is a
    timeout to the caller (CLI exit code 4), just one diagnosed inside
    the lock manager rather than at the query deadline.
    """


class QueryDeadlockError(QueryError):
    """The statement was repeatedly chosen as a deadlock victim.

    Raised only after the transaction retry policy is exhausted, so it
    reports a persistent conflict (execution failure), not a transient
    one.
    """


class ReadOnlyTransactionError(ReproError):
    """A write was attempted through a read-only snapshot transaction."""


class StaleSnapshotError(ReproError):
    """A plan's shard layout no longer matches the transaction's view.

    Raised by the parallel operators when a concurrent reshard slipped
    between snapshot acquisition and planning (readers take no locks, so
    nothing serializes the two).  The statement executor retries on a
    fresh snapshot + fresh plan; the error never escapes to callers
    unless the layout keeps changing faster than the retries.
    """


class AdmissionRejected(ReproError):
    """The serving layer refused to start the query.

    Attributes:
        reason: ``"saturated"`` (queue full), ``"queue-timeout"`` (waited
            too long for a slot), or ``"draining"`` (shutdown underway).
    """

    def __init__(self, message: str, *, reason: str, sql: str | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.sql = sql


class CancellationToken:
    """Cooperative cancellation: a deadline and/or a shutdown event.

    Cheap to check (two attribute loads on the happy path), so streaming
    scan iterators consult it every few hundred rows and transactional
    operations at every call boundary.  ``deadline`` is an absolute
    :func:`time.monotonic` instant.
    """

    __slots__ = ("deadline", "event", "sql")

    def __init__(self, deadline: float | None = None,
                 event: Optional[threading.Event] = None,
                 sql: str = "") -> None:
        self.deadline = deadline
        self.event = event
        self.sql = sql

    @classmethod
    def after(cls, seconds: float | None,
              event: Optional[threading.Event] = None,
              sql: str = "") -> "CancellationToken":
        """A token expiring ``seconds`` from now (None = no deadline)."""
        deadline = time.monotonic() + seconds if seconds is not None else None
        return cls(deadline=deadline, event=event, sql=sql)

    def check(self) -> None:
        """Raise :class:`QueryTimeoutError` if cancelled or expired."""
        if self.event is not None and self.event.is_set():
            raise QueryTimeoutError("query cancelled by shutdown",
                                    sql=self.sql or None)
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeoutError("query exceeded its deadline",
                                    sql=self.sql or None)

    def remaining(self) -> float | None:
        """Seconds until the deadline (None when there is no deadline)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())
