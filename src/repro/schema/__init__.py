"""Schema management and evolution — Figure 1, Part IV.

Because structure is generated incrementally and best-effort, "in many
cases the schema will evolve over time".  This subpackage provides a
versioned schema registry with typed change operations (add / rename /
drop / split / merge / retype attribute) and two migration policies,
ablated in experiment E12:

* *eager* — every change immediately rewrites the stored rows;
* *lazy* — changes accumulate as on-read adapters and are applied
  physically only on :meth:`~repro.schema.evolution.EvolvingTable.flush`.
"""

from repro.schema.evolution import (
    AddAttribute,
    DropAttribute,
    EvolvingTable,
    MergeAttributes,
    RenameAttribute,
    RetypeAttribute,
    SchemaChange,
    SchemaRegistry,
    SplitAttribute,
)

__all__ = [
    "SchemaChange",
    "AddAttribute",
    "RenameAttribute",
    "DropAttribute",
    "SplitAttribute",
    "MergeAttributes",
    "RetypeAttribute",
    "SchemaRegistry",
    "EvolvingTable",
]
