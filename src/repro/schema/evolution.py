"""Versioned schema evolution with eager and lazy migration."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.types import Column, ColumnType, SchemaError, TableSchema


class SchemaChange(ABC):
    """One evolution step: transforms both the schema and each row."""

    @abstractmethod
    def apply_schema(self, schema: TableSchema) -> TableSchema:
        """The schema after this change.

        Raises:
            SchemaError: if the change does not fit the schema.
        """

    @abstractmethod
    def apply_row(self, row: dict[str, Any]) -> dict[str, Any]:
        """A (new) row dict after this change."""

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class AddAttribute(SchemaChange):
    """Add a nullable column, optionally computed from existing columns."""

    column: Column
    default: Any = None
    compute: Callable[[dict[str, Any]], Any] | None = None

    def apply_schema(self, schema: TableSchema) -> TableSchema:
        return schema.with_column(self.column)

    def apply_row(self, row: dict[str, Any]) -> dict[str, Any]:
        out = dict(row)
        if self.compute is not None:
            out[self.column.name] = self.compute(row)
        else:
            out[self.column.name] = self.default
        return out

    def describe(self) -> str:
        return f"ADD {self.column.name} {self.column.col_type.value}"


@dataclass(frozen=True)
class RenameAttribute(SchemaChange):
    old: str
    new: str

    def apply_schema(self, schema: TableSchema) -> TableSchema:
        return schema.renamed_column(self.old, self.new)

    def apply_row(self, row: dict[str, Any]) -> dict[str, Any]:
        out = dict(row)
        if self.old in out:
            out[self.new] = out.pop(self.old)
        return out

    def describe(self) -> str:
        return f"RENAME {self.old} -> {self.new}"


@dataclass(frozen=True)
class DropAttribute(SchemaChange):
    name: str

    def apply_schema(self, schema: TableSchema) -> TableSchema:
        return schema.without_column(self.name)

    def apply_row(self, row: dict[str, Any]) -> dict[str, Any]:
        out = dict(row)
        out.pop(self.name, None)
        return out

    def describe(self) -> str:
        return f"DROP {self.name}"


@dataclass(frozen=True)
class SplitAttribute(SchemaChange):
    """Replace one column by several, via a splitter function.

    Example: split ``full_name`` into ``first_name`` / ``last_name``.
    """

    source: str
    targets: tuple[Column, ...]
    splitter: Callable[[Any], dict[str, Any]] = lambda v: {}

    def apply_schema(self, schema: TableSchema) -> TableSchema:
        out = schema.without_column(self.source)
        for column in self.targets:
            out = out.with_column(column)
        return out

    def apply_row(self, row: dict[str, Any]) -> dict[str, Any]:
        out = dict(row)
        source_value = out.pop(self.source, None)
        pieces = self.splitter(source_value) if source_value is not None else {}
        for column in self.targets:
            out[column.name] = pieces.get(column.name)
        return out

    def describe(self) -> str:
        names = ", ".join(c.name for c in self.targets)
        return f"SPLIT {self.source} -> ({names})"


@dataclass(frozen=True)
class MergeAttributes(SchemaChange):
    """Replace several columns by one, via a merger function."""

    sources: tuple[str, ...]
    target: Column
    merger: Callable[[dict[str, Any]], Any] = lambda vs: None

    def apply_schema(self, schema: TableSchema) -> TableSchema:
        out = schema
        for source in self.sources:
            out = out.without_column(source)
        return out.with_column(self.target)

    def apply_row(self, row: dict[str, Any]) -> dict[str, Any]:
        out = dict(row)
        values = {s: out.pop(s, None) for s in self.sources}
        out[self.target.name] = self.merger(values)
        return out

    def describe(self) -> str:
        return f"MERGE ({', '.join(self.sources)}) -> {self.target.name}"


@dataclass(frozen=True)
class RetypeAttribute(SchemaChange):
    """Change a column's type, coercing values through ``converter``."""

    name: str
    new_type: ColumnType
    converter: Callable[[Any], Any] = lambda v: v

    def apply_schema(self, schema: TableSchema) -> TableSchema:
        old = schema.column(self.name)
        replaced = tuple(
            Column(self.name, self.new_type, old.nullable) if c.name == self.name else c
            for c in schema.columns
        )
        return TableSchema(schema.name, replaced, schema.primary_key)

    def apply_row(self, row: dict[str, Any]) -> dict[str, Any]:
        out = dict(row)
        if out.get(self.name) is not None:
            out[self.name] = self.converter(out[self.name])
        return out

    def describe(self) -> str:
        return f"RETYPE {self.name} -> {self.new_type.value}"


@dataclass(frozen=True)
class SchemaVersion:
    """One point in a table's schema history."""

    version: int
    schema: TableSchema
    change: SchemaChange | None  # None for the initial version


class SchemaRegistry:
    """Versioned schema histories for many tables."""

    def __init__(self) -> None:
        self._histories: dict[str, list[SchemaVersion]] = {}

    def register(self, schema: TableSchema) -> SchemaVersion:
        """Register a table's initial schema as version 0."""
        if schema.name in self._histories:
            raise SchemaError(f"table {schema.name!r} already registered")
        version = SchemaVersion(0, schema, None)
        self._histories[schema.name] = [version]
        return version

    def evolve(self, table: str, change: SchemaChange) -> SchemaVersion:
        """Append a change, producing the next schema version."""
        history = self._history(table)
        current = history[-1].schema
        new_schema = change.apply_schema(current)
        version = SchemaVersion(history[-1].version + 1, new_schema, change)
        history.append(version)
        return version

    def current(self, table: str) -> SchemaVersion:
        return self._history(table)[-1]

    def history(self, table: str) -> list[SchemaVersion]:
        return list(self._history(table))

    def changes_since(self, table: str, version: int) -> list[SchemaChange]:
        """The change chain from ``version`` to current."""
        history = self._history(table)
        return [v.change for v in history[version + 1 :] if v.change is not None]

    def _history(self, table: str) -> list[SchemaVersion]:
        if table not in self._histories:
            raise SchemaError(f"table {table!r} not registered")
        return self._histories[table]


class EvolvingTable:
    """A database table with versioned, eager-or-lazy schema evolution.

    In *eager* mode each :meth:`evolve` call rewrites stored rows
    immediately (one ``alter_table`` per change).  In *lazy* mode changes
    accumulate; reads go through the pending-change adapters so queries see
    the latest logical schema, while the physical rewrite happens only at
    :meth:`flush` (composing all pending changes into one pass).
    Experiment E12 compares the two policies' costs.
    """

    def __init__(self, db: Database, schema: TableSchema, lazy: bool = False,
                 registry: SchemaRegistry | None = None) -> None:
        self._db = db
        self._lazy = lazy
        self._registry = registry or SchemaRegistry()
        self._registry.register(schema)
        self._pending: list[SchemaChange] = []
        self._physical_schema = schema
        if schema.name not in db.table_names():
            db.create_table(schema)
        self.rows_rewritten = 0  # migration-cost counter for E12

    @property
    def name(self) -> str:
        return self._physical_schema.name

    @property
    def logical_schema(self) -> TableSchema:
        return self._registry.current(self.name).schema

    @property
    def pending_changes(self) -> int:
        return len(self._pending)

    def evolve(self, change: SchemaChange) -> None:
        """Apply one schema change (eagerly or lazily per mode)."""
        self._registry.evolve(self.name, change)
        if self._lazy:
            self._pending.append(change)
            return
        self._apply_physical([change])

    def flush(self) -> int:
        """Apply all pending lazy changes physically; returns row count
        rewritten (0 when nothing was pending)."""
        if not self._pending:
            return 0
        changes = self._pending
        self._pending = []
        return self._apply_physical(changes)

    def insert(self, values: dict[str, Any]) -> None:
        """Insert a row expressed in the *latest logical* schema.

        In lazy mode the row is stored physically by reversing nothing —
        new rows are simply written in logical form after a flush of
        pending changes (writing triggers a flush, keeping the physical
        table consistent; reads stay cheap, writes pay the debt, which is
        the classic lazy-migration trade-off).
        """
        if self._pending:
            self.flush()
        self._db.run(lambda t: t.insert(self.name, values))

    def rows(self) -> list[dict[str, Any]]:
        """All rows in the latest logical schema (adapters applied)."""
        raw = self._db.run(lambda t: t.scan(self.name))
        out = []
        for row in raw:
            values = dict(row.values)
            for change in self._pending:
                values = change.apply_row(values)
            out.append(values)
        return out

    def _apply_physical(self, changes: list[SchemaChange]) -> int:
        schema = self._physical_schema
        for change in changes:
            schema = change.apply_schema(schema)

        def migrate(row: dict[str, Any]) -> dict[str, Any]:
            for change in changes:
                row = change.apply_row(row)
            return row

        count = self._db.table_size(self.name)
        self._db.alter_table(self.name, schema, migrate)
        self._physical_schema = schema
        self.rows_rewritten += count
        return count
