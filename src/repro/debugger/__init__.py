"""Semantic debugger and system monitor — Figure 1, Part VI.

"This module learns as much as possible about the application semantics.
It then monitors the data generation process, and alerts the developer if
the semantics of the resulting structure is not 'in sync' with the
application semantics.  For example, if this module has learned that the
monthly temperature of a city cannot exceed 130 degrees, then it can flag
an extracted temperature of 135 as suspicious."

:class:`SemanticDebugger` learns per-attribute constraints (numeric ranges,
types, categorical domains) and approximate functional dependencies from
trusted data, then screens newly generated facts; violations become alerts.
:class:`SystemMonitor` watches pipeline-level metrics (extraction rates,
error counts) and alerts the system manager on anomalies.
"""

from repro.debugger.constraints import (
    Constraint,
    ConstraintViolation,
    DomainConstraint,
    FunctionalDependency,
    RangeConstraint,
    TypeConstraint,
    learn_constraints,
)
from repro.debugger.semantic import Alert, SemanticDebugger, SystemMonitor

__all__ = [
    "Constraint",
    "ConstraintViolation",
    "RangeConstraint",
    "TypeConstraint",
    "DomainConstraint",
    "FunctionalDependency",
    "learn_constraints",
    "SemanticDebugger",
    "SystemMonitor",
    "Alert",
]
