"""Learnable data constraints.

Constraints are learned from a trusted sample of facts (dicts of
attribute → value per entity) and then used to screen new facts.  Numeric
ranges are widened by a tolerance so legitimate unseen-but-nearby values do
not alarm; domains only form when the observed value set is small relative
to the sample (a categorical signature).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Sequence


@dataclass(frozen=True)
class ConstraintViolation:
    """One constraint breach for one fact."""

    attribute: str
    value: Any
    constraint: str
    message: str


class Constraint(ABC):
    """Base class: screens a single attribute value or a whole fact."""

    @abstractmethod
    def check(self, fact: dict[str, Any]) -> list[ConstraintViolation]:
        """Violations of this constraint by the fact (empty when clean)."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable statement of the learned rule."""


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class RangeConstraint(Constraint):
    """Numeric attribute must lie within a learned (widened) range."""

    attribute: str
    low: float
    high: float

    def check(self, fact: dict[str, Any]) -> list[ConstraintViolation]:
        value = fact.get(self.attribute)
        if value is None or not _is_number(value):
            return []
        if self.low <= float(value) <= self.high:
            return []
        return [
            ConstraintViolation(
                self.attribute, value, "range",
                f"{self.attribute}={value} outside learned range "
                f"[{self.low:g}, {self.high:g}]",
            )
        ]

    def describe(self) -> str:
        return f"{self.attribute} ∈ [{self.low:g}, {self.high:g}]"


@dataclass(frozen=True)
class TypeConstraint(Constraint):
    """Attribute must keep the type observed during learning."""

    attribute: str
    type_name: str  # "number" | "text" | "bool"

    def check(self, fact: dict[str, Any]) -> list[ConstraintViolation]:
        value = fact.get(self.attribute)
        if value is None:
            return []
        actual = (
            "bool" if isinstance(value, bool)
            else "number" if _is_number(value)
            else "text"
        )
        if actual == self.type_name:
            return []
        return [
            ConstraintViolation(
                self.attribute, value, "type",
                f"{self.attribute}={value!r} is {actual}, expected {self.type_name}",
            )
        ]

    def describe(self) -> str:
        return f"type({self.attribute}) = {self.type_name}"


@dataclass(frozen=True)
class DomainConstraint(Constraint):
    """Categorical attribute must take one of the learned values."""

    attribute: str
    domain: frozenset

    def check(self, fact: dict[str, Any]) -> list[ConstraintViolation]:
        value = fact.get(self.attribute)
        if value is None or value in self.domain:
            return []
        return [
            ConstraintViolation(
                self.attribute, value, "domain",
                f"{self.attribute}={value!r} not among {len(self.domain)} "
                "learned values",
            )
        ]

    def describe(self) -> str:
        sample = ", ".join(sorted(str(v) for v in list(self.domain)[:5]))
        return f"{self.attribute} ∈ {{{sample}, ...}}"


@dataclass(frozen=True)
class FunctionalDependency(Constraint):
    """Approximate FD: the determinant attribute fixes the dependent one.

    Learned mappings are carried along; a fact whose determinant was seen
    with a *different* dependent value is flagged.
    """

    determinant: str
    dependent: str
    mapping: tuple[tuple[Any, Any], ...]

    def check(self, fact: dict[str, Any]) -> list[ConstraintViolation]:
        det = fact.get(self.determinant)
        dep = fact.get(self.dependent)
        if det is None or dep is None:
            return []
        known = dict(self.mapping)
        if det in known and known[det] != dep:
            return [
                ConstraintViolation(
                    self.dependent, dep, "fd",
                    f"{self.determinant}={det!r} implies "
                    f"{self.dependent}={known[det]!r}, got {dep!r}",
                )
            ]
        return []

    def describe(self) -> str:
        return f"{self.determinant} -> {self.dependent}"


def learn_constraints(
    facts: Sequence[dict[str, Any]],
    range_tolerance: float = 0.25,
    domain_max_fraction: float = 0.5,
    domain_min_support: int = 4,
    fd_min_support: int = 4,
) -> list[Constraint]:
    """Learn constraints from a trusted fact sample.

    Args:
        facts: attribute → value dicts (one per entity/observation).
        range_tolerance: numeric ranges widen by this fraction of the span.
        domain_max_fraction: a domain constraint forms only when distinct
            values ≤ this fraction of observations (categorical signature).
        domain_min_support: minimum observations before learning a domain.
        fd_min_support: minimum observations of a determinant before
            trusting an FD.

    Returns:
        Learned constraints (ranges, types, domains, FDs).
    """
    values_by_attr: dict[str, list[Any]] = defaultdict(list)
    for fact in facts:
        for attr, value in fact.items():
            if value is not None:
                values_by_attr[attr].append(value)

    constraints: list[Constraint] = []
    for attr, values in sorted(values_by_attr.items()):
        numeric = [float(v) for v in values if _is_number(v)]
        textual = [v for v in values if isinstance(v, str)]
        if numeric and len(numeric) == len(values):
            constraints.append(TypeConstraint(attr, "number"))
            low, high = min(numeric), max(numeric)
            slack = (high - low) * range_tolerance or max(abs(high), 1.0) * 0.1
            constraints.append(RangeConstraint(attr, low - slack, high + slack))
        elif textual and len(textual) == len(values):
            constraints.append(TypeConstraint(attr, "text"))
            distinct = set(textual)
            if (
                len(values) >= domain_min_support
                and len(distinct) <= max(domain_max_fraction * len(values), 1)
            ):
                constraints.append(DomainConstraint(attr, frozenset(distinct)))

    # Approximate FDs between attribute pairs that co-occur often enough.
    attrs = sorted(values_by_attr)
    for det in attrs:
        for dep in attrs:
            if det == dep:
                continue
            mapping: dict[Any, Any] = {}
            consistent = True
            support = 0
            for fact in facts:
                d, v = fact.get(det), fact.get(dep)
                if d is None or v is None:
                    continue
                support += 1
                if d in mapping and mapping[d] != v:
                    consistent = False
                    break
                mapping[d] = v
            if consistent and support >= fd_min_support and len(mapping) >= 2:
                # An FD where every determinant is unique is vacuous unless
                # the determinant really repeats.
                if support > len(mapping):
                    constraints.append(
                        FunctionalDependency(det, dep, tuple(sorted(
                            mapping.items(), key=lambda kv: str(kv[0])
                        )))
                    )
    return constraints
