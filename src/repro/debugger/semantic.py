"""The semantic debugger and the system monitor."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.debugger.constraints import (
    Constraint,
    ConstraintViolation,
    learn_constraints,
)


@dataclass(frozen=True)
class Alert:
    """One alert raised to the developer or system manager."""

    severity: str  # "warning" | "error"
    source: str  # "semantic" | "monitor"
    message: str
    detail: dict[str, Any] = field(default_factory=dict)


class SemanticDebugger:
    """Learns application semantics, then screens generated facts.

    Usage: call :meth:`learn` on a trusted sample (or add hand-written
    constraints via :meth:`add_constraint` — the developer's domain
    knowledge), then pass each newly generated fact to :meth:`check`.
    Violations accumulate in :attr:`alerts`.
    """

    def __init__(self) -> None:
        self._constraints: list[Constraint] = []
        self.alerts: list[Alert] = []
        self.facts_checked = 0
        self.facts_flagged = 0

    def learn(self, facts: Sequence[dict[str, Any]], **learn_kwargs: Any) -> int:
        """Learn constraints from trusted facts; returns how many."""
        learned = learn_constraints(facts, **learn_kwargs)
        self._constraints.extend(learned)
        return len(learned)

    def add_constraint(self, constraint: Constraint) -> None:
        """Add developer-supplied domain knowledge."""
        self._constraints.append(constraint)

    @property
    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    def check(self, fact: dict[str, Any],
              context: str = "") -> list[ConstraintViolation]:
        """Screen one fact; violations also become alerts."""
        self.facts_checked += 1
        violations: list[ConstraintViolation] = []
        for constraint in self._constraints:
            violations.extend(constraint.check(fact))
        if violations:
            self.facts_flagged += 1
            for violation in violations:
                self.alerts.append(
                    Alert(
                        severity="warning",
                        source="semantic",
                        message=violation.message
                        + (f" [{context}]" if context else ""),
                        detail={"attribute": violation.attribute,
                                "value": violation.value,
                                "constraint": violation.constraint},
                    )
                )
        return violations

    def screen(self, facts: Sequence[dict[str, Any]]) -> list[int]:
        """Check many facts; returns indexes of the flagged ones."""
        flagged = []
        for i, fact in enumerate(facts):
            if self.check(fact):
                flagged.append(i)
        return flagged

    def describe_rules(self) -> list[str]:
        return [c.describe() for c in self._constraints]


class SystemMonitor:
    """Watches pipeline metrics and alerts the system manager.

    Record per-batch metrics (documents processed, extractions produced,
    errors); the monitor keeps a rolling window and raises an alert when a
    new observation deviates from the window mean by more than
    ``z_threshold`` standard deviations, or when the error rate exceeds
    ``max_error_rate``.
    """

    def __init__(self, window: int = 20, z_threshold: float = 3.0,
                 max_error_rate: float = 0.1) -> None:
        if window < 3:
            raise ValueError("window must be >= 3")
        self._window = window
        self._z = z_threshold
        self._max_error_rate = max_error_rate
        self._history: dict[str, list[float]] = {}
        self.alerts: list[Alert] = []

    def record(self, metric: str, value: float) -> Alert | None:
        """Record one observation; returns the alert if one fired."""
        history = self._history.setdefault(metric, [])
        alert: Alert | None = None
        if len(history) >= 3:
            mean = statistics.fmean(history)
            stdev = statistics.pstdev(history)
            floor = max(abs(mean) * 0.01, 1e-9)
            spread = max(stdev, floor)
            z = abs(value - mean) / spread
            if z > self._z:
                alert = Alert(
                    severity="warning",
                    source="monitor",
                    message=(
                        f"metric {metric!r} = {value:g} deviates from rolling "
                        f"mean {mean:g} (z = {z:.1f})"
                    ),
                    detail={"metric": metric, "value": value, "mean": mean,
                            "z": z},
                )
                self.alerts.append(alert)
        history.append(value)
        if len(history) > self._window:
            del history[0]
        return alert

    def record_batch(self, processed: int, errors: int) -> Alert | None:
        """Record a processing batch; alerts on excessive error rate."""
        rate = errors / processed if processed else 1.0
        self.record("batch_size", float(processed))
        if rate > self._max_error_rate:
            alert = Alert(
                severity="error",
                source="monitor",
                message=f"error rate {rate:.1%} exceeds "
                        f"{self._max_error_rate:.0%} on a batch of {processed}",
                detail={"processed": processed, "errors": errors, "rate": rate},
            )
            self.alerts.append(alert)
            return alert
        return None
