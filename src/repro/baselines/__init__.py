"""Baselines: the status quo the paper argues against.

:class:`KeywordSearchBaseline` is a pure IR system (BM25 over raw pages).
It answers keyword queries with ranked documents — and that is all it can
do.  For aggregate questions like "find the average March–September
temperature in Madison" it exposes two behaviours, both measured in
experiment E1:

* honest mode: reports the question as *not answerable* (a ranked list of
  pages is not a number);
* heroic mode (``grep_guess``): returns the first number found near the
  query terms in the top-ranked page — the "just search and squint"
  workaround — whose accuracy against ground truth quantifies exactly why
  the structured approach is needed.
"""

from repro.baselines.keyword_baseline import (
    BaselineAnswer,
    KeywordSearchBaseline,
)

__all__ = ["KeywordSearchBaseline", "BaselineAnswer"]
