"""The keyword-search-only baseline."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.docmodel.document import Document
from repro.userlayer.index import InvertedIndex, index_tokens

_NUMBER_RE = re.compile(r"[+-]?\d+(?:\.\d+)?")


@dataclass(frozen=True)
class BaselineAnswer:
    """What the baseline produced for a question.

    Attributes:
        answerable: False in honest mode for aggregate questions (the
            system returns pages, not values).
        value: the heroically grepped number, when requested and found.
        top_doc_id: best-ranked page (the evidence a user would read).
    """

    answerable: bool
    value: float | None
    top_doc_id: str | None


class KeywordSearchBaseline:
    """BM25 keyword search over raw pages, nothing more."""

    def __init__(self) -> None:
        self._index = InvertedIndex()
        self._docs: dict[str, Document] = {}

    def index_corpus(self, docs: Iterable[Document]) -> int:
        count = 0
        for doc in docs:
            self._docs[doc.doc_id] = doc
            self._index.add(doc.doc_id, doc.text)
            count += 1
        return count

    def search(self, query: str, k: int = 10) -> list[str]:
        """Ranked doc_ids — the baseline's only native answer form."""
        return [h.doc_id for h in self._index.search(query, k=k)]

    def answer_aggregate(self, question: str,
                         grep_guess: bool = False) -> BaselineAnswer:
        """Attempt an aggregate question.

        Honest mode: aggregate questions are not answerable.  With
        ``grep_guess``, return the number nearest the query terms in the
        top page (often wrong — that is the point).
        """
        hits = self.search(question, k=1)
        top = hits[0] if hits else None
        if not grep_guess or top is None:
            return BaselineAnswer(answerable=False, value=None, top_doc_id=top)
        text = self._docs[top].text
        value = self._nearest_number(text, question)
        return BaselineAnswer(answerable=value is not None, value=value,
                              top_doc_id=top)

    @staticmethod
    def _nearest_number(text: str, question: str) -> float | None:
        """The number closest (by character distance) to any query term."""
        lowered = text.lower()
        term_positions = [
            pos for term in index_tokens(question)
            if len(term) >= 3 and (pos := lowered.find(term)) >= 0
        ]
        numbers = [
            (m.start(), float(m.group())) for m in _NUMBER_RE.finditer(text)
        ]
        if not numbers:
            return None
        if not term_positions:
            return numbers[0][1]
        anchor = term_positions[0]
        return min(numbers, key=lambda pv: abs(pv[0] - anchor))[1]
