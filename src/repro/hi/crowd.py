"""Simulated crowd of human workers.

Substitutes for the live Web 2.0 users the paper envisions (see DESIGN.md).
Each worker has:

* ``accuracy`` — probability of answering a binary question correctly;
* ``attention_budget`` — how many candidates of a ranked list the worker
  actually inspects before giving up (Section 3.3: humans can *recognize*
  a correct option among a manageable number, but are swamped by long
  lists);
* ``generation_skill`` — probability of producing a correct answer from
  scratch with no candidate support (much lower than recognition accuracy,
  which is the paper's recognition-vs-generation asymmetry).

Workers are deterministic given the seed, so every experiment is
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.hi.tasks import (
    GenerateAnswerTask,
    HiTask,
    SelectCandidateTask,
    TaskResponse,
    ValidateValueTask,
    VerifyMatchTask,
)


@dataclass
class SimulatedWorker:
    """One simulated human.

    Attributes:
        worker_id: stable identifier.
        accuracy: P(correct) on binary verify/validate questions.
        attention_budget: candidates inspected in selection tasks.
        generation_skill: P(correct) on open generation tasks.
        seed: RNG seed for this worker.
    """

    worker_id: str
    accuracy: float = 0.9
    attention_budget: int = 8
    generation_skill: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")
        self._rng = random.Random((self.seed, self.worker_id).__repr__())

    def answer(self, task: HiTask, truth: Any) -> TaskResponse:
        """Answer a task given the (hidden) ground truth.

        The truth parameter is what the experiment harness knows; the worker
        only *probabilistically* reflects it, per its skill model.
        """
        if isinstance(task, (VerifyMatchTask, ValidateValueTask)):
            correct = self._rng.random() < self.accuracy
            answer = bool(truth) if correct else not bool(truth)
            return TaskResponse(task.task_id, self.worker_id, answer)
        if isinstance(task, SelectCandidateTask):
            return self._answer_selection(task, truth)
        if isinstance(task, GenerateAnswerTask):
            if self._rng.random() < self.generation_skill:
                return TaskResponse(task.task_id, self.worker_id, truth)
            return TaskResponse(task.task_id, self.worker_id, None)
        raise TypeError(f"unknown task type {type(task).__name__}")

    def _answer_selection(self, task: SelectCandidateTask, truth: Any) -> TaskResponse:
        """Pick from candidates: recognition succeeds only within the
        attention budget, with accuracy-probability, else a confused pick."""
        candidates = task.candidates
        inspected = candidates[: self.attention_budget]
        if truth in inspected and self._rng.random() < self.accuracy:
            return TaskResponse(task.task_id, self.worker_id,
                                candidates.index(truth))
        # Confused: sometimes picks a wrong inspected option, sometimes none.
        if inspected and self._rng.random() < 0.5:
            wrong = [i for i, c in enumerate(inspected) if c != truth]
            if wrong:
                return TaskResponse(task.task_id, self.worker_id,
                                    self._rng.choice(wrong))
        return TaskResponse(task.task_id, self.worker_id, -1)


@dataclass
class SimulatedCrowd:
    """A pool of simulated workers with assignment plumbing.

    Args:
        workers: the pool; build with :meth:`uniform` for quick setups.
    """

    workers: list[SimulatedWorker] = field(default_factory=list)

    @staticmethod
    def uniform(n: int, accuracy: float = 0.9, attention_budget: int = 8,
                generation_skill: float = 0.25, seed: int = 0) -> "SimulatedCrowd":
        """A crowd of ``n`` identical-skill workers (distinct RNG streams)."""
        return SimulatedCrowd(
            workers=[
                SimulatedWorker(
                    worker_id=f"w{i}",
                    accuracy=accuracy,
                    attention_budget=attention_budget,
                    generation_skill=generation_skill,
                    seed=seed + i,
                )
                for i in range(n)
            ]
        )

    @staticmethod
    def mixed(accuracies: Sequence[float], seed: int = 0,
              attention_budget: int = 8) -> "SimulatedCrowd":
        """A crowd with explicit per-worker accuracies (reputation tests)."""
        return SimulatedCrowd(
            workers=[
                SimulatedWorker(worker_id=f"w{i}", accuracy=a, seed=seed + i,
                                attention_budget=attention_budget)
                for i, a in enumerate(accuracies)
            ]
        )

    def ask(self, task: HiTask, truth: Any,
            redundancy: int | None = None) -> list[TaskResponse]:
        """Collect answers from ``redundancy`` workers (default: all)."""
        if not self.workers:
            raise ValueError("crowd is empty")
        chosen = self.workers if redundancy is None else self.workers[:redundancy]
        return [worker.answer(task, truth) for worker in chosen]

    def __len__(self) -> int:
        return len(self.workers)
