"""Worker reputation and incentives.

The user layer "manage[s] incentive schemes for soliciting user feedback,
and manage[s] user reputation (e.g., for mass collaboration)".  The
reputation manager tracks, per worker, a Beta-style (correct, total)
record updated from gold questions or from agreement with the aggregate,
and awards incentive points per accepted contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.hi.tasks import TaskResponse


@dataclass
class _WorkerRecord:
    correct: float = 1.0  # Beta(1,1) prior
    total: float = 2.0
    points: int = 0


@dataclass
class ReputationManager:
    """Tracks reliability and incentive points per worker.

    Reputation is the posterior mean P(correct) under a Beta(1,1) prior;
    new workers start at 0.5.
    """

    points_per_accepted: int = 1
    _records: dict[str, _WorkerRecord] = field(default_factory=dict)

    def reputation(self, worker_id: str) -> float:
        """Posterior mean accuracy for a worker (0.5 when unknown)."""
        record = self._records.get(worker_id)
        if record is None:
            return 0.5
        return record.correct / record.total

    def weights(self) -> dict[str, float]:
        """worker_id → reputation, for the weighted aggregator."""
        return {wid: self.reputation(wid) for wid in self._records}

    def points(self, worker_id: str) -> int:
        record = self._records.get(worker_id)
        return record.points if record else 0

    def record_gold(self, worker_id: str, was_correct: bool) -> None:
        """Update from a gold (known-answer) question."""
        record = self._records.setdefault(worker_id, _WorkerRecord())
        record.total += 1
        if was_correct:
            record.correct += 1
            record.points += self.points_per_accepted

    def record_agreement(self, responses: Sequence[TaskResponse],
                         accepted_answer: Any) -> None:
        """Update every responder against the aggregate decision.

        Workers agreeing with the accepted answer are treated as correct —
        the standard EM-flavoured bootstrap when no gold labels exist.
        """
        for response in responses:
            self.record_gold(response.worker_id,
                             response.answer == accepted_answer)

    def leaderboard(self, k: int = 10) -> list[tuple[str, int]]:
        """Top-k workers by incentive points (the incentive scheme's UI)."""
        ranked = sorted(
            ((wid, rec.points) for wid, rec in self._records.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:k]
