"""Human intervention (HI) — Figure 1, processing layer Part I + user layer.

The DGE model makes human feedback a first-class operator: the system
isolates decisions that are hard for algorithms but easy for people
(verify a match, validate a value, pick from a short candidate list) and
routes them to users — possibly many users, in mass-collaboration fashion,
with reputation-weighted aggregation and incentives.

Because we have no live users (see DESIGN.md substitutions), the crowd is
simulated: each :class:`SimulatedWorker` has a calibrated accuracy and an
*attention budget* — it can recognize a correct candidate only within the
first few options it inspects.  That budget is what makes Section 3.3's
recognition-vs-generation principle measurable (experiment E3).
"""

from repro.hi.tasks import (
    HiTask,
    VerifyMatchTask,
    SelectCandidateTask,
    ValidateValueTask,
    GenerateAnswerTask,
    TaskQueue,
)
from repro.hi.crowd import SimulatedCrowd, SimulatedWorker
from repro.hi.aggregate import aggregate_majority, aggregate_weighted
from repro.hi.reputation import ReputationManager

__all__ = [
    "HiTask",
    "VerifyMatchTask",
    "SelectCandidateTask",
    "ValidateValueTask",
    "GenerateAnswerTask",
    "TaskQueue",
    "SimulatedCrowd",
    "SimulatedWorker",
    "aggregate_majority",
    "aggregate_weighted",
    "ReputationManager",
]
