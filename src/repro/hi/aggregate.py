"""Aggregating multiple workers' answers (mass collaboration).

Two strategies, ablated in experiment E2:

* :func:`aggregate_majority` — one worker one vote;
* :func:`aggregate_weighted` — votes weighted by worker reputation (see
  :class:`~repro.hi.reputation.ReputationManager`), which downweights
  unreliable contributors.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Mapping, Sequence

from repro.hi.tasks import TaskResponse


def aggregate_majority(responses: Sequence[TaskResponse]) -> tuple[Any, float]:
    """Plurality answer and its vote share.

    Returns:
        (winning answer, fraction of votes it received).

    Raises:
        ValueError: no responses.
    """
    if not responses:
        raise ValueError("no responses to aggregate")
    votes: dict[Any, int] = defaultdict(int)
    for response in responses:
        votes[response.answer] += 1
    winner = max(votes.items(), key=lambda kv: (kv[1], str(kv[0])))[0]
    return winner, votes[winner] / len(responses)


def aggregate_weighted(
    responses: Sequence[TaskResponse],
    weights: Mapping[str, float],
    default_weight: float = 0.5,
) -> tuple[Any, float]:
    """Reputation-weighted vote.

    Args:
        responses: workers' answers.
        weights: worker_id → reputation weight in [0, 1].
        default_weight: weight for workers without a reputation yet.

    Returns:
        (winning answer, its weight share of the total).

    Raises:
        ValueError: no responses.
    """
    if not responses:
        raise ValueError("no responses to aggregate")
    votes: dict[Any, float] = defaultdict(float)
    total = 0.0
    for response in responses:
        weight = weights.get(response.worker_id, default_weight)
        votes[response.answer] += weight
        total += weight
    if total <= 0:
        return aggregate_majority(responses)
    winner = max(votes.items(), key=lambda kv: (kv[1], str(kv[0])))[0]
    return winner, votes[winner] / total
