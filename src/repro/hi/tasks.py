"""HI task types and the task queue.

A task is a question the system wants a human to answer.  Task types mirror
the paper's examples of "hard for machines, easy for humans" decisions:

* :class:`VerifyMatchTask` — do these two mentions co-refer? (yes/no)
* :class:`SelectCandidateTask` — which of these candidates is correct?
  (index, or -1 for "none of these")
* :class:`ValidateValueTask` — is this extracted value plausible? (yes/no)
* :class:`GenerateAnswerTask` — produce the answer from scratch, no
  candidates (the hard "generation" side of Section 3.3's principle).

The queue orders tasks by priority (lower first) and hands each task to the
requested number of distinct workers (mass collaboration).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Sequence


@dataclass(frozen=True)
class HiTask:
    """Base task: an identifier, a prompt, and a priority."""

    task_id: str
    prompt: str
    priority: int = 10


@dataclass(frozen=True)
class VerifyMatchTask(HiTask):
    """Yes/no: do ``left`` and ``right`` denote the same thing?"""

    left: str = ""
    right: str = ""


@dataclass(frozen=True)
class SelectCandidateTask(HiTask):
    """Pick the correct candidate from a ranked list (or none).

    Attributes:
        candidates: ranked options shown to the worker.
    """

    candidates: tuple[str, ...] = ()


@dataclass(frozen=True)
class ValidateValueTask(HiTask):
    """Yes/no: is this (entity, attribute, value) plausible?"""

    entity: str = ""
    attribute: str = ""
    value: Any = None


@dataclass(frozen=True)
class GenerateAnswerTask(HiTask):
    """Open-ended: produce the answer with no candidate support."""


@dataclass(frozen=True)
class TaskResponse:
    """One worker's answer to one task."""

    task_id: str
    worker_id: str
    answer: Any


class TaskQueue:
    """Priority queue of HI tasks with answer collection.

    Tasks with equal priority are served FIFO.  Answers accumulate per task
    until :meth:`responses` is drained by the aggregator.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, HiTask]] = []
        self._counter = itertools.count()
        self._responses: dict[str, list[TaskResponse]] = {}
        self._tasks: dict[str, HiTask] = {}

    def submit(self, task: HiTask) -> None:
        """Enqueue a task.

        Raises:
            ValueError: duplicate task_id.
        """
        if task.task_id in self._tasks:
            raise ValueError(f"duplicate task id {task.task_id!r}")
        self._tasks[task.task_id] = task
        heapq.heappush(self._heap, (task.priority, next(self._counter), task))

    def submit_all(self, tasks: Sequence[HiTask]) -> None:
        for task in tasks:
            self.submit(task)

    def next_task(self) -> HiTask | None:
        """Pop the highest-priority pending task, or None when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def pending(self) -> int:
        return len(self._heap)

    def record(self, response: TaskResponse) -> None:
        """Store a worker's answer."""
        if response.task_id not in self._tasks:
            raise KeyError(response.task_id)
        self._responses.setdefault(response.task_id, []).append(response)

    def responses(self, task_id: str) -> list[TaskResponse]:
        """All collected answers for one task."""
        return list(self._responses.get(task_id, ()))

    def task(self, task_id: str) -> HiTask:
        return self._tasks[task_id]

    def all_task_ids(self) -> list[str]:
        return list(self._tasks)
