#!/usr/bin/env python
"""Quickstart: the full DGE loop in ~60 lines.

Generate a small synthetic wiki corpus, ingest it, run a declarative
IE program, and exploit the derived structure three ways: SQL, keyword
search over facts, and guided keyword→structured translation — the paper's
motivating "average temperature of Madison" question, answered.

Run:  python examples/quickstart.py
"""

import statistics

from repro import StructureManagementSystem
from repro.core.system import FACTS_TABLE
from repro.datagen import CityCorpusConfig, generate_city_corpus
from repro.extraction import InfoboxExtractor


def main() -> None:
    # 1. Unstructured data: synthetic Wikipedia-style city pages.
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=12, seed=7, styles=("infobox",))
    )
    city = truth[0]
    print(f"Corpus: {len(corpus)} wiki pages; spotlight city: {city.name}\n")

    # 2. Build the system and register an extractor.
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(corpus)

    # 3. Data generation: a declarative IE program.
    report = system.generate(
        'pages = docs()\n'
        'facts = extract(pages, "infobox")\n'
        'output facts'
    )
    print(f"Generated {report.facts_stored} facts "
          f"({report.facts_flagged} flagged by the semantic debugger)\n")

    # 4a. Exploitation, sophisticated user: SQL over the derived structure.
    months = ["mar", "apr", "may", "jun", "jul", "aug", "sep"]
    attr_list = ", ".join(f"'{m}_temp'" for m in months)
    rows = system.query(
        f"SELECT AVG(value_num) AS avg_temp FROM {FACTS_TABLE} "
        f"WHERE entity = '{city.name}' AND attribute IN ({attr_list})"
    )
    expected = statistics.fmean(city.monthly_temps[2:9])
    print(f"SQL answer:   average Mar-Sep temperature of {city.name} "
          f"= {rows[0]['avg_temp']:.2f} (ground truth {expected:.2f})")

    # 4b. Exploitation, ordinary user: keyword query guided to structure.
    session = system.session("quickstart-user")
    candidates = session.suggest(f"average sep_temp {city.name}")
    print(f"\nKeyword query 'average sep_temp {city.name}' suggested "
          f"{len(candidates)} structured reformulations; top one:")
    print(f"  {candidates[0].sql}")
    answer = session.choose(0)
    print(f"  -> {answer[0]['result']} "
          f"(ground truth {city.monthly_temps[8]})")

    # 4c. Provenance: why do we believe that value?
    print("\nProvenance of the September temperature:")
    print(system.explain(city.name, "sep_temp"))

    print("\nSession transcript:")
    print(session.transcript())


if __name__ == "__main__":
    main()
