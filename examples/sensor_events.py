#!/usr/bin/env python
"""Beyond unstructured text: inferring events from sensor data.

Section 6 of the paper argues the structured approach generalizes —
"sensor data from which we want to infer real-world events (e.g., someone
has entered the room)".  This example runs the *unmodified* Figure 1
pipeline on sensor logs: the event detector is just another registered
extractor; storage, SQL, confidence, and provenance are reused verbatim.

Run:  python examples/sensor_events.py
"""

from repro import StructureManagementSystem
from repro.core.system import FACTS_TABLE
from repro.datagen.sensors import (
    EVENT_TYPES,
    SensorCorpusConfig,
    generate_sensor_corpus,
)
from repro.extraction.events import SensorEventExtractor


def main() -> None:
    corpus, truth = generate_sensor_corpus(
        SensorCorpusConfig(num_sensors=2, minutes=300, noise=0.08, seed=13)
    )
    print(f"Sensor logs: {len(corpus)} streams, "
          f"{len(truth)} real-world events injected\n")

    system = StructureManagementSystem()
    system.registry.register_extractor(
        "events",
        SensorEventExtractor(
            classify=lambda sensor, mag: EVENT_TYPES[
                sensor.rstrip("0123456789")
            ]
        ),
    )
    system.ingest(corpus)
    report = system.generate(
        'logs = docs()\nev = extract(logs, "events")\noutput ev'
    )
    print(f"Inferred {report.facts_stored} events "
          f"from {report.chars_scanned} characters of raw readings\n")

    print("== Events per sensor (SQL over inferred structure) ==")
    for row in system.query(
        f"SELECT entity, COUNT(*) AS n FROM {FACTS_TABLE} "
        "WHERE attribute = 'event' GROUP BY entity ORDER BY entity"
    ):
        print(f"  {row['entity']}: {row['n']} events")

    print("\n== Room entries (the paper's example event) ==")
    for row in system.query(
        f"SELECT entity, value_text, confidence FROM {FACTS_TABLE} "
        "WHERE attribute = 'event' AND value_text LIKE 'entry%' "
        "ORDER BY value_text LIMIT 5"
    ):
        minute = row["value_text"].split("@")[1]
        print(f"  someone entered via {row['entity']} around minute "
              f"{minute} (confidence {row['confidence']:.2f})")

    some = system.query(
        f"SELECT entity FROM {FACTS_TABLE} WHERE attribute = 'event' LIMIT 1"
    )
    if some:
        print("\n== Provenance: which raw readings support an event ==")
        explanation = system.explain(some[0]["entity"], "event")
        print(explanation.splitlines()[0])
        print("  ... down to the raw log lines:")
        for line in explanation.splitlines():
            if "[span]" in line:
                print(" ", line.strip()[:90])
                break


if __name__ == "__main__":
    main()
