#!/usr/bin/env python
"""Personal information management over e-mail.

The paper lists PIM among the applications of the blueprint.  Here the
unstructured data is a mailbox; the derived structure is a meetings
calendar:

1. extract meeting date/time/room and correspondents from raw messages;
2. store them in the transactional final store;
3. exploit them: "what meetings are in room 2310?", "who emails me most?",
   incremental extraction when a new need (action items) appears later.

Run:  python examples/email_pim.py
"""

from repro import IncrementalExtractionManager, StructureManagementSystem
from repro.core.system import FACTS_TABLE
from repro.datagen import generate_email_corpus
from repro.extraction import RegexExtractor, normalize_date


def main() -> None:
    corpus, truths = generate_email_corpus(num_messages=80, seed=9)
    with_meetings = sum(1 for t in truths if t.meeting_date)
    print(f"Mailbox: {len(corpus)} messages "
          f"({with_meetings} mention a concrete meeting)\n")

    system = StructureManagementSystem()
    system.registry.register_extractor(
        "headers",
        RegexExtractor(pattern=r"From: (?P<sender>\S+@\S+)\nTo: (?P<recipient>\S+@\S+)"),
    )
    system.registry.register_extractor(
        "meetings",
        RegexExtractor(
            pattern=(r"on (?P<meeting_date>[A-Z][a-z]+ \d{1,2}, \d{4}) "
                     r"at (?P<meeting_time>\d{2}:\d{2}) "
                     r"in (?P<meeting_room>[A-Za-z0-9 ]+?)\."),
            normalizers={"meeting_date": normalize_date},
        ),
    )
    system.ingest(corpus)
    report = system.generate(
        'mail = docs()\n'
        'heads = extract(mail, "headers")\n'
        'meets = extract(mail, "meetings")\n'
        'all = union(heads, meets)\n'
        'output all'
    )
    print(f"Extracted {report.facts_stored} facts from the mailbox\n")

    print("== Meetings in Room 2310 ==")
    rows = system.query(
        f"SELECT doc_id FROM {FACTS_TABLE} "
        "WHERE attribute = 'meeting_room' AND value_text = 'Room 2310'"
    )
    for row in rows[:5]:
        date = system.query(
            f"SELECT value_text FROM {FACTS_TABLE} "
            f"WHERE doc_id = '{row['doc_id']}' AND attribute = 'meeting_date'"
        )
        time = system.query(
            f"SELECT value_text FROM {FACTS_TABLE} "
            f"WHERE doc_id = '{row['doc_id']}' AND attribute = 'meeting_time'"
        )
        print(f"  {row['doc_id']}: {date[0]['value_text'] if date else '?'} "
              f"{time[0]['value_text'] if time else '?'}")

    print("\n== Busiest correspondents ==")
    rows = system.query(
        f"SELECT value_text, COUNT(*) AS n FROM {FACTS_TABLE} "
        "WHERE attribute = 'sender' GROUP BY value_text ORDER BY n DESC"
    )
    for row in rows:
        print(f"  {row['value_text']}: {row['n']} messages")

    # -- Incremental, best-effort extension: a need for action items
    #    appears only now; only the new extractor runs.
    print("\n== Incremental extension: action items ==")
    manager = IncrementalExtractionManager(corpus=list(corpus))
    manager.register(
        "meetings_again",
        RegexExtractor(pattern=r"at (?P<meeting_time>\d{2}:\d{2})"),
        attributes=["meeting_time"],
    )
    manager.register(
        "actions",
        RegexExtractor(pattern=r"I will (?P<action_item>[a-z ]+?) later"),
        attributes=["action_item"],
    )
    manager.demand(["meeting_time"])
    cost_before = manager.work_done
    actions = manager.demand(["action_item"])
    print(f"  demanded 'action_item' later: {len(actions)} items extracted, "
          f"marginal cost {manager.work_done - cost_before:.0f} work units")
    for extraction in actions[:3]:
        print(f"    {extraction.span.doc_id}: "
              f"will {extraction.value!r}")


if __name__ == "__main__":
    main()
