#!/usr/bin/env python
"""Wikipedia city portal: the paper's Section 2 scenario end to end.

A heterogeneous corpus — some pages carry infoboxes (short or verbose
attribute names), some only climate tables, some only prose — is turned
into a queryable city portal:

1. several extractor families run and their outputs are unioned;
2. schema matching unifies ``sep_temp`` with ``september_temperature``;
3. entity resolution canonicalizes city mentions;
4. conflicting readings are fused; the semantic debugger screens results;
5. the portal answers aggregate questions keyword search cannot, and is
   compared against the keyword-search baseline on exactly those questions.

Run:  python examples/wikipedia_city_portal.py
"""

import statistics

from repro import StructureManagementSystem
from repro.baselines import KeywordSearchBaseline
from repro.core.system import FACTS_TABLE
from repro.datagen import CityCorpusConfig, generate_city_corpus
from repro.extraction import (
    ContextRule,
    DictionaryExtractor,
    InfoboxExtractor,
    RuleCascadeExtractor,
    WikiTableExtractor,
    normalize_number,
    normalize_temperature,
)
from repro.extraction.normalize import MONTHS
from repro.integration import EntityResolver, SchemaMatcher

SHORT = {f"{m[:3]}_temp" for m in MONTHS}
LONG = {f"{m}_temperature" for m in MONTHS}


def build_system(corpus, names):
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", InfoboxExtractor())
    cities = DictionaryExtractor(attribute="city", phrases=names)
    rules = [
        ContextRule(f"{m[:3]}_temp", (m.capitalize(), "temperature"),
                    r"(\d+(?:\.\d+)?)\s*degrees",
                    normalizer=normalize_temperature, confidence=0.75)
        for m in MONTHS
    ]
    system.registry.register_extractor(
        "prose", RuleCascadeExtractor(rules=rules, entity_dictionary=cities)
    )
    def month_attr(key_cell: str) -> str | None:
        month = key_cell.strip().lower()
        return f"{month[:3]}_temp" if month in MONTHS else None

    system.registry.register_extractor(
        "tables",
        WikiTableExtractor(key_column="month",
                           value_normalizers={"temperature": normalize_number},
                           attribute_namer=month_attr),
    )
    # City names are single tokens, so prefix-boosted similarity runs hot
    # ("Springland" vs "Springcrest"); a strict threshold avoids merging
    # distinct cities while still unifying exact repeats across extractors.
    system.registry.register_resolver("er", EntityResolver(threshold=0.95))
    system.ingest(corpus)
    return system


def unify_schema(system) -> int:
    """Use the schema matcher to fold verbose attribute names into the
    short convention; returns how many facts were rewritten."""
    rows = system.query(f"SELECT attribute, value_num FROM {FACTS_TABLE}")
    samples: dict[str, list] = {}
    for row in rows:
        if row["value_num"] is not None:
            samples.setdefault(row["attribute"], []).append(row["value_num"])
    short = {a: v for a, v in samples.items() if a in SHORT}
    long = {a: v for a, v in samples.items() if a in LONG}
    # Name evidence dominates here: month ranges overlap heavily across
    # cities, so instance similarity alone cannot separate adjacent months.
    matcher = SchemaMatcher(threshold=0.45, name_weight=0.75,
                            instance_weight=0.25)
    rewritten = 0
    for match in matcher.match(long, short):
        result = system.query(
            f"UPDATE {FACTS_TABLE} SET attribute = '{match.right}' "
            f"WHERE attribute = '{match.left}'"
        )
        rewritten += result[0]["updated"]
        print(f"  schema match: {match.left} -> {match.right} "
              f"(score {match.score:.2f}, {result[0]['updated']} facts)")
    return rewritten


def main() -> None:
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=24, seed=19, corruption_rate=0.1)
    )
    names = [t.name for t in truth]
    system = build_system(corpus, names)
    # Developer domain knowledge (Figure 1 Part VI): no US monthly mean
    # temperature leaves [-80, 130] °F — the paper's own 135° example.
    from repro.debugger.constraints import RangeConstraint

    for month in MONTHS:
        for attr in (f"{month[:3]}_temp", f"{month}_temperature"):
            system.debugger.add_constraint(RangeConstraint(attr, -80.0, 130.0))

    print("== Data generation ==")
    report = system.generate(
        'pages = docs()\n'
        'box   = extract(pages, "infobox")\n'
        'prose = extract(pages, "prose")\n'
        'tabs  = extract(pages, "tables")\n'
        'u1    = union(box, prose)\n'
        'u2    = union(u1, tabs)\n'
        'canon = resolve(u2, "er")\n'
        'fused = fuse(canon, "weighted_vote")\n'
        'output fused'
    )
    print(f"facts stored: {report.facts_stored}, "
          f"flagged: {report.facts_flagged}, "
          f"chars scanned: {report.chars_scanned}")

    print("\n== Schema unification (II) ==")
    unify_schema(system)

    print("\n== Portal vs keyword baseline on aggregate questions ==")
    baseline = KeywordSearchBaseline()
    baseline.index_corpus(corpus)
    months = ["mar", "apr", "may", "jun", "jul", "aug", "sep"]
    attr_list = ", ".join(f"'{m}_temp'" for m in months)
    portal_ok = baseline_ok = asked = 0
    for facts in truth:
        if facts.corrupted_month is not None:
            continue  # score only clean ground truth
        asked += 1
        expected = statistics.fmean(facts.monthly_temps[2:9])
        rows = system.query(
            f"SELECT AVG(value_num) AS a FROM {FACTS_TABLE} "
            f"WHERE entity = '{facts.name}' AND attribute IN ({attr_list})"
        )
        if rows[0]["a"] is not None and abs(rows[0]["a"] - expected) < 1.0:
            portal_ok += 1
        guess = baseline.answer_aggregate(
            f"average March September temperature {facts.name}",
            grep_guess=True,
        )
        if guess.value is not None and abs(guess.value - expected) < 1.0:
            baseline_ok += 1
    print(f"structured portal: {portal_ok}/{asked} aggregate questions correct")
    print(f"keyword baseline : {baseline_ok}/{asked} (grep-the-top-page mode)")

    print("\n== Semantic debugger alerts (corrupted pages) ==")
    for alert in system.debugger.alerts[:5]:
        print(f"  {alert.severity}: {alert.message}")

    print("\n== Browsing the derived structure ==")
    rows = system.query(
        f"SELECT entity, COUNT(*) AS n FROM {FACTS_TABLE} "
        "GROUP BY entity ORDER BY n DESC LIMIT 5"
    )
    for row in rows:
        print(f"  {row['entity']}: {row['n']} facts")


if __name__ == "__main__":
    main()
